"""Engine dispatch profiler: observation without perturbation."""

from repro.core.treatments import TreatmentKind
from repro.obs.profiler import RANK_NAMES, EngineProfiler
from repro.sim.engine import Rank
from repro.sim.simulation import simulate
from repro.units import ms
from repro.workloads.scenarios import paper_fault, paper_figures_taskset


def _run(profiler=None):
    return simulate(
        paper_figures_taskset(),
        horizon=ms(1600),
        faults=paper_fault(),
        treatment=TreatmentKind.IMMEDIATE_STOP,
        profiler=profiler,
    )


class TestEngineProfiler:
    def test_counts_every_dispatched_event(self):
        prof = EngineProfiler()
        result = _run(prof)
        assert prof.total_events == result.events_processed > 0

    def test_profiling_does_not_perturb_results(self):
        plain = _run()
        profiled = _run(EngineProfiler())
        assert profiled.trace.events == plain.trace.events
        assert profiled.jobs == plain.jobs

    def test_rank_names_cover_engine_ranks(self):
        assert RANK_NAMES[Rank.RELEASE] == "release"
        assert RANK_NAMES[Rank.COMPLETION] == "completion"
        prof = EngineProfiler()
        _run(prof)
        assert set(prof.counts) <= set(RANK_NAMES)

    def test_wall_time_recorded(self):
        prof = EngineProfiler()
        _run(prof)
        assert prof.total_wall_ns > 0
        assert prof.events_per_second() > 0

    def test_merge_aggregates_runs(self):
        a, b = EngineProfiler(), EngineProfiler()
        _run(a)
        _run(b)
        events_a, events_b = a.total_events, b.total_events
        a.merge(b)
        assert a.total_events == events_a + events_b

    def test_as_dict_keyed_by_kind_name(self):
        prof = EngineProfiler()
        _run(prof)
        doc = prof.as_dict()
        assert "release" in doc
        assert doc["release"]["events"] > 0

    def test_render_table(self):
        prof = EngineProfiler()
        _run(prof)
        table = prof.render_table()
        assert "event kind" in table
        assert "release" in table
        assert "total" in table
        assert "events/s" in table

    def test_empty_profiler_renders(self):
        table = EngineProfiler().render_table()
        assert "total" in table
        assert EngineProfiler().events_per_second() is None
