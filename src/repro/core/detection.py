"""Temporal-fault detector placement — paper §3.

A cost overrun is hard to observe directly (it would require metering
CPU consumption continuously), but the admission control already gives
us, for every task, a date after each activation by which the job *must*
have finished: its worst-case response time.  **A worst-case response
time overrun implies a cost overrun.**

The paper therefore attaches to each task one *periodic* detector with

* period  = the task's period, and
* offset  = the task's worst-case response time (or the allowance-
  adjusted WCRT, depending on the treatment),

so a single extra real-time task per thread covers every job.  On jRate
the ``PeriodicTimer`` only achieves good precision when the first
release is a multiple of 10 ms, so the paper "voluntarily rounds the
release values of the detectors" — producing the 1/2/3 ms detector
delays visible in Figure 4.  :class:`Rounding` models that quirk (and
its absence) explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.core.task import Task, TaskSet
from repro.units import MS

__all__ = ["RoundingMode", "Rounding", "DetectorSpec", "plan_detectors"]


class RoundingMode(enum.Enum):
    """How a detector release value is aligned to the timer resolution."""

    NONE = "none"  # exact timers (ideal VM)
    UP = "up"  # next multiple of the resolution (jRate-safe: never early)
    DOWN = "down"
    NEAREST = "nearest"


@dataclass(frozen=True)
class Rounding:
    """A rounding policy: *mode* applied at *resolution* nanoseconds."""

    mode: RoundingMode = RoundingMode.NONE
    resolution: int = 10 * MS  # jRate PeriodicTimer granularity (§6.2)

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be > 0")

    def apply(self, value: int) -> int:
        """Round *value* (ns) according to the policy."""
        if self.mode is RoundingMode.NONE:
            return value
        res = self.resolution
        if self.mode is RoundingMode.UP:
            return -(-value // res) * res
        if self.mode is RoundingMode.DOWN:
            return (value // res) * res
        # NEAREST, ties round up (matches 'round half away from zero'
        # for the positive durations used here).
        return ((value + res // 2) // res) * res


#: Exact timers: what an ideal RTSJ VM provides.
EXACT = Rounding(RoundingMode.NONE)
#: The jRate quirk: detector releases rounded up to 10 ms (29→30, 58→60,
#: 87→90 — exactly the delays reported under Figure 4).
JRATE_10MS = Rounding(RoundingMode.UP, 10 * MS)


@dataclass(frozen=True)
class DetectorSpec:
    """Placement of the periodic detector watching one task.

    ``offset`` is the delay after each job release at which the detector
    checks the job-finished flag; ``nominal_offset`` is the un-rounded
    threshold it approximates (their difference is the detector *delay*
    the paper measures in §6.2).
    """

    task_name: str
    period: int
    offset: int
    nominal_offset: int

    @property
    def delay(self) -> int:
        """Detection lateness introduced by timer rounding (>= 0 for
        round-up policies)."""
        return self.offset - self.nominal_offset

    def fire_time(self, release: int) -> int:
        """Absolute check time for a job released at *release*."""
        return release + self.offset


def plan_detectors(
    taskset: TaskSet,
    thresholds: Mapping[str, int],
    rounding: Rounding = EXACT,
) -> dict[str, DetectorSpec]:
    """Build one :class:`DetectorSpec` per task.

    *thresholds* maps task name to the nominal check delay (WCRT for
    plain detection, allowance-adjusted WCRT for §4.2, etc.).
    """
    specs: dict[str, DetectorSpec] = {}
    for task in taskset:
        nominal = thresholds[task.name]
        if nominal < 0:
            raise ValueError(f"{task.name}: negative detector threshold")
        specs[task.name] = DetectorSpec(
            task_name=task.name,
            period=task.period,
            offset=rounding.apply(nominal),
            nominal_offset=nominal,
        )
    return specs


def detector_overhead_note(taskset: TaskSet) -> str:
    """Human-readable restatement of the paper's §6.2 overhead remark.

    The runtime overhead of the mechanism is one preemption per job plus
    the (unbounded) stop-flag check; the more tasks, the more detectors,
    hence the more this overhead weighs on the execution.
    """
    return (
        f"{len(taskset)} detector task(s) installed: overhead is one "
        "preemption per job plus the stop-flag polling cost; grows "
        "linearly with the number of tasks."
    )
