"""The public API surface: everything advertised must import and work.

Acts as both a smoke test and a guard against accidental breakage of
the names downstream users rely on (the README quickstart)."""

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_readme_quickstart(self):
        # Exactly the snippet from the README/package docstring.
        from repro import Task, TaskSet, analyze, equitable_allowance, ms

        ts = TaskSet(
            [
                Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20),
                Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18),
                Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16),
            ]
        )
        report = analyze(ts)
        assert report.feasible
        assert [report.wcrt(n) for n in ("tau1", "tau2", "tau3")] == [
            ms(29),
            ms(58),
            ms(87),
        ]
        assert equitable_allowance(ts) == ms(11)


class TestSubpackages:
    def test_sim_exports(self):
        from repro import sim

        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_rtsj_exports(self):
        from repro import rtsj

        for name in rtsj.__all__:
            assert hasattr(rtsj, name), name

    def test_workloads_exports(self):
        from repro import workloads

        for name in workloads.__all__:
            assert hasattr(workloads, name), name

    def test_viz_exports(self):
        from repro import viz

        for name in viz.__all__:
            assert hasattr(viz, name), name

    def test_experiments_exports(self):
        from repro import experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name

    def test_analysis_exports(self):
        from repro import analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_obs_exports(self):
        from repro import obs

        for name in obs.__all__:
            assert hasattr(obs, name), name
