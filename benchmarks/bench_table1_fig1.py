"""Table 1 + Figure 1: the arbitrary-deadline motivation.

Regenerates the per-job response-time series whose maximum does *not*
occur at the critical instant (the phenomenon Figure 1 shows and the
Figure 2 algorithm handles), and evaluates Table 1 as printed.

Paper values reproduced: series (114, 102, 116, 104, 118, 106, 94) for
the Lehoczky system; the printed Table 1 is flagged inconsistent.
"""

from repro.core.feasibility import analyze, job_response_times, wc_response_time
from repro.experiments.paper import figure1, table1
from repro.workloads.scenarios import lehoczky_example


def test_figure1_response_time_series(benchmark):
    ts = lehoczky_example()
    series = benchmark(job_response_times, ts["t2"], ts)
    assert series == [114, 102, 116, 104, 118, 106, 94]
    assert max(series) != series[0]  # worst case NOT at the first job


def test_figure1_wcrt_via_figure2_algorithm(benchmark):
    ts = lehoczky_example()
    wcrt = benchmark(wc_response_time, ts["t2"], ts)
    assert wcrt == 118  # at job q = 4


def test_figure1_experiment_claims(benchmark):
    result = benchmark(figure1)
    assert result.argmax_job == 4
    assert all(c.holds for c in result.claims())


def test_table1_as_printed_is_inconsistent(benchmark):
    result = benchmark(table1)
    assert not result.feasible
    assert all(c.holds for c in result.claims())


def test_table1_analysis(benchmark):
    from repro.workloads.scenarios import paper_table1

    ts = paper_table1()
    report = benchmark(analyze, ts)
    assert report.wcrt("tau1") == ts["tau1"].cost  # highest priority
    assert report.wcrt("tau2") > ts["tau2"].deadline
