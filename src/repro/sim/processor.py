"""Uniprocessor with fixed-priority preemptive dispatching.

This is the platform model the paper's experiments run on: one CPU, the
highest-priority ready job always executing (RTSJ's required
``PriorityScheduler``), FIFO within a priority level.

The processor is driven by the simulation through a small API:
:meth:`submit` (a job became ready), :meth:`stop_job` (a treatment
terminates a job), :meth:`block_running_job` / :meth:`unblock` (the
resource layer parks and releases jobs), and :meth:`refresh` (a job's
effective priority changed).  Dispatching decisions, execution
accounting and the unified progress/completion event are internal.

Jobs carry *progress hooks* (critical-section boundaries): the
processor fires each hook exactly once when the job's executed time
reaches the hook point, before completing the job if both coincide.
Priorities are *effective* priorities — the base task priority plus any
protocol boost — re-read at every dispatch decision, so inheritance and
ceiling protocols work without touching the dispatcher.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.engine import Engine, EventHandle, Rank
from repro.sim.jobs import Job, JobState
from repro.sim.trace import EventKind, Trace

__all__ = ["Processor"]


class Processor:
    """Single CPU, fixed-priority preemptive, FIFO within priority."""

    def __init__(
        self,
        engine: Engine,
        trace: Trace,
        *,
        context_switch: int = 0,
        on_job_end: Callable[[Job], None] | None = None,
        on_job_start: Callable[[Job], None] | None = None,
    ):
        self._engine = engine
        self._trace = trace
        self._context_switch = context_switch
        self._on_job_end = on_job_end
        self._on_job_start = on_job_start
        # Entries are (-priority_at_push, seq, job); entries whose job
        # finished, blocked, or changed priority are lazily dropped or
        # re-pushed on inspection.
        self._ready: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self.running: Job | None = None
        self._event: EventHandle | None = None
        self._busy_since: int | None = None
        self.busy_time: int = 0

    # -- public API ----------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Make *job* ready and re-evaluate dispatching."""
        job.state = JobState.READY
        self._push(job)
        self._dispatch()

    def reschedule(self, job: Job) -> None:
        """The running *job*'s remaining work changed; refresh its
        progress/completion event (no-op for non-running jobs)."""
        if job is self.running:
            self._charge_running()
            self._arm_event()

    def refresh(self) -> None:
        """Re-evaluate dispatching after effective priorities changed
        (e.g. a lock release dropped the running job's boost)."""
        self._dispatch()

    def notify_priority_change(self, job: Job) -> None:
        """A job's effective priority changed.  A *raised* priority on
        a READY job must be re-pushed immediately: its old heap entry
        sits too low to ever reach the (lazily revalidated) top.  The
        stale duplicate is dropped at pop time because its recorded
        priority no longer matches — or, if the job gets dispatched
        first, because its state is no longer READY."""
        if job.state is JobState.READY:
            self._push(job)
        self._dispatch()

    def stop_job(self, job: Job, extra_cpu: int = 0) -> bool:
        """Request *job* to stop after at most *extra_cpu* more CPU
        (the §4.1 poll latency).  Handles all job states: charges a
        running job's consumed time first, ends a waiting/blocked job
        that needs no further CPU immediately.  Returns True when the
        job will end as STOPPED (False: it completes naturally first)."""
        if job.finished:
            return False
        if job is self.running:
            self._charge_running()
            truncated = job.truncate(extra_cpu)
            if truncated:
                self._arm_event()
            return truncated
        truncated = job.truncate(extra_cpu)
        if truncated and job.remaining == 0:
            # Stopped while preempted/blocked/not-yet-started with no
            # poll latency left: ends here without running again.
            self._end(job)
        return truncated

    def block_running_job(self, job: Job) -> None:
        """Park the running *job* (resource contention, PIP).  The
        caller is responsible for waking it via :meth:`unblock`."""
        if job is not self.running:
            raise ValueError("only the running job can block")
        self._charge_running()
        job.state = JobState.BLOCKED
        self._trace.record(self._engine.now, EventKind.BLOCKED, job.name, job.index)
        self.running = None
        self._cancel_event()
        self._dispatch()

    def unblock(self, job: Job) -> None:
        """Wake a previously blocked job."""
        if job.state is not JobState.BLOCKED:
            raise ValueError(f"{job.name}#{job.index} is not blocked")
        self._trace.record(self._engine.now, EventKind.UNBLOCKED, job.name, job.index)
        self.submit(job)

    def idle(self) -> bool:
        """True when no job is running or ready."""
        self._revalidate()
        return self.running is None and not self._ready

    # -- internals -------------------------------------------------------------
    def _push(self, job: Job) -> None:
        heapq.heappush(self._ready, (-job.effective_priority, next(self._seq), job))

    def _revalidate(self) -> None:
        """Drop finished/blocked entries and re-push stale-priority
        ones so the heap top is trustworthy."""
        while self._ready:
            neg_prio, _seq, job = self._ready[0]
            if job.finished or job.state in (JobState.BLOCKED, JobState.RUNNING):
                heapq.heappop(self._ready)
            elif -neg_prio != job.effective_priority:
                heapq.heappop(self._ready)
                self._push(job)
            else:
                return

    def _top_ready(self) -> Job | None:
        self._revalidate()
        return self._ready[0][2] if self._ready else None

    def _charge_running(self) -> None:
        """Account CPU consumed by the running job up to now."""
        job = self.running
        if job is None or job.last_dispatch is None:
            return
        now = self._engine.now
        job.executed += now - job.last_dispatch
        job.last_dispatch = now

    def _cancel_event(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm_event(self) -> None:
        """Schedule the next progress-hook or completion instant for
        the running job."""
        self._cancel_event()
        job = self.running
        if job is None:
            return
        nxt = job.next_hook_point()
        if nxt is not None and nxt <= job.executed:
            delta = 0  # a hook is already due (e.g. section at start)
        elif nxt is not None:
            delta = min(job.remaining, nxt - job.executed)
        else:
            delta = job.remaining
        self._event = self._engine.schedule(
            self._engine.now + delta, self._advance, Rank.COMPLETION
        )

    def _advance(self) -> None:
        """Progress/completion event: fire due hooks, then complete or
        re-arm."""
        job = self.running
        assert job is not None
        self._event = None
        self._charge_running()
        while True:
            hook = job.pop_due_hook()
            if hook is None:
                break
            hook(job)
            if self.running is not job:
                return  # the hook blocked or terminated the job
        if job.remaining == 0:
            self.running = None
            self._end(job)
            self._dispatch()
        else:
            self._arm_event()

    def _end(self, job: Job) -> None:
        now = self._engine.now
        job.finished_at = now
        job.state = JobState.STOPPED if job.stop_requested else JobState.DONE
        kind = EventKind.STOP if job.state is JobState.STOPPED else EventKind.COMPLETE
        self._trace.record(now, kind, job.name, job.index)
        if self._on_job_end is not None:
            self._on_job_end(job)

    def _dispatch(self) -> None:
        """Ensure the highest-effective-priority ready job holds the CPU."""
        now = self._engine.now
        top = self._top_ready()
        current = self.running
        if current is not None and (
            top is None
            or current.effective_priority >= top.effective_priority
        ):
            return  # no change
        if current is not None:
            # Preempted by a strictly higher priority job.
            self._charge_running()
            self._trace.record(now, EventKind.PREEMPT, current.name, current.index)
            current.state = JobState.READY
            self._push(current)
            self.running = None
            self._cancel_event()
        if top is None:
            if current is None:
                # Became (or stayed) idle with nothing submitted.
                if self._busy_since is not None:
                    self.busy_time += now - self._busy_since
                    self._busy_since = None
                    self._trace.record(now, EventKind.IDLE, "")
            return
        heapq.heappop(self._ready)
        if self._busy_since is None:
            self._busy_since = now
        top.state = JobState.RUNNING
        top.last_dispatch = now
        self.running = top
        if top.started_at is None:
            top.started_at = now
            self._trace.record(now, EventKind.START, top.name, top.index)
            if self._on_job_start is not None:
                self._on_job_start(top)
        else:
            self._trace.record(now, EventKind.RESUME, top.name, top.index)
            top.add_overhead(self._context_switch)
        self._arm_event()

    def finalize(self) -> None:
        """Close the busy-time accounting at the end of a run."""
        self._charge_running()
        if self._busy_since is not None:
            self.busy_time += self._engine.now - self._busy_since
            self._busy_since = None
