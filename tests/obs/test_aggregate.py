"""Mergeable telemetry snapshots: the monoid laws, pid tagging, and
the golden merged counters of the population-landscape smoke sweep.

``golden_telemetry_landscape_smoke.json`` pins the deterministic
counter section of the telemetry the ``landscape-smoke`` sweep merges
out of its workers.  To regenerate after an intentional behaviour
change::

    PYTHONPATH=src python -c "
    import json
    from repro.exec.executor import LocalExecutor
    from repro.exec.sweep import run_sweep
    from repro.experiments.population import SWEEPS
    from repro.obs.runtime import WorkerObs
    ex = LocalExecutor(worker_obs=WorkerObs(telemetry=True))
    run_sweep(SWEEPS['landscape-smoke'](), executor=ex)
    open('tests/obs/golden_telemetry_landscape_smoke.json', 'w').write(
        json.dumps({'counters': ex.telemetry.counter_map()},
                   indent=2, sort_keys=True) + '\n')
    "
"""

import json
from pathlib import Path

import pytest

from repro.obs.aggregate import (
    EMPTY,
    TelemetrySnapshot,
    merge,
    merge_all,
    snapshot_telemetry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span

GOLDEN = Path(__file__).parent / "golden_telemetry_landscape_smoke.json"


def _registry(counts: dict, *, response_ns: list | None = None) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, value in counts.items():
        registry.counter(name).inc(value)
    for value in response_ns or []:
        registry.histogram("response_ns").observe(value)
    return registry


def snap(counts: dict, *, pid: int, response_ns: list | None = None) -> TelemetrySnapshot:
    return snapshot_telemetry(
        _registry(counts, response_ns=response_ns),
        spans=(Span(name=f"s{pid}", category="build", start_ns=pid, dur_ns=10),),
        pid=pid,
    )


A = snap({"x": 1, "y": 2}, pid=1, response_ns=[5, 500])
B = snap({"x": 10}, pid=2, response_ns=[7])
C = snap({"z": 3}, pid=3)


class TestMonoidLaws:
    def test_identity(self):
        assert merge(EMPTY, A) == A
        assert merge(A, EMPTY) == A
        assert not EMPTY
        assert A

    def test_commutativity(self):
        assert merge(A, B) == merge(B, A)

    def test_associativity(self):
        assert merge(merge(A, B), C) == merge(A, merge(B, C))

    def test_merge_all_folds(self):
        assert merge_all([A, B, C]) == merge(merge(A, B), C)
        assert merge_all([]) == EMPTY

    def test_counters_sum(self):
        merged = merge(A, B)
        assert merged.counter_map()["x"] == 11
        assert merged.counter_map()["y"] == 2

    def test_histograms_add_bucketwise(self):
        merged = merge(A, B)
        hist = merged.histogram_map()["response_ns"]
        assert hist["count"] == 3
        assert hist["sum"] == 512
        assert hist["min"] == 5
        assert hist["max"] == 500

    def test_misaligned_histogram_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("response_ns", bounds=(1, 2, 3)).observe(1)
        odd = snapshot_telemetry(registry, pid=9)
        with pytest.raises(ValueError, match="misaligned buckets"):
            merge(A, odd)

    def test_pids_union_sorted(self):
        assert merge(merge(C, A), B).pids == (1, 2, 3)


class TestPidTagging:
    def test_spans_carry_pid_attr(self):
        merged = merge(A, B)
        pids = {dict(s[4]).get("pid") for s in merged.spans}
        assert pids == {"1", "2"}

    def test_gauges_are_per_pid(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.gauge("queue_depth").set(4)
        r2.gauge("queue_depth").set(9)
        merged = merge(
            snapshot_telemetry(r1, pid=1), snapshot_telemetry(r2, pid=2)
        )
        flat = merged.gauge_map()
        assert flat["queue_depth{pid=1}"] == 4
        assert flat["queue_depth{pid=2}"] == 9

    def test_same_pid_gauge_collision_takes_max(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.gauge("queue_depth").set(4)
        r2.gauge("queue_depth").set(9)
        merged = merge(
            snapshot_telemetry(r1, pid=7), snapshot_telemetry(r2, pid=7)
        )
        assert merged.gauge_map() == {"queue_depth{pid=7}": 9}


class TestSerialization:
    def test_as_dict_is_deterministic(self):
        a = merge(A, merge(B, C)).as_dict()
        b = merge(merge(C, B), A).as_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_as_dict_shape(self):
        doc = merge(A, B).as_dict()
        assert doc["pids"] == [1, 2]
        assert set(doc) >= {"pids", "counters", "spans"}
        assert all(isinstance(s, dict) for s in doc["spans"])


class TestGoldenLandscapeSmoke:
    def test_merged_counters_match_golden(self):
        from repro.exec.executor import LocalExecutor
        from repro.exec.sweep import run_sweep
        from repro.experiments.population import SWEEPS
        from repro.obs.runtime import WorkerObs

        ex = LocalExecutor(worker_obs=WorkerObs(telemetry=True))
        run_sweep(SWEEPS["landscape-smoke"](), executor=ex)
        golden = json.loads(GOLDEN.read_text())
        assert ex.telemetry.counter_map() == golden["counters"]
