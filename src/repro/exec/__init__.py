"""Execution layer: declarative specs, cache-aware batch executors and
reproducible run manifests.

The experiment stack is split into three layers (DESIGN.md §"Spec /
executor / presentation"):

1. **spec** (:mod:`repro.exec.spec`) — a frozen
   :class:`~repro.exec.spec.ExperimentSpec` per exhibit, content-hashed
   with :func:`repro.rng.stable_hash`;
2. **execution** (this package) — :class:`LocalExecutor` /
   :class:`PoolExecutor` behind one ``run(specs, builder)`` interface,
   a content-addressed :class:`ResultCache` keyed by spec hash + code
   version, and per-run ``manifest.json`` provenance;
3. **presentation** (:mod:`repro.experiments`) — registry, renderers
   and the CLI consume executor results; they never call ``simulate()``
   directly (lint rule RT006), only this package does
   (:mod:`repro.exec.sim`).
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache, code_version
from repro.exec.executor import (
    ExecutionResult,
    Executor,
    ExecutorStats,
    LocalExecutor,
    PoolExecutor,
    make_executor,
)
from repro.exec.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    manifest_fingerprint,
    strip_volatile,
    write_manifest,
)
from repro.exec.sim import run_simulation, simulate_spec
from repro.exec.spec import ExperimentSpec

__all__ = [
    "ExperimentSpec",
    "ExecutionResult",
    "Executor",
    "ExecutorStats",
    "LocalExecutor",
    "PoolExecutor",
    "make_executor",
    "ResultCache",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "code_version",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_revision",
    "manifest_fingerprint",
    "strip_volatile",
    "write_manifest",
    "run_simulation",
    "simulate_spec",
]
