"""Fault treatments — paper §4.

Once a worst-case response-time overrun is detected, the goal is to
prevent a faulty high-priority task from causing the failure of
*non-faulty* lower-priority tasks.  The paper compares:

* ``NO_DETECTION``      — baseline, nothing installed (Figure 3);
* ``DETECT_ONLY``       — detectors installed, faults logged but not
                          treated (Figure 4);
* ``IMMEDIATE_STOP``    — §4.1: the faulty task is stopped as soon as
                          its detector fires (Figure 5), pessimistic;
* ``EQUITABLE_ALLOWANCE`` — §4.2: every task may overrun by the same
                          allowance ``A``; detectors move to the
                          allowance-adjusted WCRTs (Figure 6);
* ``SYSTEM_ALLOWANCE``  — §4.3: the whole free time of the system goes
                          to the *first* faulty task, with the residue
                          available to later faults (Figure 7).

Beyond the paper, three *weakly-hard* treatments exploit per-task
(m, K) constraints (:mod:`repro.core.weakly_hard`, DESIGN.md §3.11):

* ``SKIP_JOB``    — the deeply-red skip pattern drops the sanctioned
                    ``m``-per-``K`` jobs outright (window-budgeted);
                    admission runs the weakly-hard schedulability test,
                    so systems the hard analysis rejects can be admitted;
* ``DEGRADE``     — sanctioned slots release a reduced-cost fallback
                    job instead of being dropped; admission accounts
                    the degraded demand;
* ``MISS_BUDGET`` — jobs run unmodified under hard admission, but a
                    detected overrun is *tolerated* until more than
                    ``m`` of the last ``K`` jobs were flagged, at which
                    point the treatment escalates to the paper's §4.1
                    immediate stop.

A :class:`TreatmentPlan` is the *static* product of admission control:
detector placements and stop thresholds.  :meth:`TreatmentPlan.runtime`
creates the per-run mutable state (notably the §4.3 residual-allowance
book-keeping and the MISS_BUDGET sliding windows) that the simulator
drives through ``on_detect`` / ``on_job_end`` callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.allowance import (
    EquitableAllowance,
    ResidualAllowanceManager,
    compute_equitable,
)
from repro.core.context import AnalysisContext
from repro.core.detection import EXACT, DetectorSpec, Rounding, plan_detectors
from repro.core.task import TaskSet

__all__ = [
    "TreatmentKind",
    "StopDirective",
    "TreatmentPlan",
    "TreatmentRuntime",
    "plan_treatment",
    "default_degraded_costs",
]


class TreatmentKind(enum.Enum):
    """The five paper configurations (§6) plus the weakly-hard family."""

    NO_DETECTION = "no-detection"
    DETECT_ONLY = "detect-only"
    IMMEDIATE_STOP = "immediate-stop"
    EQUITABLE_ALLOWANCE = "equitable-allowance"
    SYSTEM_ALLOWANCE = "system-allowance"
    SKIP_JOB = "skip-job"
    DEGRADE = "degrade"
    MISS_BUDGET = "miss-budget"

    @property
    def installs_detectors(self) -> bool:
        return self is not TreatmentKind.NO_DETECTION

    @property
    def stops_tasks(self) -> bool:
        return self in (
            TreatmentKind.IMMEDIATE_STOP,
            TreatmentKind.EQUITABLE_ALLOWANCE,
            TreatmentKind.SYSTEM_ALLOWANCE,
            TreatmentKind.SKIP_JOB,
            TreatmentKind.DEGRADE,
            TreatmentKind.MISS_BUDGET,
        )

    @property
    def weakly_hard(self) -> bool:
        """Treatments driven by per-task (m, K) constraints."""
        return self in (
            TreatmentKind.SKIP_JOB,
            TreatmentKind.DEGRADE,
            TreatmentKind.MISS_BUDGET,
        )


@dataclass(frozen=True)
class StopDirective:
    """Instruction returned by the runtime when a detector fires.

    ``at`` is the absolute time at which the job must be stopped if it
    is still running (equal to the detection time for an immediate
    stop).  ``granted`` records the §4.3 grant for reporting.
    """

    at: int
    granted: int = 0


@dataclass(frozen=True)
class TreatmentPlan:
    """Static detector/stop configuration for one task set.

    Produced by :func:`plan_treatment` from a *feasible* task set; the
    per-task ``wcrt`` map is the admission-control by-product the
    paper's detectors reuse.
    """

    kind: TreatmentKind
    taskset: TaskSet
    wcrt: Mapping[str, int]
    detectors: Mapping[str, DetectorSpec]
    equitable: EquitableAllowance | None = None
    system_grants: Mapping[str, int] | None = None
    #: DEGRADE only: CPU a sanctioned-slot job still receives per task.
    degraded: Mapping[str, int] | None = None

    def detector_for(self, name: str) -> DetectorSpec | None:
        """Detector placement for the named task (None = no detector)."""
        return self.detectors.get(name)

    def skips(self, name: str, index: int) -> bool:
        """SKIP_JOB: is job *index* of *name* a sanctioned dropped slot?"""
        if self.kind is not TreatmentKind.SKIP_JOB:
            return False
        mk = self.taskset[name].mk
        return mk is not None and mk.skips(index)

    def degrades(self, name: str, index: int) -> bool:
        """DEGRADE: is job *index* of *name* a reduced-cost fallback slot?"""
        if self.kind is not TreatmentKind.DEGRADE:
            return False
        mk = self.taskset[name].mk
        return mk is not None and mk.skips(index)

    def degraded_cost(self, name: str) -> int:
        """Declared cost of a degraded fallback job of *name*."""
        if self.degraded is None:
            raise ValueError("plan carries no degraded costs")
        return self.degraded[name]

    def runtime(self) -> "TreatmentRuntime":
        """Fresh mutable per-run state for this plan."""
        manager = (
            ResidualAllowanceManager(self.taskset)
            if self.kind is TreatmentKind.SYSTEM_ALLOWANCE
            else None
        )
        return TreatmentRuntime(plan=self, manager=manager)


@dataclass
class TreatmentRuntime:
    """Per-simulation mutable treatment state.

    The simulator calls :meth:`on_detect` when a detector fires and the
    watched job is still unfinished, and :meth:`on_job_end` whenever a
    job completes or is stopped, so the §4.3 policy can account for the
    overrun actually consumed.
    """

    plan: TreatmentPlan
    manager: ResidualAllowanceManager | None = None
    detections: list[tuple[str, int, int]] = field(default_factory=list)
    #: MISS_BUDGET: flagged job indices per task (the sliding window
    #: counts these) and the escalations actually issued.
    flagged: dict[str, list[int]] = field(default_factory=dict)
    escalations: list[tuple[str, int, int]] = field(default_factory=list)

    def on_detect(self, name: str, job: int, release: int, now: int) -> StopDirective | None:
        """Detector fired at *now* for the job of *name* released at
        *release*; the job has not finished.  Returns what to do.

        For every stopping policy of the paper the allowance is folded
        into the detector offset itself (adjusted WCRT for §4.2,
        system-adjusted WCRT for §4.3), so a detection always means
        "stop now".  The §4.3 residual rule needs no runtime
        book-keeping: a higher-priority task's consumed overrun delays
        lower tasks' completions by the same amount, so the static
        threshold grants exactly the unconsumed residue to the next
        faulty task.

        ``MISS_BUDGET`` is the one policy with real runtime state: a
        flagged job is *tolerated* (left running, ``None`` returned)
        while at most ``m`` of the last ``K`` job indices of the task
        were flagged; the flag exceeding the window budget escalates to
        the §4.1 immediate stop (recorded in :attr:`escalations`).  A
        task without an (m, K) constraint has no budget — every
        detection stops it, exactly the hard ``m = 0`` boundary.
        """
        self.detections.append((name, job, now))
        kind = self.plan.kind
        if kind in (TreatmentKind.NO_DETECTION, TreatmentKind.DETECT_ONLY):
            return None
        if kind is TreatmentKind.MISS_BUDGET:
            mk = self.plan.taskset[name].mk
            flags = self.flagged.setdefault(name, [])
            flags.append(job)
            if mk is not None:
                in_window = sum(1 for i in flags if job - mk.k < i <= job)
                if in_window <= mk.m:
                    return None  # within budget: tolerate the overrun
            self.escalations.append((name, job, now))
            return StopDirective(at=now)
        granted = self.plan.detectors[name].nominal_offset - self.plan.wcrt[name]
        return StopDirective(at=now, granted=granted)

    def on_job_end(self, name: str, job: int, release: int, end: int, stopped: bool) -> None:
        """Account the overrun a finished/stopped job actually consumed
        (kept for §4.3 diagnostics; the stop decision does not use it)."""
        if self.manager is None:
            return
        overrun = end - (release + self.plan.wcrt[name])
        if overrun > 0:
            self.manager.record_overrun(name, overrun)


def plan_treatment(
    taskset: TaskSet,
    kind: TreatmentKind,
    rounding: Rounding = EXACT,
    *,
    context: AnalysisContext | None = None,
) -> TreatmentPlan:
    """Run admission control and build the treatment configuration.

    Raises :class:`ValueError` when the task set fails admission
    control — consistent with the paper, where detectors reuse data
    "calculated during control of admission" and a rejected system is
    never started.

    *rounding* models the VM timer quirk (§6.2) and applies to detector
    release offsets only; the §4.3 stop deadline is computed from the
    nominal WCRT so a rounded detector never shrinks the grant.

    One :class:`AnalysisContext` (the caller's, when provided over the
    same set) backs the admission analysis and every allowance search.

    The weakly-hard ``SKIP_JOB`` / ``DEGRADE`` kinds run the weakly-hard
    schedulability test instead of the hard analysis (DESIGN.md §3.11):
    the planned skip pattern removes demand, so they admit every
    hard-feasible set and, near overload, strictly more.  ``MISS_BUDGET``
    leaves the schedule untouched until escalation, so it keeps the
    paper's hard admission and nominal-WCRT detectors.
    """
    if context is not None and context.taskset != taskset:
        context = None
    ctx = context if context is not None else AnalysisContext(taskset)
    if kind in (TreatmentKind.SKIP_JOB, TreatmentKind.DEGRADE):
        return _plan_weakly_hard(taskset, kind, rounding, ctx)
    report = ctx.analyze()
    if not report.feasible:
        raise ValueError("task set rejected by admission control")
    wcrt: dict[str, int] = {name: r.wcrt for name, r in report.per_task.items()}  # type: ignore[misc]

    if kind is TreatmentKind.NO_DETECTION:
        return TreatmentPlan(kind=kind, taskset=taskset, wcrt=wcrt, detectors={})

    equitable = None
    grants = None
    if kind is TreatmentKind.EQUITABLE_ALLOWANCE:
        equitable = compute_equitable(taskset, context=ctx)
        thresholds: Mapping[str, int] = equitable.stop_after
    elif kind is TreatmentKind.SYSTEM_ALLOWANCE:
        from repro.core.allowance import system_adjusted_wcrt, system_allowance

        grants = system_allowance(taskset, context=ctx)
        thresholds = system_adjusted_wcrt(taskset, context=ctx, grants=grants)
    else:
        thresholds = wcrt

    detectors = plan_detectors(taskset, thresholds, rounding)
    return TreatmentPlan(
        kind=kind,
        taskset=taskset,
        wcrt=wcrt,
        detectors=detectors,
        equitable=equitable,
        system_grants=grants,
    )


def default_degraded_costs(taskset: TaskSet) -> dict[str, int]:
    """The DEGRADE fallback budget: half the declared cost (>= 1 ns)
    for every (m, K)-constrained task.  Callers wanting other budgets
    run :func:`~repro.core.feasibility.weakly_hard_analyze` themselves.
    """
    return {
        t.name: max(1, t.cost // 2) for t in taskset if t.mk is not None
    }


def _plan_weakly_hard(
    taskset: TaskSet,
    kind: TreatmentKind,
    rounding: Rounding,
    ctx: AnalysisContext,
) -> TreatmentPlan:
    """Admission + detector placement for SKIP_JOB / DEGRADE.

    Admission is the weakly-hard schedulability test under the plan's
    own deeply-red skip pattern; detectors sit at the weakly-hard WCRTs
    and stop immediately (the sanctioned slots are already budgeted in
    the thresholds, so an executed job past its weakly-hard WCRT is a
    genuine overrun).  Tasks whose every job is sanctioned (``m = K``)
    have nothing to detect and get no detector.
    """
    degraded = default_degraded_costs(taskset) if kind is TreatmentKind.DEGRADE else None
    report = ctx.weakly_hard_analyze_set(taskset, degraded)
    if not report.feasible:
        raise ValueError("task set rejected by admission control")
    wcrt: dict[str, int] = {}
    for name, r in report.per_task.items():
        assert r.wcrt is not None  # feasible => bounded
        wcrt[name] = r.wcrt
    thresholds = {name: value for name, value in wcrt.items() if value > 0}
    detectors = {
        name: spec
        for name, spec in plan_detectors(
            TaskSet(t for t in taskset if t.name in thresholds),
            thresholds,
            rounding,
        ).items()
    }
    return TreatmentPlan(
        kind=kind,
        taskset=taskset,
        wcrt=wcrt,
        detectors=detectors,
        degraded=degraded,
    )
