"""Ambient observability configuration.

The experiments CLI cannot thread ``trace_out=``/``profiler=`` through
every spec builder (builders take exactly one :class:`ExperimentSpec`,
and widening that contract would push host-side concerns into the
declarative layer and its content hashes).  Instead the CLI *activates*
an :class:`ObsConfig` for the duration of a run, and the exec bridge
(:func:`repro.exec.sim.run_simulation`) — the one sanctioned door to
the simulator — attaches the configured sink, metrics observer and
profiler to every simulation that flows through it.

The config is deliberately process-local state, not a contextvar: the
CLI is single-threaded, and :class:`~repro.exec.executor.PoolExecutor`
workers intentionally do *not* inherit it (trace capture forces a
serial run; see the CLI's handling of ``--trace-out`` + ``--jobs``).
Nothing here affects simulation results — observability is strictly
read-only on the event stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsObserver
    from repro.obs.profiler import EngineProfiler
    from repro.sim.trace import TraceSink

__all__ = ["ObsConfig", "WorkerObs", "activate", "current"]


@dataclass
class ObsConfig:
    """What to attach to every simulation run through the exec bridge."""

    sink: "TraceSink | None" = None
    metrics: "MetricsObserver | None" = None
    profiler: "EngineProfiler | None" = None
    #: Anomaly flight recorder; its bounded ring rides along as a trace
    #: sink so the tail of the current simulation is always capturable.
    flight: "FlightRecorder | None" = None

    def trace_sinks(self) -> list["TraceSink"]:
        """The sinks (file sink, metrics observer, flight ring) to tee."""
        sinks: list["TraceSink"] = [
            s for s in (self.sink, self.metrics) if s is not None
        ]
        if self.flight is not None:
            sinks.append(self.flight.ring)
        return sinks


@dataclass(frozen=True)
class WorkerObs:
    """Picklable recipe for per-build observability.

    ``ObsConfig`` holds live objects (open sinks, registries) that
    cannot cross a ``multiprocessing.Pool`` boundary, so the executor
    ships this *recipe* into each worker instead; the worker builds a
    fresh config per spec, runs the builder under it, and sends the
    resulting :class:`~repro.obs.aggregate.TelemetrySnapshot` back
    through the result channel.  Serial executors use the identical
    path, which is what makes ``--jobs N`` telemetry equal serial
    telemetry modulo pid tags.
    """

    telemetry: bool = True
    flight_dir: str | None = None
    ring_capacity: int = 512

    def build_config(self) -> ObsConfig:
        """A fresh per-build config (inheriting the ambient sink and
        profiler, if any — only meaningful in serial runs, where the
        parent's ObsConfig is still active)."""
        from repro.obs.flight import FlightRecorder
        from repro.obs.metrics import MetricsObserver

        ambient = current()
        return ObsConfig(
            sink=ambient.sink if ambient is not None else None,
            metrics=MetricsObserver() if self.telemetry else None,
            profiler=ambient.profiler if ambient is not None else None,
            flight=(
                FlightRecorder(self.flight_dir, ring_capacity=self.ring_capacity)
                if self.flight_dir is not None
                else None
            ),
        )


_active: ObsConfig | None = None


def current() -> ObsConfig | None:
    """The active config, or None when observability is off."""
    return _active


@contextmanager
def activate(config: ObsConfig) -> Iterator[ObsConfig]:
    """Activate *config* for the duration of the ``with`` block."""
    global _active
    previous = _active
    _active = config
    try:
        yield config
    finally:
        _active = previous
