"""``javax.realtime`` time types (minimal, faithful subset).

RTSJ expresses durations and dates as millisecond + nanosecond pairs
(``HighResolutionTime`` and its subclasses).  The simulator works in
plain integer nanoseconds; these classes exist so the RTSJ-facing API
reads like the paper's Java (``new PeriodicParameters(new
RelativeTime(200, 0), ...)``) and convert at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.units import MS

__all__ = ["HighResolutionTime", "RelativeTime", "AbsoluteTime"]


@total_ordering
@dataclass(frozen=True)
class HighResolutionTime:
    """A millisecond + nanosecond pair, normalised so 0 <= nanos < 1e6.

    RTSJ semantics: total value = millis * 1e6 + nanos (in ns).
    """

    millis: int = 0
    nanos: int = 0

    def __post_init__(self) -> None:
        total = self.millis * MS + self.nanos
        object.__setattr__(self, "millis", total // MS)
        object.__setattr__(self, "nanos", total % MS)

    @property
    def total_nanos(self) -> int:
        """The value as integer nanoseconds (simulator unit)."""
        return self.millis * MS + self.nanos

    @classmethod
    def from_nanos(cls, nanos: int) -> "HighResolutionTime":
        return cls(0, nanos)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HighResolutionTime):
            return NotImplemented
        return self.total_nanos == other.total_nanos

    def __lt__(self, other: "HighResolutionTime") -> bool:
        return self.total_nanos < other.total_nanos

    def __hash__(self) -> int:
        return hash(self.total_nanos)


class RelativeTime(HighResolutionTime):
    """A duration (``javax.realtime.RelativeTime``)."""

    def add(self, other: "RelativeTime") -> "RelativeTime":
        return RelativeTime(0, self.total_nanos + other.total_nanos)

    def subtract(self, other: "RelativeTime") -> "RelativeTime":
        return RelativeTime(0, self.total_nanos - other.total_nanos)


class AbsoluteTime(HighResolutionTime):
    """A date on the system clock (``javax.realtime.AbsoluteTime``)."""

    def add(self, delta: RelativeTime) -> "AbsoluteTime":
        return AbsoluteTime(0, self.total_nanos + delta.total_nanos)

    def subtract(self, other: "AbsoluteTime") -> RelativeTime:
        return RelativeTime(0, self.total_nanos - other.total_nanos)
