"""Unified observability layer: trace sinks, metrics, profiler, spans.

The paper's whole §5 is measurement tooling — nanosecond timestamps
buffered in memory, dumped to log files, and rendered by chart tools
that make WCRT overruns and allowance treatments *visible*.  This
package is that tooling grown to batch scale:

* :mod:`repro.obs.sinks` — streaming trace sinks: JSONL (lossless,
  bounded memory, :func:`~repro.obs.sinks.read_jsonl` round-trip) and
  Chrome/Perfetto ``trace_event`` JSON (open any run in
  ``chrome://tracing``);
* :mod:`repro.obs.metrics` — counters, gauges and integer-ns
  histograms fed by a trace observer; exported as ``metrics.json``;
* :mod:`repro.obs.profiler` — opt-in engine dispatch profiler (the
  experiments CLI's ``--profile`` table);
* :mod:`repro.obs.spans` — host-side spans for the exec layer
  (executor run → spec → cache lookup), surfaced in the run manifest's
  ``telemetry`` section;
* :mod:`repro.obs.runtime` — the ambient config the exec bridge
  attaches to every simulation during a CLI run;
* :mod:`repro.obs.aggregate` — mergeable telemetry snapshots that
  survive the ``PoolExecutor`` process boundary (serial == ``--jobs N``
  modulo pid tags);
* :mod:`repro.obs.progress` — crash-readable JSONL progress streams
  with resume-aware summaries;
* :mod:`repro.obs.flight` — bounded trace ring + anomaly flight
  recorder; bundles replay bit-identically via ``obs replay``;
* :mod:`repro.obs.dashboard` — static HTML dashboard over an output
  directory's manifests, telemetry and progress streams.

Command line::

    python -m repro.obs inspect out/t.jsonl
    python -m repro.obs convert out/t.jsonl --to chrome
    python -m repro.obs summarize out/t.jsonl
    python -m repro.obs progress out/progress.jsonl
    python -m repro.obs replay out/flight/flight-*.json
    python -m repro.obs dashboard out/
"""

from repro.obs.aggregate import (
    EMPTY,
    TelemetrySnapshot,
    merge,
    merge_all,
    snapshot_telemetry,
)
from repro.obs.flight import (
    AnomalyReport,
    FlightRecorder,
    ReplayResult,
    RingSink,
    load_bundle,
    replay,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    write_metrics,
)
from repro.obs.profiler import EngineProfiler
from repro.obs.progress import (
    ProgressSummary,
    ProgressWriter,
    iter_progress,
    render_progress,
    summarize_progress,
)
from repro.obs.runtime import ObsConfig, WorkerObs, activate, current
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    convert_jsonl_to_chrome,
    iter_jsonl,
    read_jsonl,
    resolve_sink,
    to_chrome,
    trace_with_sink,
    write_jsonl,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "EMPTY",
    "TelemetrySnapshot",
    "merge",
    "merge_all",
    "snapshot_telemetry",
    "AnomalyReport",
    "FlightRecorder",
    "ReplayResult",
    "RingSink",
    "load_bundle",
    "replay",
    "ProgressSummary",
    "ProgressWriter",
    "iter_progress",
    "render_progress",
    "summarize_progress",
    "WorkerObs",
    "DEFAULT_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "write_metrics",
    "EngineProfiler",
    "ObsConfig",
    "activate",
    "current",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TeeSink",
    "convert_jsonl_to_chrome",
    "iter_jsonl",
    "read_jsonl",
    "resolve_sink",
    "to_chrome",
    "trace_with_sink",
    "write_jsonl",
    "Span",
    "SpanRecorder",
]
