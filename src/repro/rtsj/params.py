"""``javax.realtime`` scheduling and release parameters.

The subset of the RTSJ parameter classes the paper manipulates:
``PriorityParameters`` (fixed priorities are the only scheduling
parameters RTSJ implementations must support) and the
``ReleaseParameters`` hierarchy carrying cost, deadline and period.
Values accept either :class:`~repro.rtsj.time.RelativeTime` or plain
integer nanoseconds.
"""

from __future__ import annotations

from repro.rtsj.time import RelativeTime

__all__ = [
    "SchedulingParameters",
    "PriorityParameters",
    "ProcessingGroupParameters",
    "ReleaseParameters",
    "PeriodicParameters",
    "AperiodicParameters",
    "SporadicParameters",
]


def _to_nanos(value: "RelativeTime | int | None") -> int | None:
    if value is None:
        return None
    if isinstance(value, RelativeTime):
        return value.total_nanos
    return int(value)


class SchedulingParameters:
    """Base of the scheduling-parameter hierarchy (empty, as in RTSJ)."""


class PriorityParameters(SchedulingParameters):
    """A fixed priority; larger = more eligible (RTSJ convention)."""

    def __init__(self, priority: int):
        self._priority = int(priority)

    def getPriority(self) -> int:  # noqa: N802 - RTSJ naming
        return self._priority

    def setPriority(self, priority: int) -> None:  # noqa: N802
        self._priority = int(priority)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PriorityParameters({self._priority})"


class ProcessingGroupParameters(SchedulingParameters):
    """Processor affinity for partitioned multiprocessor scheduling.

    RTSJ groups schedulables via ``ProcessingGroupParameters``; here the
    group names the processor its members are bound to.  A thread
    carrying these parameters is *pinned*: the partitioning heuristics
    must place it on ``processor`` (admission still runs — an
    infeasible pin is rejected, not silently honoured).  Threads
    without a group float and land wherever the heuristic decides.
    """

    def __init__(self, processor: int | None = None):
        self._processor: int | None = None
        if processor is not None:
            self.setProcessor(processor)

    def getProcessor(self) -> int | None:  # noqa: N802 - RTSJ naming
        return self._processor

    def setProcessor(self, processor: int | None) -> None:  # noqa: N802
        if processor is not None and int(processor) < 0:
            raise ValueError(f"processor must be >= 0, got {processor}")
        self._processor = None if processor is None else int(processor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessingGroupParameters({self._processor})"


class ReleaseParameters:
    """Cost and deadline of a schedulable's releases."""

    def __init__(
        self,
        cost: "RelativeTime | int | None" = None,
        deadline: "RelativeTime | int | None" = None,
    ):
        self._cost = _to_nanos(cost)
        self._deadline = _to_nanos(deadline)

    def getCost(self) -> int | None:  # noqa: N802
        return self._cost

    def setCost(self, cost: "RelativeTime | int") -> None:  # noqa: N802
        self._cost = _to_nanos(cost)

    def getDeadline(self) -> int | None:  # noqa: N802
        return self._deadline

    def setDeadline(self, deadline: "RelativeTime | int") -> None:  # noqa: N802
        self._deadline = _to_nanos(deadline)


class PeriodicParameters(ReleaseParameters):
    """Release parameters of a periodic schedulable.

    ``start`` is the first-release offset relative to system start
    (RTSJ allows absolute dates too; the simulator starts at 0 so a
    relative offset is fully general).  ``deadline`` defaults to the
    period, as in RTSJ.
    """

    def __init__(
        self,
        start: "RelativeTime | int | None" = None,
        period: "RelativeTime | int" = 0,
        cost: "RelativeTime | int | None" = None,
        deadline: "RelativeTime | int | None" = None,
    ):
        period_ns = _to_nanos(period)
        if not period_ns or period_ns <= 0:
            raise ValueError("period must be > 0")
        super().__init__(cost, deadline if deadline is not None else period_ns)
        self._start = _to_nanos(start) or 0
        self._period = period_ns

    def getStart(self) -> int:  # noqa: N802
        return self._start

    def getPeriod(self) -> int:  # noqa: N802
        return self._period

    def setPeriod(self, period: "RelativeTime | int") -> None:  # noqa: N802
        value = _to_nanos(period)
        if not value or value <= 0:
            raise ValueError("period must be > 0")
        self._period = value


class AperiodicParameters(ReleaseParameters):
    """Release parameters of an aperiodic schedulable (no rate bound)."""


class SporadicParameters(AperiodicParameters):
    """Aperiodic with a minimum interarrival time — analysable like a
    periodic task of period ``minInterarrival`` (used by the §7
    future-work sporadic support)."""

    def __init__(
        self,
        minInterarrival: "RelativeTime | int",  # noqa: N803 - RTSJ naming
        cost: "RelativeTime | int | None" = None,
        deadline: "RelativeTime | int | None" = None,
    ):
        mit = _to_nanos(minInterarrival)
        if not mit or mit <= 0:
            raise ValueError("minimum interarrival must be > 0")
        super().__init__(cost, deadline if deadline is not None else mit)
        self._mit = mit

    def getMinimumInterarrival(self) -> int:  # noqa: N802
        return self._mit
