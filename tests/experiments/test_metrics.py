"""Unit tests for run metrics."""

from repro.core.treatments import TreatmentKind
from repro.experiments.metrics import compute_metrics
from repro.sim.simulation import simulate
from repro.units import ms
from repro.workloads.scenarios import (
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
)


def run(treatment=None):
    res = simulate(
        paper_figures_taskset(),
        horizon=paper_horizon(),
        faults=paper_fault(),
        treatment=treatment,
    )
    return res, compute_metrics(res)


class TestTaskMetrics:
    def test_job_counts(self):
        _, m = run()
        # tau1: releases at 0..1600 every 200 -> 9 jobs.
        assert m.per_task["tau1"].jobs == 9
        assert m.per_task["tau3"].jobs == 1

    def test_faulty_flag_via_overrun_demand(self):
        _, m = run()
        assert m.per_task["tau1"].faulty
        assert m.per_task["tau1"].total_overrun_demand == ms(40)
        assert not m.per_task["tau3"].faulty

    def test_failed_via_miss(self):
        _, m = run()
        assert m.per_task["tau3"].failed
        assert not m.per_task["tau2"].failed

    def test_failed_via_stop(self):
        _, m = run(TreatmentKind.IMMEDIATE_STOP)
        assert m.per_task["tau1"].failed
        assert m.per_task["tau1"].stopped == 1
        assert m.per_task["tau1"].deadline_misses == 0

    def test_max_response_time(self):
        _, m = run()
        # tau3's only job responds in 127 ms (87 + 40 overrun delay).
        assert m.per_task["tau3"].max_response_time == ms(127)


class TestRunMetrics:
    def test_collateral_failures_without_treatment(self):
        _, m = run()
        assert m.failed_tasks == ["tau3"]
        assert m.collateral_failures == ["tau3"]

    def test_no_collateral_with_treatment(self):
        _, m = run(TreatmentKind.SYSTEM_ALLOWANCE)
        assert m.failed_tasks == ["tau1"]
        assert m.collateral_failures == []

    def test_idle_time(self):
        res, m = run()
        assert m.idle_time == res.horizon - res.busy_time
        assert m.idle_time > 0

    def test_detector_counts(self):
        _, m = run(TreatmentKind.DETECT_ONLY)
        assert m.detector_fires > 0
        assert m.detections >= 1

    def test_total_misses(self):
        _, m = run()
        assert m.total_misses == 1
