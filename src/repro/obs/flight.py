"""Anomaly flight recorder: bounded trace ring + replayable bundles.

When a 10k-system sweep surfaces one anomalous system — a deadline
miss where the analysis said feasible, or a batched-vs-exact
fingerprint divergence — the interesting evidence is gone by the time
anyone looks: population code deliberately discards traces (memory
discipline, lint rule RT011) and the system itself was drawn from a
seed deep inside a chunk.  The flight recorder closes that gap the way
an aircraft recorder does: a bounded :class:`RingSink` keeps the *last
N* trace events of whatever simulation is currently running, and when
a trigger fires, :class:`FlightRecorder.capture` dumps a
**self-contained replay bundle**: the sweep/spec identity, the exact
task set, the fault model, the treatment, the expected schedule
fingerprint and the tail of the trace ring.

``python -m repro.obs replay bundle.json`` (:func:`replay`) rebuilds
the system from the bundle alone — no sweep, no cache — re-runs the
exact engine and asserts a bit-identical schedule fingerprint, turning
every captured anomaly into a deterministic regression check.

Triggers wired in ``repro.exec.sweep``:

* ``miss-despite-feasible`` — a point whose task set passes
  :func:`repro.core.feasibility.is_feasible` yet missed a deadline in
  simulation (with faults injected this is *expected* — the analysis
  models declared costs — which makes it the perfect seeded anomaly
  for end-to-end tests; without faults it would be an oracle bug);
* ``stepper-divergence`` — the ``verify`` stepper ran a
  classifier-eligible system through both the vectorized stepper and
  the exact engine and their record fingerprints disagreed;
* ``oracle-divergence`` — the differential sim-vs-analysis oracle
  (``tests/oracle``) failed an invariant while a recorder was active.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.sim.trace import TraceEvent

__all__ = [
    "BUNDLE_SCHEMA",
    "RingSink",
    "AnomalyReport",
    "FlightRecorder",
    "ReplayResult",
    "load_bundle",
    "replay",
]

BUNDLE_SCHEMA = 1

#: Default ring capacity: enough for the closing few hyperperiods of a
#: small system while keeping per-worker memory bounded.
DEFAULT_RING_CAPACITY = 512


class RingSink:
    """Keep only the most recent *capacity* trace events.

    The bounded drop-in for :class:`~repro.sim.trace.MemorySink` in
    population/sweep code (lint rule RT011): O(capacity) memory however
    long the horizon, with the interesting tail — the events leading up
    to the anomaly — always retained.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    def close(self) -> None:
        pass

    def clear(self) -> None:
        """Reset between systems so a tail never spans two simulations."""
        self._events.clear()
        self.emitted = 0

    def tail(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


# -- bundle (de)serialisation -------------------------------------------------
def _tasks_to_data(taskset: Iterable[Any]) -> list[dict[str, Any]]:
    out = []
    for t in taskset:
        row: dict[str, Any] = {
            "name": t.name,
            "cost": t.cost,
            "period": t.period,
            "priority": t.priority,
            "deadline": t.deadline,
            "offset": t.offset,
        }
        if t.mk is not None:
            row["mk"] = [t.mk.m, t.mk.k]
        out.append(row)
    return out


def _tasks_from_data(data: Sequence[Mapping[str, Any]]):
    from repro.core.task import Task, TaskSet
    from repro.core.weakly_hard import MKConstraint

    return TaskSet(
        Task(
            name=str(t["name"]),
            cost=int(t["cost"]),
            period=int(t["period"]),
            priority=int(t["priority"]),
            deadline=int(t["deadline"]),
            offset=int(t.get("offset", 0)),
            mk=(
                MKConstraint(int(t["mk"][0]), int(t["mk"][1]))
                if t.get("mk") is not None
                else None
            ),
        )
        for t in data
    )


def _faults_to_data(faults: Any) -> dict[str, Any] | None:
    """Fault models as data.  Only the models sweeps construct are
    supported — exactly the ones an anomaly bundle can meet."""
    from repro.core.faults import FaultInjector, NoFaults, RandomFaults

    if faults is None or isinstance(faults, NoFaults):
        return None
    if isinstance(faults, RandomFaults):
        return {
            "kind": "random",
            "rate": faults.rate,
            "max_extra": faults.max_extra,
            "seed": faults.seed,
        }
    if isinstance(faults, FaultInjector):
        return {
            "kind": "injector",
            "deviations": [
                [task, job, delta]
                for (task, job), delta in sorted(faults.deviations.items())
            ],
        }
    raise TypeError(f"cannot serialise fault model {faults!r} into a flight bundle")


def _faults_from_data(data: Mapping[str, Any] | None):
    from repro.core.faults import (
        CostOverrun,
        CostUnderrun,
        FaultInjector,
        RandomFaults,
    )

    if data is None:
        return None
    if data["kind"] == "random":
        return RandomFaults(
            rate=float(data["rate"]),
            max_extra=int(data["max_extra"]),
            seed=int(data["seed"]),
        )
    if data["kind"] == "injector":
        return FaultInjector(
            CostOverrun(task, job, delta)
            if delta > 0
            else CostUnderrun(task, job, -delta)
            for task, job, delta in data["deviations"]
        )
    raise ValueError(f"unknown fault model kind {data['kind']!r}")


@dataclass(frozen=True)
class AnomalyReport:
    """One trigger firing: what looked wrong, and how to rebuild it."""

    kind: str  # e.g. "miss-despite-feasible", "stepper-divergence"
    detail: str
    taskset: Any
    horizon: int
    faults: Any = None
    treatment: str | None = None
    #: The exact-engine schedule fingerprint replay must reproduce
    #: (empty when the trigger has no reference fingerprint).
    expected_fingerprint: str = ""
    observed_fingerprint: str = ""
    #: Where in the sweep the anomaly sits (free-form identity fields).
    context: tuple[tuple[str, Any], ...] = ()

    def bundle(self, events: Sequence[TraceEvent] = ()) -> dict[str, Any]:
        return {
            "schema": BUNDLE_SCHEMA,
            "kind": self.kind,
            "detail": self.detail,
            "context": dict(self.context),
            "system": {
                "tasks": _tasks_to_data(self.taskset),
                "horizon": self.horizon,
                "faults": _faults_to_data(self.faults),
                "treatment": self.treatment,
            },
            "expected_fingerprint": self.expected_fingerprint,
            "observed_fingerprint": self.observed_fingerprint,
            "ring_tail": [e.to_dict() for e in events],
        }


class FlightRecorder:
    """Owns the trace ring and writes anomaly bundles to *out_dir*.

    Deliberately cheap while nothing is wrong: the steady-state cost is
    the ring append per trace event; serialisation happens only when a
    trigger fires.  Bundle file names are deterministic functions of
    the report identity, so re-running the same sweep overwrites rather
    than accumulates.
    """

    def __init__(
        self,
        out_dir: str | Path,
        *,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        self.out_dir = Path(out_dir)
        self.ring = RingSink(ring_capacity)
        self.bundles: list[str] = []

    def capture(
        self, report: AnomalyReport, events: Sequence[TraceEvent] | None = None
    ) -> Path:
        """Write *report* as a replay bundle; *events* defaults to the
        current ring tail.  Returns the bundle path."""
        from repro.rng import stable_hash

        if events is None:
            events = self.ring.tail()
        doc = report.bundle(events)
        key = stable_hash(
            report.kind,
            tuple(sorted(dict(report.context).items(), key=lambda kv: kv[0])),
            report.expected_fingerprint,
        )
        path = self.out_dir / f"flight-{report.kind}-{key:08x}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        name = str(path)
        if name not in self.bundles:
            self.bundles.append(name)
        return path


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-running a bundle through the exact engine."""

    bundle: str
    kind: str
    expected_fingerprint: str
    replayed_fingerprint: str
    released: int = 0
    misses: int = 0

    @property
    def ok(self) -> bool:
        """Bit-identical schedule: the bundle reproduces (bundles with
        no reference fingerprint trivially verify the re-run itself)."""
        return (
            not self.expected_fingerprint
            or self.replayed_fingerprint == self.expected_fingerprint
        )

    def describe(self) -> str:
        verdict = "REPRODUCED" if self.ok else "DIVERGED"
        expected = self.expected_fingerprint or "(none recorded)"
        return (
            f"{verdict} {self.bundle} [{self.kind}]\n"
            f"  expected fingerprint: {expected}\n"
            f"  replayed fingerprint: {self.replayed_fingerprint}\n"
            f"  jobs released: {self.released}, deadline misses: {self.misses}"
        )


def load_bundle(path: str | Path) -> dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(f"{path}: unsupported flight bundle schema {doc.get('schema')!r}")
    return doc


def replay(path: str | Path) -> ReplayResult:
    """Re-run a bundle's system through the exact engine and compare
    schedule fingerprints.

    Imports the exec/sim stack lazily: ``repro.obs`` must stay
    importable without dragging the simulator in (and the exec layer
    imports ``repro.obs`` itself).
    """
    from repro.core.treatments import TreatmentKind
    from repro.exec.sim import run_simulation
    from repro.rng import stable_hash
    from repro.sim.batch import sim_job_records

    doc = load_bundle(path)
    system = doc["system"]
    taskset = _tasks_from_data(system["tasks"])
    treatment = TreatmentKind(system["treatment"]) if system["treatment"] else None
    result = run_simulation(
        taskset,
        horizon=int(system["horizon"]),
        faults=_faults_from_data(system["faults"]),
        treatment=treatment,
    )
    records = sim_job_records(result)
    return ReplayResult(
        bundle=str(path),
        kind=str(doc["kind"]),
        expected_fingerprint=str(doc.get("expected_fingerprint", "")),
        replayed_fingerprint=f"{stable_hash(records):08x}",
        released=len(records),
        misses=sum(1 for r in records if r[4]),
    )
