#!/usr/bin/env python3
"""Regenerate the paper's full evaluation story (Figures 3-7).

Runs the Table 2 system under the five configurations of §6 — no
detection, detection only, immediate stop, equitable allowance, system
allowance — with the same injected fault, prints each chart, checks
every qualitative claim the paper makes, and (optionally) writes SVG
versions.

Run:  python examples/paper_figures.py [output-dir-for-svg]
"""

import sys
from pathlib import Path

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table2,
    table3,
)
from repro.viz import SvgOptions, render_svg

svg_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else None
if svg_dir is not None:
    svg_dir.mkdir(parents=True, exist_ok=True)

print(table2().render())
print()
print(table3().render())
print()

all_ok = True
for number, factory in [(3, figure3), (4, figure4), (5, figure5), (6, figure6), (7, figure7)]:
    result = factory()
    print(result.render())
    for claim in result.claims():
        print(f"  {claim}")
        all_ok &= claim.holds
    print()
    if svg_dir is not None:
        path = svg_dir / f"figure{number}.svg"
        path.write_text(render_svg(result.result, SvgOptions(title=result.name)))
        print(f"  wrote {path}\n")

print("all paper claims hold" if all_ok else "SOME CLAIMS FAILED")
sys.exit(0 if all_ok else 1)
