"""RT011 — population code must not buffer traces in unbounded sinks.

``MemorySink`` keeps every trace event of a run in a Python list.
That is the right tool for a single simulation under test, and exactly
the wrong one at population scale: a 10k-system sweep with tracing
armed would accumulate hundreds of millions of events before the first
chunk is written out.  The population/sweep stack therefore has two
sanctioned sinks only — the bounded :class:`repro.obs.flight.RingSink`
(last-N events for anomaly bundles) and streaming sinks
(``JsonlSink`` / ``NullSink``), which hold O(1) state.

This rule flags any ``MemorySink(...)`` instantiation inside the
population modules.  Passing one *in* from calling code is still
possible (and visible at the call site); what the rule forbids is the
population layer quietly constructing its own unbounded buffer.
"""

from __future__ import annotations

from pathlib import Path

import ast

from repro.analysis.lint import Rule, attr_call, register

__all__ = ["SinkDiscipline"]

#: Modules that make up the population/sweep stack (kept in sync with
#: RT010's list — the same layer, a different failure mode).
_POPULATION_MODULES = (
    "repro/sim/batch.py",
    "repro/workloads/population.py",
    "repro/exec/sweep.py",
    "repro/experiments/population.py",
)

_HINT = (
    "buffering every event of a population run is unbounded memory; "
    "use the bounded repro.obs.flight.RingSink for anomaly tails or a "
    "streaming JsonlSink/NullSink"
)


def _in_population_stack(path: str) -> bool:
    posix = Path(path).as_posix()
    return any(posix.endswith(mod) for mod in _POPULATION_MODULES)


@register
class SinkDiscipline(Rule):
    """RT011: unbounded MemorySink construction in population code."""

    code = "RT011"
    name = "sink-discipline"
    description = (
        "Population/sweep modules constructing MemorySink buffer every "
        "trace event of a population run in memory; bounded RingSink or "
        "streaming sinks are the sanctioned alternatives."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._active = _in_population_stack(ctx.path)

    def visit_Call(self, node: ast.Call) -> None:
        if self._active:
            name = None
            if isinstance(node.func, ast.Name) and node.func.id == "MemorySink":
                name = node.func.id
            else:
                base_attr = attr_call(node)
                if base_attr is not None and base_attr[1] == "MemorySink":
                    name = f"{base_attr[0]}.{base_attr[1]}"
            if name is not None:
                self.report(
                    node,
                    f"{name}() constructed in population code buffers an "
                    f"entire population run's trace in memory",
                    hint=_HINT,
                )
        self.generic_visit(node)
