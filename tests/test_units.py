"""Unit tests for time unit helpers."""

import pytest

from repro.units import MS, US, fmt_ms, fmt_time, ms, ns, seconds, to_ms, to_us, us


class TestConversions:
    def test_scales(self):
        assert ns(5) == 5
        assert us(5) == 5_000
        assert ms(5) == 5_000_000
        assert seconds(5) == 5_000_000_000

    def test_float_inputs_exact(self):
        assert ms(0.5) == 500_000
        assert ms(0.001) == 1_000
        assert us(1.5) == 1_500

    def test_sub_nanosecond_rejected(self):
        with pytest.raises(ValueError):
            ns(0.5)
        with pytest.raises(ValueError):
            us(0.0001)

    def test_to_ms(self):
        assert to_ms(ms(29)) == 29.0
        assert to_ms(us(1500)) == 1.5

    def test_to_us(self):
        assert to_us(us(7)) == 7.0


class TestFormatting:
    def test_fmt_ms(self):
        assert fmt_ms(ms(29)) == "29ms"
        assert fmt_ms(us(1500)) == "1.5ms"

    def test_fmt_time_selects_unit(self):
        assert fmt_time(0) == "0"
        assert fmt_time(ms(3)) == "3ms"
        assert fmt_time(us(3)) == "3us"
        assert fmt_time(seconds(2)) == "2s"
        assert fmt_time(5) == "5ns"

    def test_fmt_time_fractional(self):
        assert fmt_time(ms(1) + us(500)) == "1.5ms"

    def test_constants(self):
        assert MS == 1_000_000
        assert US == 1_000
