"""Figure 5: instantaneous stop of the faulty task.

Shape reproduced: tau1 is stopped at its detection point (release +
WCRT = 1029 ms), it is the only failed task, and the processor goes
idle before tau3's deadline — the wasted slack motivating §4.2/§4.3.
"""

from repro.experiments.paper import figure5
from repro.units import ms


def test_figure5_immediate_stop(benchmark):
    result = benchmark(figure5)
    assert all(c.holds for c in result.claims()), [
        c.description for c in result.claims() if not c.holds
    ]
    assert result.job_end("tau1", 5) == ms(1029)
    assert result.job_end("tau2", 4) == ms(1058)
    assert result.job_end("tau3", 0) == ms(1087)
    # CPU idle between tau3's completion (1087) and its deadline (1120):
    # the wasted 33 ms the allowance policies will hand to tau1.
    assert result.metrics.failed_tasks == ["tau1"]
    assert result.metrics.collateral_failures == []
