"""``javax.realtime`` async events and timers.

The paper's detector is "an instance of ``PeriodicTimer`` which checks
the states of a boolean value and a job counter" (§3.1).  This module
provides the RTSJ event machinery over the simulation engine:

* :class:`AsyncEvent` / :class:`AsyncEventHandler` — fire-and-handle;
* :class:`OneShotTimer` — a single firing at an offset from start;
* :class:`PeriodicTimer` — repeated firings; on a jRate-profiled VM the
  *first* release is only honoured at the timer resolution (the §6.2
  quirk: "if the value given for the first release is not a multiple of
  ten, the precision is not good"), modelled by quantising the first
  release with the VM's rounding policy.

Timers are registered with a :class:`~repro.rtsj.system.RealtimeSystem`
and armed on its engine when the system runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.rtsj.time import RelativeTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.vm import VMProfile
    from repro.rtsj.system import RealtimeSystem

__all__ = ["AsyncEvent", "AsyncEventHandler", "OneShotTimer", "PeriodicTimer"]


def _to_nanos(value: "RelativeTime | int") -> int:
    return value.total_nanos if isinstance(value, RelativeTime) else int(value)


class AsyncEventHandler:
    """Wraps the handler logic; ``handleAsyncEvent`` runs it.

    *logic* receives the fire count (0-based) — RTSJ handlers would
    query ``getAndClearPendingFireCount``; passing the index directly
    keeps detector handlers simple.
    """

    def __init__(self, logic: Callable[[int], None]):
        self._logic = logic
        self.fire_count = 0

    def handleAsyncEvent(self, index: int) -> None:  # noqa: N802
        self.fire_count += 1
        self._logic(index)


class AsyncEvent:
    """An event with attached handlers."""

    def __init__(self) -> None:
        self._handlers: list[AsyncEventHandler] = []

    def addHandler(self, handler: AsyncEventHandler) -> None:  # noqa: N802
        self._handlers.append(handler)

    def removeHandler(self, handler: AsyncEventHandler) -> None:  # noqa: N802
        self._handlers.remove(handler)

    def fire(self, index: int = 0) -> None:
        for handler in list(self._handlers):
            handler.handleAsyncEvent(index)


class _Timer(AsyncEvent):
    """Common timer plumbing: registration, start/stop."""

    def __init__(self, system: "RealtimeSystem", handler: AsyncEventHandler | None):
        super().__init__()
        if handler is not None:
            self.addHandler(handler)
        self._system = system
        self._started = False
        self._stopped = False
        system._register_timer(self)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("timer already started")
        self._started = True

    def stop(self) -> None:
        """Disable future firings."""
        self._stopped = True

    @property
    def started(self) -> bool:
        return self._started

    def _arm(self, engine: "Engine", vm: "VMProfile", horizon: int) -> None:
        raise NotImplementedError


class OneShotTimer(_Timer):
    """Fires once, *time* after system start."""

    def __init__(
        self,
        time: "RelativeTime | int",
        handler: AsyncEventHandler | None,
        system: "RealtimeSystem",
    ):
        super().__init__(system, handler)
        self._time = _to_nanos(time)
        if self._time < 0:
            raise ValueError("time must be >= 0")

    def _arm(self, engine: "Engine", vm: "VMProfile", horizon: int) -> None:
        from repro.sim.engine import Rank

        when = vm.timer_rounding.apply(self._time)
        if when > horizon:
            return

        def fire() -> None:
            if not self._stopped:
                self.fire(0)

        engine.schedule(when, fire, Rank.DETECTOR)


class PeriodicTimer(_Timer):
    """Fires at ``start, start + interval, start + 2*interval, ...``.

    The *first release* is quantised by the VM's timer rounding (jRate's
    10 ms precision quirk); subsequent releases keep the exact interval,
    matching the constant 1/2/3 ms detector delays of Figure 4.
    """

    def __init__(
        self,
        start: "RelativeTime | int",
        interval: "RelativeTime | int",
        handler: AsyncEventHandler | None,
        system: "RealtimeSystem",
    ):
        super().__init__(system, handler)
        self._start = _to_nanos(start)
        self._interval = _to_nanos(interval)
        if self._start < 0:
            raise ValueError("start must be >= 0")
        if self._interval <= 0:
            raise ValueError("interval must be > 0")

    @property
    def effective_start(self) -> int:
        """First release after VM quantisation (without a system run
        this uses the system's VM profile)."""
        return self._system.vm.timer_rounding.apply(self._start)

    def _arm(self, engine: "Engine", vm: "VMProfile", horizon: int) -> None:
        from repro.sim.engine import Rank

        first = vm.timer_rounding.apply(self._start)
        index = 0
        when = first
        while when <= horizon:
            def fire(i: int = index) -> None:
                if not self._stopped:
                    self.fire(i)

            engine.schedule(when, fire, Rank.DETECTOR)
            index += 1
            when = first + index * self._interval
