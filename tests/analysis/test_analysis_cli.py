"""The ``python -m repro.analysis`` front end: formats and exit codes."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import main


def write(tmp_path, name, content):
    p = tmp_path / name
    p.write_text(textwrap.dedent(content))
    return p


BAD_PY = """
    import random

    def jitter(period):
        return period * 0.5 + random.random()
"""

CLEAN_PY = """
    def response_time(cost, interference):
        return cost + interference
"""

BAD_SCN = """
    @unit ms
    task a priority=1 cost=0 period=10
"""


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = write(tmp_path, "clean.py", CLEAN_PY)
        assert main([str(p)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD_PY)
        assert main([str(p)]) == 1
        out = capsys.readouterr().out
        assert "RT001" in out and "RT003" in out

    def test_scenario_errors_exit_nonzero(self, tmp_path, capsys):
        p = write(tmp_path, "bad.scn", BAD_SCN)
        assert main([str(p)]) == 1
        assert "TS002" in capsys.readouterr().out

    def test_directory_walk_mixes_both_checkers(self, tmp_path, capsys):
        write(tmp_path, "bad.py", BAD_PY)
        write(tmp_path, "bad.scn", BAD_SCN)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RT001" in out and "TS002" in out

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["does/not/exist.py"]) == 2

    def test_select_restricts_codes(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD_PY)
        assert main([str(p), "--select", "RT003"]) == 1
        out = capsys.readouterr().out
        assert "RT003" in out and "RT001" not in out

    def test_unknown_select_code_is_a_usage_error(self, tmp_path, capsys):
        # A typo'd code must not silently disable every check.
        p = write(tmp_path, "bad.py", BAD_PY)
        assert main([str(p), "--select", "RT999"]) == 2
        assert "RT999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RT001", "RT002", "RT003", "RT004", "RT005"):
            assert code in out


class TestJsonFormat:
    def test_schema(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD_PY)
        assert main([str(p), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["errors"] == len(payload["diagnostics"]) > 0
        first = payload["diagnostics"][0]
        assert set(first) == {
            "code", "severity", "message", "path", "line", "column", "hint",
        }
        assert first["severity"] in ("error", "warning")
        assert first["path"].endswith("bad.py")
        assert first["line"] > 0

    def test_clean_run_is_valid_json_too(self, tmp_path, capsys):
        p = write(tmp_path, "clean.py", CLEAN_PY)
        assert main([str(p), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert payload["summary"] == {"errors": 0, "warnings": 0}

    def test_diagnostics_are_sorted_deterministically(self, tmp_path, capsys):
        write(tmp_path, "b.py", BAD_PY)
        write(tmp_path, "a.py", BAD_PY)
        main([str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        locs = [(d["path"], d["line"], d["column"], d["code"]) for d in payload["diagnostics"]]
        assert locs == sorted(locs)


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self, tmp_path):
        """The documented invocation: python -m repro.analysis <paths>."""
        bad = write(tmp_path, "bad.py", BAD_PY)
        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RT001" in proc.stdout
