"""Runtime precedence: successor releases triggered by completions.

Counterpart of :mod:`repro.core.precedence`: root tasks release
periodically as usual; a task with predecessors releases its job *k*
the instant the last of its predecessors' jobs *k* completes (an AND
join).  Response times and deadlines of successors are still measured
from their own (dynamic) release; end-to-end latency is measured from
the transaction (root) release via :func:`end_to_end_latencies`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.faults import FaultModel
from repro.core.precedence import PrecedenceGraph
from repro.core.task import Task
from repro.core.treatments import TreatmentPlan
from repro.sim.engine import Rank
from repro.sim.jobs import Job
from repro.sim.simulation import SimResult, Simulation
from repro.sim.vm import EXACT_VM, VMProfile

__all__ = ["ChainSimulation", "simulate_chains", "end_to_end_latencies"]


class ChainSimulation(Simulation):
    """A simulation whose releases honour a precedence DAG."""

    def __init__(
        self,
        graph: PrecedenceGraph,
        *,
        horizon: int,
        faults: FaultModel | None = None,
        plan: TreatmentPlan | None = None,
        vm: VMProfile = EXACT_VM,
    ):
        self.graph = graph
        self._roots = set(graph.roots())
        # (successor, index) -> number of predecessor completions still
        # awaited before the release fires.
        self._waiting: dict[tuple[str, int], int] = {}
        super().__init__(
            graph.taskset, horizon=horizon, faults=faults, plan=plan, vm=vm
        )
        # Successor completions trigger further releases.
        for task in graph.taskset:
            if graph.successors(task.name):
                self.job_end_hooks.setdefault(task.name, []).append(
                    self._on_predecessor_done
                )

    def _clock_released(self, task: Task) -> bool:
        # Only roots are clock-released (with their detectors chained by
        # the base class); successors are event-released below, with
        # their detectors armed per actual release.
        return task.name in self._roots

    # -- event-driven successor releases ---------------------------------------
    def _on_predecessor_done(self, job: Job) -> None:
        for succ in self.graph.successors(job.name):
            key = (succ, job.index)
            if key not in self._waiting:
                self._waiting[key] = len(self.graph.predecessors(succ))
            self._waiting[key] -= 1
            if self._waiting[key] == 0:
                self._release_successor(self.taskset[succ], job.index)

    def _release_successor(self, task: Task, index: int) -> None:
        now = self.engine.now
        if now > self.horizon:
            return
        self.engine.schedule(now, self._make_release(task, index), Rank.RELEASE)
        if self.plan is not None:
            spec = self.plan.detector_for(task.name)
            if spec is not None:
                fire = now + spec.offset
                if fire <= self.horizon:
                    self.engine.schedule(
                        fire, self._make_detector_fire(task, index), Rank.DETECTOR
                    )


def simulate_chains(
    graph: PrecedenceGraph,
    *,
    horizon: int,
    faults: FaultModel | None = None,
    plan: TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
) -> SimResult:
    """Run a precedence-constrained scenario."""
    return ChainSimulation(
        graph, horizon=horizon, faults=faults, plan=plan, vm=vm
    ).run()


def end_to_end_latencies(
    result: SimResult, graph: PrecedenceGraph, chain: list[str]
) -> dict[int, int]:
    """Observed latency per transaction index: sink completion minus
    root release (only indices where both exist)."""
    if not chain:
        raise ValueError("chain must be non-empty")
    root, sink = chain[0], chain[-1]
    releases = {j.index: j.release for j in result.jobs_of(root)}
    out: dict[int, int] = {}
    for job in result.jobs_of(sink):
        if job.finished_at is not None and job.index in releases:
            out[job.index] = job.finished_at - releases[job.index]
    return out
