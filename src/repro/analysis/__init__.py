"""Static invariant checking for the reproduction.

Two layers share one :class:`~repro.analysis.diagnostics.Diagnostic`
vocabulary:

* :mod:`repro.analysis.lint` — an AST linter with pluggable rules
  (``RT0xx`` codes) enforcing integer-nanosecond time discipline,
  determinism, frozen-dataclass immutability and named engine ranks;
* :mod:`repro.analysis.taskset` — a semantic validator for scenario
  files and task sets (``TS0xx`` codes: parameter sanity, utilization,
  deadline anomalies, priority collisions).

Run both from the command line::

    python -m repro.analysis src/repro examples --format json

and from tests/CI via :func:`check_paths`.  The repository's own tree
is kept violation-free by ``tests/analysis/test_self_lint.py``.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    render_json,
    render_text,
    worst_severity,
)
from repro.analysis.lint import (
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.taskset import (
    validate_scenario_file,
    validate_scenario_text,
    validate_taskset,
)
from repro.analysis.cli import check_paths, main

__all__ = [
    "Diagnostic",
    "Severity",
    "render_json",
    "render_text",
    "worst_severity",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "validate_taskset",
    "validate_scenario_text",
    "validate_scenario_file",
    "check_paths",
    "main",
]
