"""Aperiodic servers — analysis for the §7 "aperiodic tasks" axis.

Sporadic tasks (``core.sporadic``) cover aperiodic work with a minimum
interarrival; genuinely unconstrained aperiodic requests are instead
handled by a *server*: a periodic budget at a fixed priority that
drains an aperiodic queue.  Two classic fixed-priority servers:

* **polling server (PS)** — budget available only at period starts; if
  the queue is empty the budget is lost.  For the *periodic* tasks the
  PS is indistinguishable from a periodic task ``(C_s, T_s)``, so the
  whole admission-control/allowance machinery of the paper applies
  verbatim with the server added to the set;
* **deferrable server (DS)** — budget preserved across the period,
  consumed whenever requests arrive.  Bandwidth preservation improves
  aperiodic response but hurts lower tasks: the DS can execute
  back-to-back at a period boundary, which is exactly a release jitter
  of ``T_s - C_s`` in the interference term (the standard analysis).

The module provides the interference-correct feasibility analysis for
both, and queueing-style response bounds for the aperiodic requests
under a polling server.  The runtime counterpart (a simulated polling
server) lives in :mod:`repro.sim.servers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.feasibility import wc_response_time
from repro.core.jitter import response_time_with_jitter
from repro.core.task import Task, TaskSet

__all__ = [
    "ServerSpec",
    "polling_server_taskset",
    "deferrable_response_times",
    "deferrable_feasible",
    "polling_response_bound",
    "server_sizing",
]


@dataclass(frozen=True)
class ServerSpec:
    """A periodic server: *capacity* of budget every *period*."""

    name: str
    capacity: int
    period: int
    priority: int
    deadline: int = -1

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.period <= 0:
            raise ValueError("capacity and period must be > 0")
        if self.capacity > self.period:
            raise ValueError("capacity cannot exceed the period")
        if self.deadline == -1:
            object.__setattr__(self, "deadline", self.period)

    @property
    def utilization(self) -> float:
        return self.capacity / self.period

    def as_task(self) -> Task:
        """The periodic-task view (exact for a polling server)."""
        return Task(
            name=self.name,
            cost=self.capacity,
            period=self.period,
            deadline=self.deadline,
            priority=self.priority,
        )


def polling_server_taskset(taskset: TaskSet, server: ServerSpec) -> TaskSet:
    """The analysis set for a system hosting a polling server.

    A PS never executes more than ``C_s`` in any of its periods and
    only at its releases, so for every other task it is exactly the
    periodic task ``(C_s, T_s)``; feasibility, WCRTs, allowances and
    detectors all come from the ordinary analysis on this set.
    """
    return taskset.with_task(server.as_task())


def deferrable_response_times(
    taskset: TaskSet, server: ServerSpec
) -> dict[str, int | None]:
    """WCRTs of the periodic tasks under a *deferrable* server.

    The DS's bandwidth preservation shows up as release jitter
    ``T_s - C_s`` on the server in the interference of lower-priority
    tasks (back-to-back executions at a period boundary).  Computed
    with the jitter-aware analysis; the server itself is reported at
    its jitter-free bound (its budget is available at release).
    Requires constrained deadlines (as the jitter analysis does).
    """
    full = polling_server_taskset(taskset, server)
    jitter = {server.name: server.period - server.capacity}
    out: dict[str, int | None] = {}
    for task in taskset:
        out[task.name] = response_time_with_jitter(task, full, jitter)
    out[server.name] = response_time_with_jitter(
        full[server.name], full, {}
    )
    return out


def deferrable_feasible(taskset: TaskSet, server: ServerSpec) -> bool:
    """Admission control for a system hosting a deferrable server."""
    responses = deferrable_response_times(taskset, server)
    full = polling_server_taskset(taskset, server)
    return all(
        r is not None and r <= full[name].deadline for name, r in responses.items()
    )


def polling_response_bound(
    backlog: int, server: ServerSpec, taskset: TaskSet
) -> int | None:
    """Worst-case completion delay of an aperiodic *backlog* (ns of
    work at the head of the queue, including the request itself) under
    a polling server.

    The request may arrive just after a poll: it waits at most ``T_s``
    for the next release; each server period then clears ``C_s`` of
    backlog, and within each serving period the work completes by the
    server's own worst-case response time.  With ``k = ceil(backlog /
    C_s)`` chunks the bound is::

        T_s + (k - 1) * T_s + R_s

    where ``R_s`` is the server's WCRT among the periodic tasks.
    Returns None when the server itself is unschedulable.
    """
    if backlog <= 0:
        raise ValueError("backlog must be > 0")
    full = polling_server_taskset(taskset, server)
    r_s = wc_response_time(full[server.name], full)
    if r_s is None or r_s > server.deadline:
        return None
    chunks = -(-backlog // server.capacity)
    return server.period + (chunks - 1) * server.period + r_s


def server_sizing(
    taskset: TaskSet, period: int, priority: int, *, name: str = "server"
) -> ServerSpec | None:
    """Largest polling-server capacity at (*period*, *priority*) that
    keeps the periodic set feasible — the §4.2 binary search reused to
    size a server instead of an allowance.

    Returns None when even 1 ns of capacity is infeasible.
    """
    from repro.core.allowance import max_such_that
    from repro.core.context import AnalysisContext
    from repro.core.feasibility import is_feasible

    if not is_feasible(taskset):
        return None
    # Capacity is bounded by the period and by the residual bandwidth.
    num, den = taskset.utilization_exact()
    residual = Fraction(den - num, den) * period
    hi = min(period, int(residual)) if num < den else 0
    if hi < 1:
        return None
    # The server set's structure is capacity-independent (deadline is
    # the period), so all probes are cost views of one context: each
    # capacity warm-starts the next (DESIGN.md §3.5).
    probe = ServerSpec(name=name, capacity=1, period=period, priority=priority)
    ctx = AnalysisContext(polling_server_taskset(taskset, probe))

    def pred(capacity: int) -> bool:
        return capacity == 0 or ctx.with_task_cost(name, capacity).feasible

    best = max_such_that(pred, hi)
    if best == 0:
        return None
    return ServerSpec(name=name, capacity=best, period=period, priority=priority)
