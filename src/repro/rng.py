"""Deterministic, injectable randomness.

Everything stochastic in the reproduction (platform overheads, random
fault sweeps, workload generation, sporadic arrivals) must replay
bit-exactly from a seed — otherwise the paper's tables cannot be
checked against a rerun.  Two helpers make that easy to get right:

* :func:`stable_hash` — a process-independent hash for seeding.  The
  builtin :func:`hash` is salted per process for ``str``/``bytes``
  (PEP 456), so ``random.Random(hash(("tau1", 5)))`` yields a
  *different* stream on every run; ``stable_hash`` does not.
* :func:`derive_rng` — an independent seeded stream per key, so
  per-entity draws (e.g. the fault model's per-job overruns) are
  query-order independent.

Call sites accept an optional ``rng: random.Random`` so tests and
experiments can inject their own stream; :func:`resolve_rng` implements
the convention (``None`` -> fresh ``Random(seed)``).

The ``RT003`` lint rule (:mod:`repro.analysis.rules.determinism`)
enforces that no code bypasses this module with global or
``hash``-seeded randomness.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["stable_hash", "derive_rng", "resolve_rng"]


def stable_hash(*parts: object) -> int:
    """A hash of *parts* that is identical in every Python process.

    Parts are combined via their ``repr`` (unambiguous for the str/int
    keys used as RNG identities here) and crushed with CRC-32 — cheap,
    and 32 bits is plenty for seed derivation.
    """
    data = "\x1f".join(repr(p) for p in parts).encode("utf-8", "surrogatepass")
    return zlib.crc32(data)


def derive_rng(seed: int, *parts: object) -> random.Random:
    """An independent :class:`random.Random` stream for (*seed*, *parts*).

    Streams with different keys are decorrelated by hashing the key
    *together with* the seed (rather than XORing two hashes, which
    would collide whenever key hashes collide pairwise).
    """
    return random.Random(stable_hash(seed, *parts))


def resolve_rng(rng: random.Random | None, seed: int) -> random.Random:
    """The injection convention: an explicit *rng* wins, otherwise a
    fresh seeded stream."""
    return rng if rng is not None else random.Random(seed)
