"""Unit tests for the random workload generators."""

import random

import pytest

from repro.core.bounds import is_implicit_deadline
from repro.workloads.generator import (
    GeneratorConfig,
    log_uniform_periods,
    random_taskset,
    uunifast,
)


class TestUUniFast:
    def test_sums_to_target(self):
        rng = random.Random(1)
        for n in (1, 2, 5, 20):
            utils = uunifast(n, 0.7, rng)
            assert len(utils) == n
            assert sum(utils) == pytest.approx(0.7)

    def test_all_positive(self):
        rng = random.Random(2)
        assert all(u > 0 for u in uunifast(10, 0.9, rng))

    def test_deterministic_for_seed(self):
        a = uunifast(5, 0.5, random.Random(42))
        b = uunifast(5, 0.5, random.Random(42))
        assert a == b

    def test_invalid_args(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ValueError):
            uunifast(3, 0, rng)


class TestPeriods:
    def test_within_bounds_and_granular(self):
        rng = random.Random(3)
        periods = log_uniform_periods(50, rng, lo=1000, hi=100_000, granularity=500)
        assert all(1000 <= p <= 100_500 for p in periods)
        assert all(p % 500 == 0 for p in periods)

    def test_invalid_bounds(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            log_uniform_periods(3, rng, lo=0, hi=10)
        with pytest.raises(ValueError):
            log_uniform_periods(3, rng, lo=10, hi=5)


class TestRandomTaskset:
    def test_shape(self):
        ts = random_taskset(GeneratorConfig(n=6, utilization=0.5, seed=1))
        assert len(ts) == 6
        assert ts.utilization == pytest.approx(0.5, abs=0.15)

    def test_deterministic(self):
        a = random_taskset(GeneratorConfig(seed=9))
        b = random_taskset(GeneratorConfig(seed=9))
        assert a == b

    def test_seed_changes_result(self):
        a = random_taskset(GeneratorConfig(seed=1))
        b = random_taskset(GeneratorConfig(seed=2))
        assert a != b

    def test_implicit_deadlines_by_default(self):
        ts = random_taskset(GeneratorConfig(seed=3))
        assert is_implicit_deadline(ts)

    def test_constrained_deadline_factor(self):
        ts = random_taskset(GeneratorConfig(seed=4, deadline_factor=0.6))
        assert all(t.deadline <= t.period for t in ts)

    def test_priorities_deadline_monotonic(self):
        ts = random_taskset(GeneratorConfig(seed=5, n=8))
        tasks = ts.tasks
        for a, b in zip(tasks, tasks[1:]):
            assert a.deadline <= b.deadline

    def test_overrides(self):
        ts = random_taskset(GeneratorConfig(seed=1), n=3)
        assert len(ts) == 3
