"""Figure 3: execution without detection.

Shape reproduced: tau1's +40 ms overrun at t=1000 ms leaves tau1 and
tau2 meeting their deadlines while tau3 misses at 1120 ms — "the case
we wish to avoid".  The benchmark times the full simulated execution
(1.6 simulated seconds of the three-task system).
"""

from repro.experiments.paper import figure3
from repro.units import ms


def test_figure3_no_detection(benchmark):
    result = benchmark(figure3)
    assert all(c.holds for c in result.claims()), [
        c.description for c in result.claims() if not c.holds
    ]
    # Exact simulated end times for the jobs the figure zooms on.
    assert result.job_end("tau1", 5) == ms(1069)
    assert result.job_end("tau2", 4) == ms(1098)
    assert result.job_end("tau3", 0) == ms(1127)  # past its 1120 deadline
    assert result.metrics.failed_tasks == ["tau3"]
    assert result.metrics.collateral_failures == ["tau3"]
