"""The repository's own tree must satisfy the invariants it advertises.

This is the gate the ISSUE motivates: every future PR lands against
machine-checked time-discipline/determinism rules instead of reviewer
memory.  A new violation anywhere under ``src/repro`` fails here with
its exact location; if the violation is a sanctioned exception, mark
the line ``# noqa: RTxxx`` with a comment saying why.
"""

from pathlib import Path

from repro.analysis import check_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_violation_free():
    diagnostics = check_paths([SRC])
    listing = "\n".join(str(d) for d in diagnostics)
    assert diagnostics == [], f"new invariant violations:\n{listing}"


def test_benchmarks_and_examples_are_violation_free():
    root = SRC.parents[1]
    targets = [root / "benchmarks", root / "examples"]
    diagnostics = check_paths([p for p in targets if p.exists()])
    listing = "\n".join(str(d) for d in diagnostics)
    assert diagnostics == [], f"new invariant violations:\n{listing}"


def test_shipped_scenario_files_are_valid():
    # Any scenario files distributed with the repo must validate cleanly.
    from repro.analysis.taskset import SCENARIO_SUFFIXES, validate_scenario_file

    root = SRC.parents[1]
    for path in sorted(root.rglob("*")):
        if path.suffix in SCENARIO_SUFFIXES and "tests" not in path.parts:
            diags = validate_scenario_file(path)
            assert diags == [], f"{path}: {[str(d) for d in diags]}"
