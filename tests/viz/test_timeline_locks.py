"""Timeline rendering of resource events (lock/unlock/blocked)."""

from repro.core.task import Task, TaskSet
from repro.sim.locking import LockProtocol, SectionSpec
from repro.sim.simulation import simulate
from repro.viz.timeline import TimelineOptions, render_timeline


def contended_run():
    ts = TaskSet(
        [
            Task("hi", cost=10, period=100, priority=10, offset=5),
            Task("lo", cost=20, period=200, priority=1),
        ]
    )
    sections = [SectionSpec("lo", "r", 0, 12), SectionSpec("hi", "r", 2, 3)]
    return simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.PIP)


class TestLockMarkers:
    def test_lock_and_unlock_markers(self):
        out = render_timeline(contended_run(), TimelineOptions(start=0, end=50))
        assert "L" in out
        assert "u" in out

    def test_blocked_marker(self):
        out = render_timeline(
            contended_run(), TimelineOptions(start=0, end=50, show_legend=False)
        )
        assert "b" in out

    def test_legend_documents_lock_symbols(self):
        out = render_timeline(contended_run(), TimelineOptions(start=0, end=50))
        assert "L lock" in out and "b blocked" in out
