"""The simulation front-end: periodic tasks, detectors and treatments.

:class:`Simulation` assembles the pieces — engine, processor, fault
model, detector plan, VM profile — and plays the scenario out:

* each task releases a job every period (first release at its offset);
  jobs of one task serialise, as one RTSJ thread's do;
* each job's actual demand comes from the fault model (cost overruns);
* a deadline check fires at every absolute deadline (miss = failure,
  the job keeps running — RTSJ deadline-miss handlers are advisory);
* per the treatment plan, a periodic detector per task checks, at the
  (possibly rounded) WCRT offset after each release, whether the job
  finished; unfinished means a fault is detected and the treatment
  decides when to stop the job;
* stops honour the §4.1 poll mechanism: the job consumes the VM's
  stop-poll overhead before actually ending.

The result bundles the trace, every job object and the detection log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.faults import FaultModel, NoFaults
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan, TreatmentRuntime, plan_treatment
from repro.sim.engine import Engine, EngineObserver, Rank
from repro.sim.jobs import Job, JobState
from repro.sim.locking import LockManager, LockProtocol, SectionSpec
from repro.sim.processor import Processor
from repro.sim.trace import EventKind, Trace, TraceSink
from repro.sim.vm import EXACT_VM, VMProfile

__all__ = ["Simulation", "SimResult", "simulate"]

#: Priority used for injected detector-overhead work: above any task.
_OVERHEAD_PRIORITY = 1 << 30


@dataclass
class SimResult:
    """Everything observable from one simulation run."""

    taskset: TaskSet
    horizon: int
    trace: Trace
    jobs: Mapping[tuple[str, int], Job]
    runtime: TreatmentRuntime | None
    vm: VMProfile
    busy_time: int = 0
    #: Detector-overhead pseudo-jobs (``__overhead*``).  They steal CPU
    #: (and thus count in ``busy_time`` and appear in the trace) but are
    #: *not* task activations, so they are kept out of the public
    #: ``jobs`` mapping that :meth:`missed`/:meth:`stopped` and the
    #: metrics iterate over.
    overhead_jobs: Sequence[Job] = ()
    #: Engine events dispatched during the run (deterministic; feeds
    #: the observability layer's engine counters).
    events_processed: int = 0

    @property
    def idle_time(self) -> int:
        return self.horizon - self.busy_time

    def jobs_of(self, task: str) -> list[Job]:
        """Jobs of *task* ordered by index."""
        out = [j for (name, _), j in self.jobs.items() if name == task]
        return sorted(out, key=lambda j: j.index)

    def job(self, task: str, index: int) -> Job:
        return self.jobs[(task, index)]

    def missed(self, task: str | None = None) -> list[Job]:
        """Jobs that missed their deadline (optionally for one task)."""
        return [
            j
            for j in self.jobs.values()
            if j.deadline_missed and (task is None or j.name == task)
        ]

    def stopped(self, task: str | None = None) -> list[Job]:
        """Jobs terminated by the treatment."""
        return [
            j
            for j in self.jobs.values()
            if j.was_stopped and (task is None or j.name == task)
        ]

    def skipped(self, task: str | None = None) -> list[Job]:
        """Jobs dropped at release by a weakly-hard SKIP_JOB plan."""
        return [
            j
            for j in self.jobs.values()
            if j.was_skipped and (task is None or j.name == task)
        ]

    def miss_pattern(self, task: str) -> list[bool]:
        """Observed per-job miss pattern for *task*, in release order.

        A job counts as a miss when it missed its deadline **or** was
        skipped by the plan — exactly the samples an (m, K) constraint
        ranges over.  Jobs still unfinished at the horizon are excluded
        (their outcome is unknown) unless their deadline already passed.
        """
        out: list[bool] = []
        for j in self.jobs_of(task):
            if j.was_skipped or j.deadline_missed:
                out.append(True)
            elif j.finished:
                out.append(False)
            else:
                break  # unfinished with deadline beyond the horizon
        return out

    def max_response_time(self, task: str) -> int | None:
        """Largest observed response time among finished jobs of *task*."""
        rts = [j.response_time for j in self.jobs_of(task) if j.response_time is not None]
        return max(rts) if rts else None


class Simulation:
    """One configured run.  Use :func:`simulate` for the common path."""

    def __init__(
        self,
        taskset: TaskSet,
        *,
        horizon: int,
        faults: FaultModel | None = None,
        plan: TreatmentPlan | None = None,
        vm: VMProfile = EXACT_VM,
        arrivals: Mapping[str, Sequence[int]] | None = None,
        sections: Sequence[SectionSpec] | None = None,
        protocol: LockProtocol = LockProtocol.ICPP,
        trace_out: TraceSink | str | None = None,
        profiler: EngineObserver | None = None,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        self.taskset = taskset
        self.horizon = horizon
        self.faults: FaultModel = faults if faults is not None else NoFaults()
        self.plan = plan
        self.vm = vm
        # Sporadic support (§7 future work): tasks listed in *arrivals*
        # release at the given (sorted, non-negative) times instead of
        # periodically; detectors follow the actual releases.
        self.arrivals = {k: list(v) for k, v in (arrivals or {}).items()}
        for name, times in self.arrivals.items():
            if name not in taskset:
                raise ValueError(f"arrivals for unknown task {name!r}")
            if any(b <= a for a, b in zip(times, times[1:])) or any(
                t < 0 for t in times
            ):
                raise ValueError(f"{name}: arrival times must be sorted and >= 0")
        self.engine = Engine(profiler=profiler)
        # Observability (repro.obs): events stream to *trace_out* (a
        # TraceSink or a file path) in addition to the in-memory log.
        # A sink resolved here from a path is owned by this run (closed
        # at the end); a sink object handed in stays caller-owned, so
        # one file can collect events from many simulations.
        sink: TraceSink | None
        self._owns_sink = False
        if trace_out is None or hasattr(trace_out, "emit"):
            sink = trace_out  # type: ignore[assignment]
        else:
            from repro.obs.sinks import resolve_sink

            sink = resolve_sink(trace_out)
            self._owns_sink = True
        self.trace = Trace(sink)
        self.processor = Processor(
            self.engine,
            self.trace,
            context_switch=vm.context_switch,
            on_job_end=self._job_ended,
            on_job_start=self._job_started,
        )
        #: External observers: ``job_start_hooks[name]`` /
        #: ``job_end_hooks[name]`` are called with the :class:`Job` when
        #: a job of that task first runs / ends.  The RTSJ layer hangs
        #: its ``waitForNextPeriod`` instrumentation here.
        self.job_start_hooks: dict[str, list] = {}
        self.job_end_hooks: dict[str, list] = {}
        self.runtime: TreatmentRuntime | None = plan.runtime() if plan is not None else None
        # Shared-resource support (critical sections + PIP/ICPP).
        self.locks: LockManager | None = None
        if sections:
            self.locks = LockManager(
                taskset,
                list(sections),
                protocol=protocol,
                processor=self.processor,
                trace=self.trace,
            )
        self.jobs: dict[tuple[str, int], Job] = {}
        self._backlog: dict[str, deque[Job]] = {t.name: deque() for t in taskset}
        self._active: dict[str, Job | None] = {t.name: None for t in taskset}
        self._overhead_seq = 0
        self._overhead_jobs: list[Job] = []
        self._schedule_releases()

    # -- setup ----------------------------------------------------------------
    def _clock_released(self, task: Task) -> bool:
        """Whether *task* releases on the clock (periodic pattern or the
        explicit arrivals list).  Subclasses return False for tasks they
        release by other means (precedence successors, server jobs)."""
        return True

    def _release_time_at(self, task: Task, index: int) -> int | None:
        """Clock release instant of job *index*, or None when there is
        none (the sporadic arrivals list is exhausted)."""
        if task.name in self.arrivals:
            times = self.arrivals[task.name]
            return times[index] if index < len(times) else None
        return task.release_time(index)

    def _schedule_releases(self) -> None:
        for task in self.taskset:
            if self._clock_released(task):
                self._arm_release(task, 0)

    def _arm_release(self, task: Task, index: int) -> None:
        """Schedule the release of job *index* and, when it fires, chain
        its successor and its detector.

        Releases and detector fires are armed lazily — each release
        schedules the next one — so the pending-event heap holds O(n)
        release entries instead of O(horizon/period) per task pushed
        eagerly at construction.
        """
        release = self._release_time_at(task, index)
        if release is None or release > self.horizon:
            return
        action = self._make_release(task, index)
        spec = self.plan.detector_for(task.name) if self.plan is not None else None

        def fire() -> None:
            self._arm_release(task, index + 1)
            if spec is not None and not self.plan.skips(task.name, index):  # type: ignore[union-attr]
                at = self.engine.now + spec.offset
                if at <= self.horizon:
                    self.engine.schedule(
                        at, self._make_detector_fire(task, index), Rank.DETECTOR
                    )
            action()

        self.engine.schedule(release, fire, Rank.RELEASE)

    def _make_release(self, task: Task, index: int):
        def release() -> None:
            now = self.engine.now
            if self.plan is not None and self.plan.skips(task.name, index):
                # Weakly-hard SKIP_JOB: the job is dropped at release —
                # it never competes for the CPU and its deadline is not
                # checked (a skip is the planned (m, K) miss, not a
                # failure).  Faults cannot touch a job that never runs.
                job = Job(
                    task=task,
                    index=index,
                    release=now,
                    demand=0,
                    state=JobState.SKIPPED,
                    finished_at=now,
                )
                self.jobs[(task.name, index)] = job
                self.trace.record(now, EventKind.RELEASE, task.name, index)
                self.trace.record(now, EventKind.JOB_SKIP, task.name, index)
                return
            cost = task.cost
            degraded = self.plan is not None and self.plan.degrades(task.name, index)
            if degraded:
                # Weakly-hard DEGRADE: the job releases with the plan's
                # reduced fallback cost; faults scale off that budget.
                cost = self.plan.degraded_cost(task.name)  # type: ignore[union-attr]
            demand = self.faults.demand(task.name, index, cost)
            job = Job(
                task=task, index=index, release=now, demand=demand, degraded=degraded
            )
            if self.locks is not None:
                self.locks.attach(job)
            self.jobs[(task.name, index)] = job
            self.trace.record(now, EventKind.RELEASE, task.name, index)
            deadline = job.absolute_deadline
            if deadline <= self.horizon:
                self.engine.schedule(
                    deadline, self._make_deadline_check(job), Rank.DEADLINE_CHECK
                )
            if self._active[task.name] is None:
                self._activate(job)
            else:
                # Previous job of this thread still busy: the new job is
                # released but cannot start (waitForNextPeriod backlog).
                self._backlog[task.name].append(job)

        return release

    def _activate(self, job: Job) -> None:
        self._active[job.name] = job
        self.processor.submit(job)

    def _make_deadline_check(self, job: Job):
        def check() -> None:
            if not job.finished:
                job.deadline_missed = True
                self.trace.record(
                    self.engine.now, EventKind.DEADLINE_MISS, job.name, job.index
                )

        return check

    def _make_detector_fire(self, task: Task, index: int):
        def fire() -> None:
            now = self.engine.now
            self.trace.record(now, EventKind.DETECTOR_FIRE, task.name, index)
            if self.vm.detector_fire_cost > 0:
                self._inject_overhead(self.vm.detector_fire_cost)
            job = self.jobs.get((task.name, index))
            if job is None or job.finished:
                return
            job.fault_detected = True
            self.trace.record(now, EventKind.FAULT_DETECTED, task.name, index)
            assert self.runtime is not None
            directive = self.runtime.on_detect(task.name, index, job.release, now)
            if directive is None:
                return
            if self.plan is not None and self.plan.kind is TreatmentKind.MISS_BUDGET:
                # The window budget ran out: this stop is an escalation
                # from tolerated misses to the paper's hard stop.
                self.trace.record(now, EventKind.ESCALATE, task.name, index)
            job.stop_granted = directive.granted
            if directive.at <= now:
                self._execute_stop(job)
            else:
                self.engine.schedule(
                    directive.at, lambda: self._execute_stop(job), Rank.STOP
                )

        return fire

    def _inject_overhead(self, cost: int) -> None:
        """Steal CPU at top priority (detector firing overhead)."""
        self._overhead_seq += 1
        pseudo = Task(
            name=f"__overhead{self._overhead_seq}",
            cost=cost,
            period=max(self.horizon, cost),
            priority=_OVERHEAD_PRIORITY,
        )
        job = Job(task=pseudo, index=0, release=self.engine.now, demand=cost)
        self._overhead_jobs.append(job)
        self.processor.submit(job)

    # -- runtime ----------------------------------------------------------------
    def _execute_stop(self, job: Job) -> None:
        if job.finished:
            return
        extra = self.vm.stop_poll_overhead.sample()
        self.processor.stop_job(job, extra)
        # When the poll latency leaves residual work on a preempted
        # job, it consumes that latency at its next dispatch and the
        # completion logic ends it as STOPPED.

    def request_stop(self, job: Job, at: int | None = None) -> None:
        """Public stop entry point (used by the RTSJ treatment layer):
        stop *job* at time *at* (default: immediately), honouring the
        VM's stop-poll overhead."""
        when = self.engine.now if at is None else at
        if when <= self.engine.now:
            self._execute_stop(job)
        else:
            self.engine.schedule(when, lambda: self._execute_stop(job), Rank.STOP)

    def _job_started(self, job: Job) -> None:
        if job.name.startswith("__overhead"):
            return
        for hook in self.job_start_hooks.get(job.name, ()):
            hook(job)

    def _job_ended(self, job: Job) -> None:
        if job.name.startswith("__overhead"):
            return
        if self.locks is not None:
            self.locks.on_job_end(job)
        for hook in self.job_end_hooks.get(job.name, ()):
            hook(job)
        if self.runtime is not None:
            self.runtime.on_job_end(
                job.name, job.index, job.release, job.finished_at or 0, job.was_stopped
            )
        self._active[job.name] = None
        backlog = self._backlog[job.name]
        if backlog:
            self._activate(backlog.popleft())

    # -- entry point --------------------------------------------------------------
    def run(self) -> SimResult:
        self.engine.run(until=self.horizon)
        return self.finish()

    def finish(self) -> SimResult:
        """Finalise and package the result.  Split from :meth:`run` so
        drivers that advance the engine themselves — the shared-clock
        multiprocessor loop in :mod:`repro.sim.mp` — reuse the exact
        same teardown."""
        if self.engine.now < self.horizon:
            self.engine.now = self.horizon
        self.processor.finalize()
        if self._owns_sink:
            self.trace.close()
        return SimResult(
            taskset=self.taskset,
            horizon=self.horizon,
            trace=self.trace,
            jobs=dict(self.jobs),
            runtime=self.runtime,
            vm=self.vm,
            busy_time=self.processor.busy_time,
            overhead_jobs=tuple(self._overhead_jobs),
            events_processed=self.engine.events_processed,
        )


def simulate(
    taskset: TaskSet,
    *,
    horizon: int,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
    arrivals: Mapping[str, Sequence[int]] | None = None,
    sections: Sequence[SectionSpec] | None = None,
    protocol: LockProtocol = LockProtocol.ICPP,
    trace_out: TraceSink | str | None = None,
    profiler: EngineObserver | None = None,
) -> SimResult:
    """Run one scenario and return its :class:`SimResult`.

    *treatment* may be a :class:`TreatmentKind` (the plan is computed
    here, with the VM's timer rounding applied to detector offsets), an
    explicit :class:`TreatmentPlan`, or None for a bare run without
    detectors (the paper's Figure 3 baseline).

    *trace_out* streams events to a :class:`~repro.sim.trace.TraceSink`
    (or a file path — ``.jsonl``/``.json`` pick the format) while the
    run executes; *profiler* attaches an engine dispatch profiler.
    Neither affects simulated time or results.
    """
    plan: TreatmentPlan | None
    if treatment is None:
        plan = None
    elif isinstance(treatment, TreatmentPlan):
        plan = treatment
    else:
        plan = plan_treatment(taskset, treatment, rounding=vm.timer_rounding)
        if treatment is TreatmentKind.NO_DETECTION:
            plan = None
    return Simulation(
        taskset,
        horizon=horizon,
        faults=faults,
        plan=plan,
        vm=vm,
        arrivals=arrivals,
        sections=sections,
        protocol=protocol,
        trace_out=trace_out,
        profiler=profiler,
    ).run()
