"""Plain-text table formatting for experiment reports.

Used by the experiment harness to print paper-style tables (Tables 1-3
and the benchmark summaries) without external dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table.

    Numeric-looking cells are right-aligned, text left-aligned.
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str], *, header: bool = False) -> str:
        out = []
        for i, cell in enumerate(cells):
            if header or not _numeric(cells[i]):
                out.append(cell.ljust(widths[i]))
            else:
                out.append(cell.rjust(widths[i]))
        return "  ".join(out).rstrip()

    sep = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers), header=True))
    parts.append(sep)
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
