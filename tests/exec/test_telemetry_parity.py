"""Worker telemetry crosses the pool boundary losslessly.

The regression this file pins: before the aggregation layer, metrics a
pool worker recorded died with the worker — ``--jobs N`` silently lost
all worker-side telemetry.  Now a serial run and a ``--jobs 4`` run of
the same sweep must produce

* *equal* merged counters and histograms (the order-insensitive
  monoid sections),
* *equal* spans modulo pid tags,
* *equal* manifest fingerprints — with telemetry on, off, or mixed.
"""

from repro.exec.executor import LocalExecutor, PoolExecutor
from repro.exec.manifest import build_manifest, manifest_fingerprint
from repro.exec.sweep import SweepSpec, build_chunk, chunk_specs, run_sweep
from repro.obs.runtime import WorkerObs


def small_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="parity-sweep",
        axes={"utilization": (0.6, 0.9)},
        replicates=4,
        base_seed=11,
        n=3,
        period_lo=50,
        period_hi=5_000,
        period_granularity=10,
        horizon_periods=2,
        chunk_size=3,
    )


def run_with(executor):
    result = run_sweep(small_sweep(), executor=executor)
    return result, executor.telemetry


class TestSerialPoolParity:
    def test_counters_and_histograms_equal(self):
        _, serial = run_with(LocalExecutor(worker_obs=WorkerObs(telemetry=True)))
        _, pooled = run_with(PoolExecutor(4, worker_obs=WorkerObs(telemetry=True)))
        assert serial.counter_map() == pooled.counter_map()
        assert serial.histogram_map() == pooled.histogram_map()

    def test_spans_equal_modulo_pid(self):
        _, serial = run_with(LocalExecutor(worker_obs=WorkerObs(telemetry=True)))
        _, pooled = run_with(PoolExecutor(4, worker_obs=WorkerObs(telemetry=True)))

        def names(t):
            return sorted((name, category) for _, _, category, name, _ in t.spans)

        assert names(serial) == names(pooled)

    def test_pool_telemetry_is_not_lost(self):
        _, pooled = run_with(PoolExecutor(4, worker_obs=WorkerObs(telemetry=True)))
        assert pooled.counter_map()["sweep_points_total"] == 8
        assert len(pooled.spans) == len(chunk_specs(small_sweep()))

    def test_fingerprint_invariant_under_jobs_and_telemetry(self):
        fingerprints = set()
        for executor in (
            LocalExecutor(),
            LocalExecutor(worker_obs=WorkerObs(telemetry=True)),
            PoolExecutor(4, worker_obs=WorkerObs(telemetry=True)),
        ):
            specs = chunk_specs(small_sweep())
            runs = executor.run(specs, build_chunk)
            manifest, _ = build_manifest(runs, executor=executor)
            fingerprints.add(manifest_fingerprint(manifest))
        assert len(fingerprints) == 1


class TestExecutorMerging:
    def test_telemetry_accumulates_across_runs(self):
        executor = LocalExecutor(worker_obs=WorkerObs(telemetry=True))
        specs = chunk_specs(small_sweep())
        list(executor.run(specs[:1], build_chunk))
        first = executor.telemetry.counter_map()["sweep_chunks_total"]
        list(executor.run(specs[1:], build_chunk))
        assert (
            executor.telemetry.counter_map()["sweep_chunks_total"]
            == first + len(specs) - 1
        )

    def test_no_worker_obs_means_empty_telemetry(self):
        executor = LocalExecutor()
        list(executor.run(chunk_specs(small_sweep()), build_chunk))
        assert not executor.telemetry

    def test_spec_round_trip(self):
        # WorkerObs must pickle: it crosses the pool boundary with
        # every payload.
        import pickle

        obs = WorkerObs(telemetry=True, flight_dir="out/flight")
        assert pickle.loads(pickle.dumps(obs)) == obs

    def test_cache_hits_do_not_double_count(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        first = LocalExecutor(cache=cache, worker_obs=WorkerObs(telemetry=True))
        _, cold = run_with(first)
        second = LocalExecutor(cache=cache, worker_obs=WorkerObs(telemetry=True))
        result, warm = run_with(second)
        # Everything came from cache: no worker ran, telemetry is empty,
        # but the sweep result itself is intact.
        assert not warm
        assert len(result.points) == 8
