"""Deterministic discrete-event real-time system simulator.

Substitute for the paper's jRate/Timesys testbed: a single CPU with
fixed-priority preemptive scheduling, integer-nanosecond time, periodic
tasks with injectable cost overruns, per-task fault detectors and
treatment-driven stops.  See DESIGN.md §2 for the substitution argument.
"""

from repro.sim.chains import ChainSimulation, end_to_end_latencies, simulate_chains
from repro.sim.clock import CycleCounter, TimestampLog
from repro.sim.engine import Engine, EventHandle, Rank
from repro.sim.jobs import Job, JobState
from repro.sim.locking import LockManager, LockProtocol, SectionSpec
from repro.sim.mp import (
    Migration,
    MPSimResult,
    MultiProcessorSystem,
    simulate_partitioned,
)
from repro.sim.processor import Processor
from repro.sim.servers import (
    AperiodicRequest,
    DeferrableServerSimulation,
    ServerSimulation,
    simulate_with_deferrable_server,
    simulate_with_server,
)
from repro.sim.simulation import SimResult, Simulation, simulate
from repro.sim.trace import EventKind, Trace, TraceEvent
from repro.sim.vm import (
    EXACT_VM,
    JRATE_VM,
    ConstantOverhead,
    NoOverhead,
    UniformOverhead,
    VMProfile,
    jrate_vm,
)

__all__ = [
    "Engine",
    "EventHandle",
    "Rank",
    "Trace",
    "TraceEvent",
    "EventKind",
    "Job",
    "JobState",
    "LockManager",
    "LockProtocol",
    "SectionSpec",
    "Processor",
    "Simulation",
    "SimResult",
    "simulate",
    "Migration",
    "MPSimResult",
    "MultiProcessorSystem",
    "simulate_partitioned",
    "VMProfile",
    "EXACT_VM",
    "JRATE_VM",
    "jrate_vm",
    "NoOverhead",
    "ConstantOverhead",
    "UniformOverhead",
    "CycleCounter",
    "TimestampLog",
    "ChainSimulation",
    "simulate_chains",
    "end_to_end_latencies",
    "AperiodicRequest",
    "ServerSimulation",
    "simulate_with_server",
    "DeferrableServerSimulation",
    "simulate_with_deferrable_server",
]
