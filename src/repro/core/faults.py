"""Temporal-fault models — paper §3.

A *fault* is a job taking more CPU time than its declared cost ``C_i``
"either because it was underestimated, or because of an external event".
This module describes faults declaratively so the simulator can inject
them and the experiment harness can sweep them:

* :class:`CostOverrun` — one specific job of one task runs for
  ``C_i + extra`` (the paper's §6 experiments inject exactly one such
  overrun into the highest-priority task, "the most unfavourable case");
* :class:`CostUnderrun` — a job completing early (negative extra); used
  by the §7 future-work under-run study (:mod:`repro.core.underrun`);
* :class:`RandomFaults` — seeded random overruns for ablation sweeps.

A :class:`FaultModel` is anything with ``demand(task_name, job, base)``
returning the actual execution demand of a job; the simulator queries it
at each release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from repro.rng import derive_rng

__all__ = [
    "FaultModel",
    "NoFaults",
    "CostOverrun",
    "CostUnderrun",
    "FaultInjector",
    "RandomFaults",
]


class FaultModel(Protocol):
    """Source of actual per-job execution demands."""

    def demand(self, task_name: str, job: int, base_cost: int) -> int:
        """Actual execution demand (ns) of job *job* of *task_name*,
        given the declared cost *base_cost*."""
        ...


class NoFaults:
    """Every job consumes exactly its declared cost."""

    def demand(self, task_name: str, job: int, base_cost: int) -> int:
        return base_cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoFaults()"


@dataclass(frozen=True)
class CostOverrun:
    """Job *job* (0-based) of *task_name* overruns its cost by *extra* ns."""

    task_name: str
    job: int
    extra: int

    def __post_init__(self) -> None:
        if self.extra <= 0:
            raise ValueError("overrun extra must be > 0 (use CostUnderrun)")
        if self.job < 0:
            raise ValueError("job index must be >= 0")


@dataclass(frozen=True)
class CostUnderrun:
    """Job *job* of *task_name* completes *saved* ns early."""

    task_name: str
    job: int
    saved: int

    def __post_init__(self) -> None:
        if self.saved <= 0:
            raise ValueError("underrun saved must be > 0")
        if self.job < 0:
            raise ValueError("job index must be >= 0")


class FaultInjector:
    """A :class:`FaultModel` built from explicit per-job deviations.

    Multiple deviations targeting the same job accumulate.  Demands are
    floored at 1 ns — a job always executes *something* (the paper's
    stop mechanism itself assumes the loop body runs at least once).
    """

    def __init__(self, deviations: Iterable[CostOverrun | CostUnderrun] = ()):
        self._delta: dict[tuple[str, int], int] = {}
        for dev in deviations:
            self.add(dev)

    def add(self, deviation: CostOverrun | CostUnderrun) -> None:
        key = (deviation.task_name, deviation.job)
        delta = deviation.extra if isinstance(deviation, CostOverrun) else -deviation.saved
        total = self._delta.get(key, 0) + delta
        if total == 0:
            # Deviations cancelled out exactly: the job is not faulty.
            self._delta.pop(key, None)
        else:
            self._delta[key] = total

    def demand(self, task_name: str, job: int, base_cost: int) -> int:
        return max(base_cost + self._delta.get((task_name, job), 0), 1)

    @property
    def deviations(self) -> dict[tuple[str, int], int]:
        """Copy of the (task, job) → delta map (for reports)."""
        return dict(self._delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector({self._delta!r})"


@dataclass
class RandomFaults:
    """Seeded random overruns for ablation sweeps.

    Each job of each task independently overruns with probability
    *rate*; the overrun size is uniform on ``[1, max_extra]`` ns.
    Deterministic for a given seed: the per-job draw keys on
    ``(task_name, job)`` so demand queries are order-independent and
    repeatable (the simulator may query a job more than once).  The
    per-key stream comes from :func:`repro.rng.derive_rng`, which is
    stable *across processes* — the salted builtin ``hash`` is not.
    """

    rate: float
    max_extra: int
    seed: int = 0
    _cache: dict[tuple[str, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.max_extra <= 0:
            raise ValueError("max_extra must be > 0")

    def demand(self, task_name: str, job: int, base_cost: int) -> int:
        key = (task_name, job)
        if key not in self._cache:
            rng = derive_rng(self.seed, task_name, job)
            extra = rng.randint(1, self.max_extra) if rng.random() < self.rate else 0
            self._cache[key] = extra
        return base_cost + self._cache[key]
