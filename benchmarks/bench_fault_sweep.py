"""Fault + treatment sweep throughput: the paper's core workload at scale.

ISSUE 9 ends the exact-engine fallback for fault-injection sweeps: a
10k-system sweep shaped like the ``fault-treatments`` exhibit (random
overruns crossed with the stopping treatments) must run on the
vectorized stepper at least **5x** faster than the exact per-system
engine, with bit-identical schedule fingerprints.  Both halves are
asserted here and the aggregate rate lands in ``BENCH_results.json``
as ``fault_systems_per_s``, watched by the CI regression guard
(``check_regression.py``).
"""

import time
from types import SimpleNamespace

from repro.exec.executor import LocalExecutor
from repro.exec.sweep import SweepSpec, run_sweep

#: Systems in the headline batched sweep.
TOTAL_SYSTEMS = 10_000

#: Systems the exact-engine reference runs (a subset — the whole point
#: is that 10k exact runs of the treated fault workload take minutes).
EXACT_SYSTEMS = 200

#: The grid: fault rates crossed with the paper's stopping treatments
#: (§4.1 immediate stop, §4.2 equitable allowance) — 4 cells.
_AXES = {
    "fault_rate": (0.2, 0.4),
    "treatment": ("immediate-stop", "equitable-allowance"),
}


def _bench_sweep(replicates: int, name: str) -> SweepSpec:
    return SweepSpec.make(
        name=name,
        axes=_AXES,
        replicates=replicates,
        base_seed=77,
        n=3,
        utilization=0.65,
        period_lo=50,
        period_hi=5_000,
        period_granularity=10,
        horizon_periods=3,
        fault_scale=1.0,
        feasible_only=True,
        chunk_size=2_500,
    )


def test_fault_sweep_10k(benchmark):
    sweep = _bench_sweep(TOTAL_SYSTEMS // 4, "bench-fault-treatments")

    def run():
        result = run_sweep(sweep, executor=LocalExecutor())
        return SimpleNamespace(
            fault_systems=len(result.points), points=result.points
        )

    value = benchmark(run)
    assert value.fault_systems == TOTAL_SYSTEMS
    assert all(p.eligible for p in value.points)  # no exact-engine fallback
    assert sum(p.stopped for p in value.points) > 0  # treatments actually bit


def test_batched_fault_rate_5x_exact_engine():
    """Aggregate systems/s of the batched fault sweep vs the exact
    per-system engine on the same workload, fingerprint-checked.

    The exact reference is the same sweep with fewer replicates run
    through ``--stepper exact`` — identical generation, planning,
    summary and fingerprint work, only the stepper differs.  Because
    replicates extend each cell (seeds key on ``(cell, index)``), the
    exact run's points are exactly the first ``EXACT_SYSTEMS // 4``
    replicates of each batched cell, so fingerprints must agree
    prefix for prefix."""
    t0 = time.perf_counter()  # noqa: RT002 - host-side benchmark timing, not simulated time
    exact = run_sweep(
        _bench_sweep(EXACT_SYSTEMS // 4, "bench-fault-ref"),
        executor=LocalExecutor(),
        stepper="exact",
    )
    exact_rate = len(exact.points) / (time.perf_counter() - t0)  # noqa: RT002 - host-side benchmark timing, not simulated time

    t0 = time.perf_counter()  # noqa: RT002 - host-side benchmark timing, not simulated time
    batched = run_sweep(
        _bench_sweep(TOTAL_SYSTEMS // 4, "bench-fault-treatments"),
        executor=LocalExecutor(),
    )
    batched_rate = len(batched.points) / (time.perf_counter() - t0)  # noqa: RT002 - host-side benchmark timing, not simulated time

    by_cell_exact: dict = {}
    by_cell_batched: dict = {}
    for p in exact.points:
        by_cell_exact.setdefault(p.cell, []).append(p.fingerprint)
    for p in batched.points:
        by_cell_batched.setdefault(p.cell, []).append(p.fingerprint)
    for cell, fps in by_cell_exact.items():
        assert by_cell_batched[cell][: len(fps)] == fps, cell
    assert all(p.eligible for p in batched.points)
    assert batched_rate >= 5 * exact_rate, (
        f"batched fault sweep ran {batched_rate:,.0f} systems/s, exact "
        f"engine {exact_rate:,.0f}; need >= 5x"
    )
