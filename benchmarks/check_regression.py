"""CI benchmark regression guard.

Compares a freshly-written ``BENCH_results.json`` against the committed
baseline and fails when any benchmark's throughput metric —
``events_per_s`` (engine event rate) or ``systems_per_s`` (population
sweep rate) — dropped by more than the threshold (default 20%).  Only
entries present in *both* files are compared — new benchmarks are
allowed in without a baseline, and removed ones stop being checked.
Wall-time-only entries (no throughput metric) are skipped: wall
seconds for sub-millisecond analysis benchmarks are too noisy on
shared CI runners to gate on.

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT [--threshold 0.2]

The threshold is a fraction (0.2 = fail below 80% of baseline) and can
also be set via the ``BENCH_REGRESSION_THRESHOLD`` environment variable
(the flag wins).  Exit status: 0 clean, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

__all__ = ["GATED_METRICS", "compare", "main"]

#: Throughput metrics the guard gates on (higher is better).
GATED_METRICS = ("events_per_s", "systems_per_s", "fault_systems_per_s")


def _load(path: Path) -> dict[str, dict]:
    data = json.loads(path.read_text())
    benches = data.get("benchmarks", {})
    if not isinstance(benches, dict):
        raise ValueError(f"{path}: 'benchmarks' must be an object")
    return benches


def compare(
    baseline: dict[str, dict], current: dict[str, dict], threshold: float
) -> list[str]:
    """Regression messages for every common entry whose gated metric
    (``events_per_s`` / ``systems_per_s`` / ``fault_systems_per_s``)
    fell below ``baseline * (1 - threshold)``.  Empty list = clean."""
    problems: list[str] = []
    for name in sorted(baseline.keys() & current.keys()):
        for metric in GATED_METRICS:
            base_rate = baseline[name].get(metric)
            cur_rate = current[name].get(metric)
            if not base_rate or not cur_rate:
                continue  # wall-time-only entries are informational
            floor = base_rate * (1.0 - threshold)
            if cur_rate < floor:
                unit = metric[: -len("_per_s")]
                problems.append(
                    f"{name}: {cur_rate:,.0f} {unit}/s < "
                    f"{floor:,.0f} (baseline {base_rate:,.0f}, "
                    f"-{(1 - cur_rate / base_rate) * 100:.1f}%)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_results.json")
    parser.add_argument("current", type=Path, help="freshly generated results")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed fractional drop (default 0.2, or "
        "$BENCH_REGRESSION_THRESHOLD)",
    )
    args = parser.parse_args(argv)
    threshold = args.threshold
    if threshold is None:
        threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.2"))
    if not 0 <= threshold < 1:
        print(f"threshold must be in [0, 1), got {threshold}", file=sys.stderr)
        return 2
    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read results: {exc}", file=sys.stderr)
        return 2
    problems = compare(baseline, current, threshold)
    compared = sum(
        1
        for name in baseline.keys() & current.keys()
        for metric in GATED_METRICS
        if baseline[name].get(metric) and current[name].get(metric)
    )
    if problems:
        print(f"benchmark regression ({len(problems)} of {compared} gated):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"benchmarks OK ({compared} gated entries within {threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
