"""Trace-file tooling: ``python -m repro.obs``.

The offline half of the observability layer — the paper's "chart tool
reads the log files" step, for our trace files::

    python -m repro.obs inspect out/t.jsonl          # what's in here?
    python -m repro.obs convert out/t.jsonl --to chrome
    python -m repro.obs summarize out/t.jsonl        # per-task metrics

``convert`` writes ``<file>.chrome.json`` (or ``-o OUT``) loadable by
``chrome://tracing`` / https://ui.perfetto.dev.  ``summarize`` replays
the trace through the metrics observer and prints per-task counters
and response-time statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter
from pathlib import Path

from repro.obs.metrics import MetricsObserver
from repro.obs.sinks import convert_jsonl_to_chrome, iter_jsonl, read_jsonl
from repro.viz.tables import format_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect, convert and summarize recorded trace files "
        "(JSONL, as written by --trace-out / JsonlSink).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="event counts and a head of the trace")
    p_inspect.add_argument("file")
    p_inspect.add_argument("--limit", type=int, default=10, metavar="N",
                           help="events to print (default: 10)")

    p_convert = sub.add_parser("convert", help="convert a JSONL trace to another format")
    p_convert.add_argument("file")
    p_convert.add_argument("--to", choices=["chrome"], default="chrome",
                           help="target format (default: chrome)")
    p_convert.add_argument("-o", "--output", metavar="OUT",
                           help="output path (default: <file>.chrome.json)")

    p_summarize = sub.add_parser("summarize", help="per-task metrics from a trace file")
    p_summarize.add_argument("file")
    p_summarize.add_argument("--json", action="store_true",
                             help="emit the metrics registry as JSON instead of a table")

    args = parser.parse_args(argv)
    src = Path(args.file)
    if not src.exists():
        print(f"error: no such trace file: {src}", file=sys.stderr)
        return 2
    if args.command == "inspect":
        return _inspect(src, args.limit)
    if args.command == "convert":
        out = Path(args.output) if args.output else src.with_suffix(".chrome.json")
        n = convert_jsonl_to_chrome(src, out)
        print(f"wrote {out} ({n} chrome events; open in chrome://tracing)")
        return 0
    return _summarize(src, as_json=args.json)


def _inspect(src: Path, limit: int) -> int:
    kinds: TallyCounter[str] = TallyCounter()
    tasks: set[str] = set()
    first: list[str] = []
    total = 0
    end = 0
    for event in iter_jsonl(src):
        total += 1
        kinds[event.kind.value] += 1
        if event.task:
            tasks.add(event.task)
        end = max(end, event.time)
        if len(first) < limit:
            first.append(str(event))
    print(f"{src}: {total} events, {len(tasks)} tasks, end time {end} ns")
    for kind, count in kinds.most_common():
        print(f"  {kind}: {count}")
    if first:
        print(f"first {len(first)} events:")
        for line in first:
            print(f"  {line}")
    return 0


def _summarize(src: Path, *, as_json: bool) -> int:
    registry = MetricsObserver().observe_events(iter_jsonl(src))
    doc = registry.as_dict()
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    tasks = sorted(
        {k.split("task=")[1].rstrip("}") for k in doc["counters"] if "task=" in k}
    )
    rows = []
    for task in tasks:
        def count(name: str) -> int:
            return doc["counters"].get(f"task_{name}_total{{task={task}}}", 0)

        hist = doc["histograms"].get(f"task_response_time_ns{{task={task}}}", {})
        rows.append(
            (
                task,
                count("releases"),
                count("completions"),
                count("stops"),
                count("deadline_misses"),
                count("detector_fires"),
                hist.get("max") if hist.get("max") is not None else "-",
            )
        )
    if not rows:
        print(f"{src}: no task events (spans only?)")
        return 0
    print(
        format_table(
            ["task", "releases", "completions", "stops", "misses", "det.fires", "max resp ns"],
            rows,
            title=f"Trace summary - {src}",
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
