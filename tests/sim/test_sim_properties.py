"""Property-based validation of the simulator against the analysis.

The central soundness argument of the reproduction: for randomly drawn
feasible systems, the simulated behaviour must stay within the bounds
the paper's analysis predicts (DESIGN.md §5).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.feasibility import analyze, is_feasible, response_time_constrained
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind


@st.composite
def feasible_tasksets(draw, max_tasks: int = 4, max_period: int = 20) -> TaskSet:
    """Small feasible task sets (constrained deadlines, distinct
    priorities, tame hyperperiods)."""
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        period = draw(st.integers(2, max_period))
        cost = draw(st.integers(1, max(1, period // 2)))
        deadline = draw(st.integers(cost, period))
        tasks.append(
            Task(name=f"t{i}", cost=cost, period=period, deadline=deadline, priority=n - i)
        )
    ts = TaskSet(tasks)
    assume(is_feasible(ts))
    return ts


def _horizon(ts: TaskSet) -> int:
    return min(ts.hyperperiod(), 2000) + 2 * max(t.period for t in ts)


class TestFaultFreeRuns:
    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_no_deadline_misses(self, ts):
        res = simulate(ts, horizon=_horizon(ts))
        assert res.missed() == []

    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_observed_response_never_exceeds_wcrt(self, ts):
        report = analyze(ts)
        res = simulate(ts, horizon=_horizon(ts))
        for t in ts:
            observed = res.max_response_time(t.name)
            if observed is not None:
                assert observed <= report.wcrt(t.name)

    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_synchronous_first_job_of_lowest_task_hits_rta(self, ts):
        # With synchronous release and no faults, the lowest-priority
        # task's first job experiences exactly the critical-instant
        # interference: its simulated response equals the analytic R0.
        lowest = ts.tasks[-1]
        peers = [t for t in ts if t.priority == lowest.priority]
        assume(len(peers) == 1)
        res = simulate(ts, horizon=_horizon(ts))
        job0 = res.job(lowest.name, 0)
        assert job0.response_time == response_time_constrained(lowest, ts)

    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_detectors_never_trigger(self, ts):
        res = simulate(ts, horizon=_horizon(ts), treatment=TreatmentKind.DETECT_ONLY)
        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []

    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_trace_wellformed_no_overlapping_execution(self, ts):
        res = simulate(ts, horizon=_horizon(ts))
        intervals = []
        for t in ts:
            intervals.extend(
                (b, e) for (b, e, _j) in res.trace.execution_intervals(t.name)
            )
        intervals.sort()
        for (b1, e1), (b2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= b2, f"overlap: ({b1},{e1}) vs ({b2},{e2})"

    @given(feasible_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_busy_time_equals_total_executed(self, ts):
        res = simulate(ts, horizon=_horizon(ts))
        executed = sum(j.executed for j in res.jobs.values())
        assert res.busy_time == executed


class TestFaultyRuns:
    @given(feasible_tasksets(), st.integers(1, 40), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_immediate_stop_contains_top_priority_fault(self, ts, extra, job):
        # The paper's "most unfavourable case": the highest-priority
        # task overruns.  Stopped at its WCRT (== its cost), it consumes
        # no more than its declared budget, so no other task may fail.
        top = ts.tasks[0]
        peers = [t for t in ts if t.priority == top.priority]
        assume(len(peers) == 1)
        faults = FaultInjector([CostOverrun(top.name, job, extra)])
        res = simulate(
            ts,
            horizon=_horizon(ts),
            faults=faults,
            treatment=TreatmentKind.IMMEDIATE_STOP,
        )
        others = [t.name for t in ts if t.name != top.name]
        for name in others:
            assert res.missed(name) == []
            assert res.stopped(name) == []

    @given(feasible_tasksets(), st.integers(1, 40), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_equitable_allowance_contains_any_single_fault(self, ts, extra, job):
        # Under §4.2 each task is stopped at the inflated-system WCRT;
        # a single faulty task consumes at most C + A, which the
        # inflated analysis covers: non-faulty tasks never fail.
        victim = ts.tasks[-1]
        faults = FaultInjector([CostOverrun(victim.name, job, extra)])
        res = simulate(
            ts,
            horizon=_horizon(ts),
            faults=faults,
            treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
        )
        for t in ts:
            if t.name == victim.name:
                continue
            assert res.missed(t.name) == []
            assert res.stopped(t.name) == []

    @given(feasible_tasksets(), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_system_allowance_contains_single_fault_anywhere(self, ts, extra):
        for victim in (ts.tasks[0], ts.tasks[-1]):
            faults = FaultInjector([CostOverrun(victim.name, 0, extra)])
            res = simulate(
                ts,
                horizon=_horizon(ts),
                faults=faults,
                treatment=TreatmentKind.SYSTEM_ALLOWANCE,
            )
            for t in ts:
                if t.name == victim.name:
                    continue
                assert res.missed(t.name) == [], (victim.name, t.name)
                assert res.stopped(t.name) == []

    @given(feasible_tasksets(), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_stopping_treatments_beat_no_detection(self, ts, extra):
        # The paper's headline: treatments improve behaviour under
        # faults.  Total failures with a stopping treatment never
        # exceed those of the untreated run.
        top = ts.tasks[0]
        faults = FaultInjector([CostOverrun(top.name, 0, extra)])
        bare = simulate(ts, horizon=_horizon(ts), faults=faults)
        treated = simulate(
            ts,
            horizon=_horizon(ts),
            faults=faults,
            treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
        )
        bare_missed = {(j.name, j.index) for j in bare.missed()}
        treated_missed = {(j.name, j.index) for j in treated.missed()}
        assert len(treated_missed) <= len(bare_missed)
