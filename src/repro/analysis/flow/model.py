"""Whole-program project model: modules, imports, call graph, summaries.

:func:`build_model` parses every Python file under the given roots
*once* and distils each module into a :class:`ModuleSummary` — import
bindings plus one :class:`FunctionInfo` per function/method carrying
everything the cross-module rules need:

* symbolic **taint** for the return value and every call-site argument
  (:class:`~repro.analysis.flow.taint.TaintVal`),
* **call sites** with name-resolution candidates (the approximate call
  graph),
* **float-op sites** (candidate RT102 escapes) and **mutation sites**
  (candidate RT104 impurities).

Summaries are plain picklable dataclasses, which is what makes the
incremental cache (:mod:`repro.analysis.flow.cache`) possible: a file
whose content hash is unchanged is never re-parsed.

Name resolution is deliberately approximate (and documented as such in
DESIGN.md §3.7): a call resolves through import bindings, module-local
definitions, ``self.method(...)`` within a class, and locals whose type
was inferred from a constructor assignment (``cache = ResultCache(...);
cache.key(...)``).  Calls on values of unknown type stay unresolved and
propagate taint structurally (result = receiver ∪ arguments) — sound
for taint, underapproximate for reachability.
"""

from __future__ import annotations

import ast
import zlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint import _scan_suppressions  # shared noqa scanner
from repro.analysis.rules.time_discipline import is_time_valued
from repro.analysis.flow.taint import (
    EMPTY,
    FACTORY_TYPES,
    MUTATOR_METHODS,
    RNG,
    TaintVal,
    VOLATILE,
    VOLATILE_SUBSCRIPTS,
    call_result_taint,
    of,
)

__all__ = [
    "CallSite",
    "FloatOpSite",
    "Mutation",
    "FunctionInfo",
    "ModuleSummary",
    "ProjectModel",
    "build_model",
    "extract_module",
    "content_hash",
]

#: Methods on RNG objects that *draw* — results are deterministic given
#: the seeded stream, so they carry no taint of their own.
_RNG_DRAWS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "expovariate", "gauss", "normalvariate",
        "getrandbits", "randbytes", "triangular", "betavariate", "integers",
        "standard_normal", "normal", "exponential", "poisson", "permutation",
    }
)

_BLOCK_FIELDS = ("body", "orelse", "finalbody", "handlers", "cases")


def content_hash(data: bytes) -> str:
    """CRC-32 content fingerprint, hex — the exec-cache idiom."""
    return f"{zlib.crc32(data):08x}"


# ---------------------------------------------------------------------------
# Summary records (picklable; everything the rules need, no ASTs).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallSite:
    """One call expression, with resolution candidates and arg taint."""

    key: tuple[int, int]  # (line, col) — stable within the function
    callee: tuple[str, ...]  # dotted-name candidates ('' = unresolved)
    attr: str  # last attribute for method calls ("spec_hash"), else ""
    display: str  # source-ish rendering of the callee for messages
    args: tuple[TaintVal, ...] = ()
    kwargs: tuple[tuple[str, TaintVal], ...] = ()
    bound: bool = False  # instance call: args map to params[1:]

    @property
    def line(self) -> int:
        return self.key[0]

    @property
    def column(self) -> int:
        return self.key[1]

    def all_args(self) -> tuple[TaintVal, ...]:
        return self.args + tuple(tv for _, tv in self.kwargs)

    def matches(self, suffixes: Iterable[str]) -> bool:
        """True when any candidate dotted name ends with one of
        *suffixes* (``a.b.c`` matches suffix ``b.c`` and ``c``)."""
        for s in suffixes:
            for cand in self.callee:
                if cand == s or cand.endswith("." + s):
                    return True
        return False


@dataclass(frozen=True)
class FloatOpSite:
    """A float operation that would leak exactness out of a time value."""

    key: tuple[int, int]
    op: str  # "div" | "mul" | "add" | "sub" | "float"
    operand: TaintVal  # the side that must not be time-valued
    other: TaintVal | None  # div: the divisor (time/time ratios are fine)
    display: str
    local_time_valued: bool  # RT001's per-file heuristic already sees it


@dataclass(frozen=True)
class Mutation:
    """An in-place write through a parameter or module-level object."""

    key: tuple[int, int]
    target: str  # dotted chain, e.g. "system.tasks.append"
    root: str  # "self" | "param" | "global"
    kind: str  # "assign" | "augassign" | "call"


@dataclass
class FunctionInfo:
    """Flow summary of one function or method."""

    module: str
    qual: str  # "func" or "Class.method"
    line: int
    params: tuple[str, ...]
    is_method: bool
    ret: TaintVal = EMPTY
    ret_closure: TaintVal | None = None
    calls: tuple[CallSite, ...] = ()
    float_ops: tuple[FloatOpSite, ...] = ()
    mutations: tuple[Mutation, ...] = ()

    @property
    def fqn(self) -> str:
        return f"{self.module}.{self.qual}"

    def call_at(self, key: tuple[int, int]) -> CallSite | None:
        index = self.__dict__.get("_call_index")
        if index is None:
            index = {site.key: site for site in self.calls}
            self.__dict__["_call_index"] = index
        return index.get(key)


@dataclass
class ModuleSummary:
    """Everything the flow layer keeps about one parsed module."""

    module: str
    path: str
    content_hash: str
    bindings: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: tuple[str, ...] = ()
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    parse_error: str | None = None


# ---------------------------------------------------------------------------
# Per-module extraction.
# ---------------------------------------------------------------------------

def _import_bindings(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name → dotted target for every import statement."""
    out: dict[str, str] = {}
    pkg_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    out[item.asname] = item.name
                else:
                    # ``import a.b.c`` binds the top-level name ``a``.
                    top = item.name.split(".")[0]
                    out[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base = pkg_parts[: len(pkg_parts) - node.level]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                target = f"{prefix}.{item.name}" if prefix else item.name
                out[item.asname or item.name] = target
    return out


def _dotted_chain(node: ast.AST) -> tuple[str, list[str]] | None:
    """``a.b.c`` → ``("a", ["b", "c"])`` when rooted at a plain Name."""
    attrs: list[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, list(reversed(attrs))
    return None


def _display(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is float


class _FunctionExtractor:
    """Two-pass flow-insensitive abstract interpretation of one body."""

    def __init__(
        self,
        summary: ModuleSummary,
        fdef: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        class_name: str | None,
    ):
        self.summary = summary
        self.module = summary.module
        self.bindings = summary.bindings
        self.fdef = fdef
        self.class_name = class_name
        decorators = {
            d.id for d in fdef.decorator_list if isinstance(d, ast.Name)
        }
        self.is_method = class_name is not None and "staticmethod" not in decorators
        args = fdef.args
        params = [
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        ]
        self.info = FunctionInfo(
            module=self.module,
            qual=qual,
            line=fdef.lineno,
            params=tuple(params),
            is_method=self.is_method,
        )
        self.env: dict[str, TaintVal] = {
            name: TaintVal(params=frozenset({i})) for i, name in enumerate(params)
        }
        self.types: dict[str, str] = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            resolved = self._annotation_type(a.annotation)
            if resolved is not None:
                self.types[a.arg] = resolved
        self.locals: set[str] = {
            n.id
            for n in ast.walk(fdef)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        self._calls: dict[tuple[int, int], CallSite] = {}
        self._float_ops: dict[tuple[int, int], FloatOpSite] = {}
        self._mutations: dict[tuple[int, int], Mutation] = {}
        self._ret: TaintVal = EMPTY
        self._ret_closure: TaintVal | None = None

    def extract(self) -> FunctionInfo:
        # Two passes so loop-carried assignments reach their uses.
        for _ in range(2):
            self._ret = EMPTY
            self._exec_block(self.fdef.body)
        self.info.ret = self._ret
        self.info.ret_closure = self._ret_closure
        self.info.calls = tuple(
            self._calls[k] for k in sorted(self._calls)
        )
        self.info.float_ops = tuple(
            self._float_ops[k] for k in sorted(self._float_ops)
        )
        self.info.mutations = tuple(
            self._mutations[k] for k in sorted(self._mutations)
        )
        return self.info

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tv = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, tv, stmt.value, kind="assign")
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value, kind="assign")
        elif isinstance(stmt, ast.AugAssign):
            tv = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.env.get(stmt.target.id, EMPTY) | tv
            else:
                self._record_mutation(stmt.target, kind="augassign")
        elif isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                tv = self._eval(stmt.value)
                if tv.closure is not None:
                    cl = tv.closure
                    self._ret_closure = cl if self._ret_closure is None else self._ret_closure | cl
                self._ret = self._ret | tv.drop_closure()
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.env[stmt.name] = self._closure_value(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tv = self._eval(stmt.iter)
            self._bind_target(stmt.target, tv)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tv = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, tv)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        else:
            # match statements and anything new: walk nested blocks.
            for name in _BLOCK_FIELDS:
                for child in getattr(stmt, name, ()) or ():
                    if isinstance(child, ast.stmt):
                        self._exec(child)
                    elif hasattr(child, "body"):
                        self._exec_block(child.body)

    def _assign(
        self, target: ast.expr, tv: TaintVal, value: ast.expr, kind: str
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = tv
            inferred = self._infer_type(value)
            if inferred is not None:
                self.types[target.id] = inferred
            elif target.id in self.types:
                del self.types[target.id]
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tv, value, kind)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record_mutation(target, kind=kind)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tv, value, kind)

    def _bind_target(self, target: ast.expr, tv: TaintVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = tv
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, tv)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tv)

    def _infer_type(self, value: ast.expr) -> str | None:
        """``x = ResultCache(...)`` → ``repro.exec.cache.ResultCache``."""
        if not isinstance(value, ast.Call):
            return None
        resolved = self._resolve_callable(value.func)
        if resolved is None:
            return None
        candidates, _bound, _attr = resolved
        for cand in candidates:
            if cand in FACTORY_TYPES:
                return FACTORY_TYPES[cand]
            last = cand.rsplit(".", 1)[-1]
            if last[:1].isupper():
                return cand
        return None

    def _annotation_type(self, ann: ast.expr | None) -> str | None:
        """Resolve a parameter annotation to a class dotted name.

        Handles plain names, dotted names, string annotations and
        ``X | None`` / ``Optional[X]`` wrappers; anything fancier is
        left untyped (no edge rather than a wrong edge).
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            for side in (ann.left, ann.right):
                resolved = self._annotation_type(side)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(ann, ast.Subscript):
            chain = _dotted_chain(ann.value)
            if chain is not None and chain[1][-1:] == ("Optional",) or (
                chain is not None and not chain[1] and chain[0] == "Optional"
            ):
                return self._annotation_type(ann.slice)
            return None
        chain = _dotted_chain(ann)
        if chain is None:
            return None
        root, attrs = chain
        name = attrs[-1] if attrs else root
        if not name[:1].isupper() or name == "Optional":
            return None
        if not attrs:
            if root in self.summary.classes:
                return f"{self.module}.{root}"
            base = self.bindings.get(root)
            return base
        base = self.bindings.get(root)
        if base is None:
            return None
        return ".".join([base, *attrs])

    # -- mutations ----------------------------------------------------------

    def _record_mutation(self, target: ast.expr, *, kind: str) -> None:
        chain = _dotted_chain(
            target.value if isinstance(target, ast.Subscript) else target
        )
        if chain is None:
            return
        root, attrs = chain
        if self.is_method and self.info.params and root == self.info.params[0]:
            root_kind = "self"
        elif root in self.info.params:
            root_kind = "param"
        elif root in self.locals:
            return
        else:
            root_kind = "global"
        dotted = ".".join([root, *attrs])
        key = (target.lineno, target.col_offset)
        self._mutations[key] = Mutation(key=key, target=dotted, root=root_kind, kind=kind)

    # -- expressions ---------------------------------------------------------

    def _eval(self, node: ast.expr | None) -> TaintVal:
        if node is None or isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value).drop_closure()
        if isinstance(node, ast.Subscript):
            chain = _dotted_chain(node.value)
            if chain is not None:
                root, attrs = chain
                dotted = ".".join([self.bindings.get(root, root), *attrs])
                if dotted in VOLATILE_SUBSCRIPTS:
                    return of(VOLATILE)
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for v in node.values:
                out = out | self._eval(v)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for c in node.comparators:
                self._eval(c)
            return EMPTY  # booleans carry no taint we track
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, (ast.JoinedStr,)):
            out = EMPTY
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    out = out | self._eval(v.value)
            return out
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out = out | self._eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for k in node.keys:
                if k is not None:
                    out = out | self._eval(k)
            for v in node.values:
                out = out | self._eval(v)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                tv = self._eval(gen.iter)
                self._bind_target(gen.target, tv)
            if isinstance(node, ast.DictComp):
                return self._eval(node.key) | self._eval(node.value)
            return self._eval(node.elt)
        if isinstance(node, ast.Lambda):
            return self._closure_value(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tv = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = tv
            return tv
        return EMPTY

    def _closure_value(
        self, node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef
    ) -> TaintVal:
        """Taint captured by a nested callable (free names only)."""
        args = node.args
        bound = {
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        if not isinstance(node, ast.Lambda):
            bound |= {
                n.id
                for n in ast.walk(node)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
            }
            bound.add(node.name)
        captured = EMPTY
        for sub in ast.walk(node.body if isinstance(node, ast.Lambda) else node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id not in bound
                and sub.id in self.env
            ):
                captured = captured | self.env[sub.id].drop_closure()
        if captured.is_empty:
            return EMPTY
        return TaintVal(closure=captured)

    def _eval_binop(self, node: ast.BinOp) -> TaintVal:
        left = self._eval(node.left)
        right = self._eval(node.right)
        key = (node.lineno, node.col_offset)
        local = is_time_valued(node.left) or is_time_valued(node.right)
        if isinstance(node.op, ast.Div):
            self._float_ops[key] = FloatOpSite(
                key=key,
                op="div",
                operand=left,
                other=right,
                display=_display(node),
                local_time_valued=local,
            )
        elif isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)):
            for literal, side_tv, side_node in (
                (node.left, right, node.right),
                (node.right, left, node.left),
            ):
                if _is_float_literal(literal):
                    self._float_ops[key] = FloatOpSite(
                        key=key,
                        op={ast.Mult: "mul", ast.Add: "add", ast.Sub: "sub"}[type(node.op)],
                        operand=side_tv,
                        other=None,
                        display=_display(node),
                        local_time_valued=is_time_valued(side_node),
                    )
                    break
        return left | right

    def _resolve_callable(
        self, func: ast.expr
    ) -> tuple[tuple[str, ...], bool, str] | None:
        """→ (candidate dotted names, bound?, attr) or None when the
        receiver's type is unknown."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.summary.functions or name in self.summary.classes:
                return (f"{self.module}.{name}",), False, ""
            if name in self.bindings:
                return (self.bindings[name],), False, ""
            if name in self.env:
                return None  # a local callable value
            return (name,), False, ""  # builtin or unknown global
        if isinstance(func, ast.Attribute):
            chain = _dotted_chain(func)
            if chain is None:
                return None
            root, attrs = chain
            attr = attrs[-1]
            if (
                self.is_method
                and self.info.params
                and root == self.info.params[0]
                and len(attrs) == 1
            ):
                return (f"{self.module}.{self.class_name}.{attr}",), True, attr
            if root in self.types and len(attrs) == 1:
                return (f"{self.types[root]}.{attr}",), True, attr
            if root in self.env:
                return None  # method on a tracked value
            base = self.bindings.get(root)
            if base is None and (
                root in self.summary.classes or root in self.summary.functions
            ):
                base = f"{self.module}.{root}"
            if base is None:
                return None
            return (".".join([base, *attrs]),), False, attr
        return None

    def _eval_call(self, node: ast.Call) -> TaintVal:
        args = tuple(self._eval(a) for a in node.args)
        kwargs = tuple(
            (kw.arg, self._eval(kw.value)) for kw in node.keywords if kw.arg
        )
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                kwargs = kwargs + (("**", self._eval(kw.value)),)
        key = (node.lineno, node.col_offset)
        resolved = self._resolve_callable(node.func)
        arg_union = EMPTY
        for tv in args:
            arg_union = arg_union | tv
        for _, tv in kwargs:
            arg_union = arg_union | tv

        attr = node.func.attr if isinstance(node.func, ast.Attribute) else ""
        if resolved is None:
            candidates: tuple[str, ...] = ()
            bound = isinstance(node.func, ast.Attribute)
        else:
            candidates, bound, attr = resolved

        self._calls[key] = CallSite(
            key=key,
            callee=candidates,
            attr=attr,
            display=_display(node.func),
            args=args,
            kwargs=kwargs,
            bound=bound,
        )

        # float(<time value>) is an RT102 candidate like a float BinOp.
        if candidates == ("float",) and node.args:
            self._float_ops[key] = FloatOpSite(
                key=key,
                op="float",
                operand=args[0],
                other=None,
                display=_display(node),
                local_time_valued=is_time_valued(node.args[0]),
            )

        # In-place mutator methods on shared objects (RT104 evidence).
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATOR_METHODS:
            self._record_mutation_call(node.func)

        if candidates:
            classified = call_result_taint(candidates)
            if classified is not None:
                return classified
            if candidates == ("functools.partial",) or candidates[0].endswith(
                ".partial"
            ):
                return TaintVal(closure=arg_union) if not arg_union.is_empty else EMPTY
            return TaintVal(calls=frozenset({key}))

        # Unresolved method call: structural propagation.
        base = self._eval(node.func.value) if isinstance(node.func, ast.Attribute) else EMPTY
        if attr in _RNG_DRAWS and base.kinds == frozenset({RNG}) and not (
            base.params or base.calls
        ):
            return EMPTY  # a draw from a seeded stream is deterministic
        if attr in _RNG_DRAWS:
            # Draw from a possibly-rng receiver: never treat the result
            # as an RNG object, and do not forward symbolic rng taint.
            return EMPTY
        return base.drop_closure() | arg_union

    def _record_mutation_call(self, func: ast.Attribute) -> None:
        chain = _dotted_chain(func)
        if chain is None:
            return
        root, attrs = chain
        if self.is_method and self.info.params and root == self.info.params[0]:
            root_kind = "self"
            if len(attrs) == 1:
                return  # self.append(...) — own container, per-file land
        elif root in self.info.params:
            root_kind = "param"
        elif root in self.locals:
            return
        elif root in self.bindings or root in self.summary.functions:
            return  # module alias / function — not a data mutation target
        else:
            root_kind = "global"
        key = (func.lineno, func.col_offset)
        dotted = ".".join([root, *attrs])
        self._mutations[key] = Mutation(key=key, target=dotted, root=root_kind, kind="call")


def extract_module(source: str, *, module: str, path: str) -> ModuleSummary:
    """Parse *source* and distil its flow summary."""
    digest = content_hash(source.encode("utf-8", "surrogatepass"))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ModuleSummary(
            module=module,
            path=path,
            content_hash=digest,
            parse_error=f"cannot parse: {exc.msg}",
        )
    summary = ModuleSummary(
        module=module,
        path=path,
        content_hash=digest,
        suppressions=_scan_suppressions(source),
    )
    summary.bindings = _import_bindings(tree, module)
    classes: list[str] = []
    targets: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, str | None]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            targets.append((node, node.name, None))
        elif isinstance(node, ast.ClassDef):
            classes.append(node.name)
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    targets.append((sub, f"{node.name}.{sub.name}", node.name))
    summary.classes = tuple(classes)
    # Names must be known before extraction so module-local calls and
    # ctor-type inference resolve; register stubs first.
    for _node, qual, _cls in targets:
        summary.functions[qual] = FunctionInfo(
            module=module, qual=qual, line=_node.lineno, params=(), is_method=False
        )
    for node, qual, cls in targets:
        summary.functions[qual] = _FunctionExtractor(summary, node, qual, cls).extract()
    return summary


# ---------------------------------------------------------------------------
# Project assembly.
# ---------------------------------------------------------------------------

def _module_files(root: Path) -> list[tuple[str, Path]]:
    """``(dotted module name, file)`` pairs under *root*.

    A directory containing ``__init__.py`` is a package named after the
    directory; nested packages extend the dotted path.  Loose ``.py``
    files in a plain directory become top-level modules.
    """
    out: list[tuple[str, Path]] = []

    def walk(directory: Path, prefix: str) -> None:
        for entry in sorted(directory.iterdir()):
            if entry.is_dir():
                if (entry / "__init__.py").exists():
                    walk(entry, f"{prefix}{entry.name}.")
                continue
            if entry.suffix != ".py":
                continue
            if entry.name == "__init__.py":
                name = prefix.rstrip(".")
                if name:
                    out.append((name, entry))
                continue
            out.append((f"{prefix}{entry.stem}", entry))

    root = Path(root)
    if root.is_file():
        return [(root.stem, root)]
    walk(root, f"{root.name}." if (root / "__init__.py").exists() else "")
    return out


@dataclass
class ProjectModel:
    """All module summaries plus the derived call graph."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)

    @property
    def functions(self) -> dict[str, FunctionInfo]:
        cached = self.__dict__.get("_functions")
        if cached is None:
            cached = {
                info.fqn: info
                for summary in self.modules.values()
                for info in summary.functions.values()
            }
            self.__dict__["_functions"] = cached
        return cached

    def call_graph(self) -> dict[str, tuple[str, ...]]:
        """Resolved internal edges: caller fqn → sorted callee fqns."""
        graph: dict[str, tuple[str, ...]] = {}
        for fqn, info in self.functions.items():
            edges = {
                cand
                for site in info.calls
                for cand in site.callee
                if cand in self.functions
            }
            graph[fqn] = tuple(sorted(edges))
        return graph

    def reachable_from(self, patterns: Iterable[str]) -> set[str]:
        """Functions reachable (inclusive) from fqns matching *patterns*
        (``fnmatch`` syntax) over the resolved call graph."""
        graph = self.call_graph()
        pats = tuple(patterns)
        roots = {
            fqn for fqn in graph if any(fnmatchcase(fqn, p) for p in pats)
        }
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            for callee in graph.get(frontier.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def summary_for(self, fqn_or_module: str) -> ModuleSummary | None:
        return self.modules.get(fqn_or_module)

    def suppressed(self, module: str, line: int, code: str) -> bool:
        summary = self.modules.get(module)
        if summary is None or line not in summary.suppressions:
            return False
        codes = summary.suppressions[line]
        return codes is None or code in codes


def build_model(
    paths: Sequence[str | Path],
    *,
    cache: "object | None" = None,
) -> ProjectModel:
    """Parse every module under *paths* (files or package/dir roots).

    *cache*, when given, must provide ``lookup(path, digest)`` and
    ``store(path, digest, summary)`` (see
    :class:`repro.analysis.flow.cache.FlowCache`); files whose content
    hash is unchanged reuse their cached summary without re-parsing.
    """
    model = ProjectModel()
    for root in paths:
        for module, file in _module_files(Path(root)):
            data = file.read_bytes()
            digest = content_hash(data)
            summary = None
            if cache is not None:
                summary = cache.lookup(str(file), digest)
            if summary is None:
                summary = extract_module(
                    data.decode("utf-8", "surrogatepass"),
                    module=module,
                    path=str(file),
                )
                if cache is not None:
                    cache.store(str(file), digest, summary)
            model.modules[module] = summary
    return model
