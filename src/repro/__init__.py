"""repro — reproduction of *Fault Tolerance with Real-Time Java*
(Masson & Midonnet, WPDRTS 2006).

The package provides:

* :mod:`repro.core` — the paper's contribution: feasibility analysis
  (admission control), temporal-fault detectors and allowance-based
  fault treatments for fixed-priority preemptive periodic systems;
* :mod:`repro.sim` — a deterministic discrete-event uniprocessor
  simulator standing in for the paper's jRate/Timesys testbed;
* :mod:`repro.rtsj` — an RTSJ (`javax.realtime`) emulation layer,
  including the paper's ``javax.realtime.extended`` package
  (``RealtimeThreadExtended``, ``FeasibilityAnalysis``);
* :mod:`repro.workloads` — task-set parsers, generators and the paper's
  concrete systems;
* :mod:`repro.viz` — the time-series chart tooling (Figures 3-7 style);
* :mod:`repro.experiments` — runners regenerating every table/figure;
* :mod:`repro.analysis` — the static invariant checker
  (``python -m repro.analysis``): integer-nanosecond time discipline,
  determinism, and task-system consistency diagnostics.

Quickstart::

    from repro import Task, TaskSet, analyze, equitable_allowance, ms

    ts = TaskSet([
        Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20),
        Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18),
        Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16),
    ])
    report = analyze(ts)            # WCRTs: 29, 58, 87 ms
    allowance = equitable_allowance(ts)   # 11 ms
"""

from repro.core import *  # noqa: F401,F403 - curated re-export
from repro.core import __all__ as _core_all
from repro.units import MS, NS, S, US, fmt_ms, fmt_time, ms, ns, seconds, to_ms, us

__version__ = "1.0.0"

__all__ = [
    *_core_all,
    "ms",
    "us",
    "ns",
    "seconds",
    "to_ms",
    "fmt_ms",
    "fmt_time",
    "NS",
    "US",
    "MS",
    "S",
    "__version__",
]
