"""Unit tests for the paper's canned scenarios."""

from repro.core.feasibility import analyze, is_feasible
from repro.units import ms
from repro.workloads.scenarios import (
    PAPER_FAULTY_JOB,
    lehoczky_example,
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
    paper_table1,
    paper_table2,
)


class TestPaperTable2:
    def test_parameters(self):
        ts = paper_table2()
        assert ts["tau1"].priority == 20
        assert ts["tau2"].period == ms(250)
        assert ts["tau3"].deadline == ms(120)
        assert all(t.cost == ms(29) for t in ts)
        assert all(t.offset == 0 for t in ts)

    def test_feasible(self):
        assert is_feasible(paper_table2())


class TestFiguresVariant:
    def test_tau3_phased(self):
        ts = paper_figures_taskset()
        assert ts["tau3"].offset == ms(1000)
        assert ts["tau1"].offset == 0

    def test_coactivation_at_1000(self):
        # "the fifth job of tau1, which coincides with the activation
        # of a job of tau2 and tau3".
        ts = paper_figures_taskset()
        assert ts["tau1"].release_time(5) == ms(1000)
        assert ts["tau2"].release_time(4) == ms(1000)
        assert ts["tau3"].release_time(0) == ms(1000)

    def test_fault_targets_the_coactivated_job(self):
        faults = paper_fault()
        assert faults.demand("tau1", PAPER_FAULTY_JOB, ms(29)) == ms(69)
        assert faults.demand("tau1", 0, ms(29)) == ms(29)

    def test_horizon_covers_the_window(self):
        assert paper_horizon() >= ms(1200)


class TestPaperTable1:
    def test_as_printed_is_infeasible(self):
        # Documented OCR inconsistency: tau2's D=2 cannot absorb tau1's
        # 3 ms interference.
        report = analyze(paper_table1())
        assert not report.feasible
        assert report.wcrt("tau2") > paper_table1()["tau2"].deadline


class TestLehoczky:
    def test_wcrt_not_at_first_job(self):
        ts = lehoczky_example()
        report = analyze(ts)
        assert report.wcrt("t2") == 118
        assert ts["t2"].deadline == 120
        assert report.feasible
