#!/usr/bin/env python3
"""Quickstart: admission control, fault detection and treatment in
~40 lines.

Builds the paper's tested system (Table 2), runs the admission control
(worst-case response times + equitable allowance), injects a cost
overrun into the highest-priority task and shows how the allowance
treatment keeps every other task safe.

Run:  python examples/quickstart.py
"""

from repro import (
    CostOverrun,
    FaultInjector,
    Task,
    TaskSet,
    TreatmentKind,
    analyze,
    equitable_allowance,
    ms,
    to_ms,
)
from repro.sim import simulate
from repro.viz import TimelineOptions, render_timeline

# -- 1. Describe the periodic task system (the paper's Table 2). -----------
taskset = TaskSet(
    [
        Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20),
        Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18),
        Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16),
    ]
)

# -- 2. Admission control: exact worst-case response times. -----------------
report = analyze(taskset)
print("Admission control:")
for name, task_report in report.per_task.items():
    print(
        f"  {name}: WCRT = {to_ms(task_report.wcrt):g} ms"
        f" (deadline {to_ms(task_report.task.deadline):g} ms,"
        f" slack {to_ms(task_report.slack):g} ms)"
    )
assert report.feasible

# -- 3. The tolerance factor: how much may every task overrun? -------------
allowance = equitable_allowance(taskset)
print(f"\nEquitable allowance: {to_ms(allowance):g} ms per task")

# -- 4. Inject a fault and run with the allowance treatment. ----------------
faults = FaultInjector([CostOverrun("tau1", 0, ms(40))])
result = simulate(
    taskset,
    horizon=ms(400),
    faults=faults,
    treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
)

print("\nRun with a +40 ms overrun on tau1 (equitable-allowance policy):")
print(render_timeline(result, TimelineOptions(start=0, end=ms(200), width=90)))

stopped = result.stopped()
print(f"\nStopped jobs: {[(j.name, j.index) for j in stopped]}")
print(f"Deadline misses: {[(j.name, j.index) for j in result.missed()]}")
assert len(stopped) == 1 and not result.missed()
print("=> the faulty task was stopped at its adjusted WCRT; nobody missed.")
