"""Warm fast path == cold path, bit for bit (DESIGN.md §3.5).

The :class:`~repro.core.context.AnalysisContext` promises *exact*
equivalence with the cold entry points in
:mod:`repro.core.feasibility` — same WCRTs, same verdicts, same
allowances — over any probe order.  These tests drive both paths over
hundreds of ``derive_rng``-seeded random systems (feasible and not,
constrained and arbitrary deadlines) and require equality, not
closeness.  The cold replicas below intentionally re-run ``analyze``
per probe: they are the reference implementation the fast path is
measured against (and are exempt from RT008, which bans that pattern
inside ``repro.core`` itself).
"""

from __future__ import annotations

import pytest

from repro.core.allowance import (
    _feasible_inflation_bound,
    equitable_allowance,
    max_such_that,
    system_allowance,
    task_allowance,
)
from repro.core.context import AnalysisContext
from repro.core.feasibility import analyze, is_feasible, wc_response_time
from repro.core.sensitivity import scaling_factor_ppm
from repro.core.task import TaskSet
from repro.rng import derive_rng
from repro.workloads.generator import GeneratorConfig, random_taskset

#: >= 200 distinct random systems (the PR's acceptance floor).
N_SYSTEMS = 220

_CONFIG = GeneratorConfig(
    period_lo=1_000,
    period_hi=100_000,
    period_granularity=100,
)


def _system(i: int) -> TaskSet:
    """The i-th random system: sizes, loads and deadline styles cycle
    so the sample covers feasible/infeasible and constrained/arbitrary
    deadline cases; every stream is derive_rng-seeded (replayable)."""
    return random_taskset(
        _CONFIG,
        rng=derive_rng(20_0806, "ctx-equivalence", i),
        n=2 + i % 7,
        utilization=(0.5, 0.65, 0.8, 0.9, 0.95)[i % 5],
        deadline_factor=(0.8, 1.0, 1.2)[i % 3],
    )


ALL_SYSTEMS = range(N_SYSTEMS)
#: Subset that pays the expensive cold allowance searches.
SEARCH_SYSTEMS = range(0, N_SYSTEMS, 5)


# -- cold reference implementations (one analyze() per probe) -----------------
def cold_equitable(ts: TaskSet) -> int:
    hi = max(_feasible_inflation_bound(ts), 0)
    return max_such_that(
        lambda a: analyze(
            ts.with_costs({t.name: t.cost + a for t in ts})
        ).feasible,
        hi,
    )


def cold_solo(ts: TaskSet, name: str) -> int:
    target = ts[name]
    if not is_feasible(ts):
        return 0
    hi = max(target.deadline - target.cost, 0)
    return max_such_that(
        lambda x: analyze(ts.with_costs({name: target.cost + x})).feasible, hi
    )


def cold_scaling_ppm(ts: TaskSet) -> int:
    ppm = 1_000_000
    hi = max((t.deadline * ppm) // t.cost for t in ts) + ppm

    def pred(extra: int) -> bool:
        factor = ppm + extra
        costs = {t.name: max(1, -(-t.cost * factor // ppm)) for t in ts}
        for t in ts:
            c = costs[t.name]
            if c > t.deadline and c > t.period:
                return False
        return analyze(ts.with_costs(costs)).feasible

    return ppm + max_such_that(pred, hi)


@pytest.mark.parametrize("i", ALL_SYSTEMS)
def test_base_analysis_matches_cold(i):
    ts = _system(i)
    ctx = AnalysisContext(ts)
    cold = analyze(ts)
    warm = ctx.analyze()
    assert warm.feasible == cold.feasible
    assert ctx.is_feasible() == cold.feasible
    for t in ts:
        assert warm.per_task[t.name].wcrt == cold.per_task[t.name].wcrt
        assert ctx.wcrt(t.name) == wc_response_time(t, ts)


@pytest.mark.parametrize("i", ALL_SYSTEMS)
def test_perturbed_views_match_cold(i):
    ts = _system(i)
    ctx = AnalysisContext(ts)
    # Uniform inflation (ascending, as a search would probe it).
    for delta in (0, 1, 17, 1_000):
        if any(
            t.cost + delta > t.deadline and t.cost + delta > t.period
            for t in ts
        ):
            continue  # unconstructible probe: both paths raise
        inflated = ts.with_costs({t.name: t.cost + delta for t in ts})
        view = ctx.with_inflated_costs(delta)
        cold = analyze(inflated)
        assert view.feasible == cold.feasible
        for t in ts:
            assert view.wcrt(t.name) == cold.per_task[t.name].wcrt
    # Solo perturbation of the lowest-priority task.
    victim = ts.tasks[-1]
    for extra in (1, victim.period // 3 + 1):
        cost = victim.cost + extra
        if cost > victim.deadline and cost > victim.period:
            continue
        view = ctx.with_task_cost(victim.name, cost)
        cold = analyze(ts.with_costs({victim.name: cost}))
        assert view.feasible == cold.feasible
        for t in ts:
            assert view.wcrt(t.name) == cold.per_task[t.name].wcrt


@pytest.mark.parametrize("i", SEARCH_SYSTEMS)
def test_equitable_allowance_matches_cold(i):
    ts = _system(i)
    if not is_feasible(ts):
        pytest.skip("equitable allowance requires a feasible base")
    assert equitable_allowance(ts) == cold_equitable(ts)


@pytest.mark.parametrize("i", SEARCH_SYSTEMS)
def test_solo_allowances_match_cold(i):
    ts = _system(i)
    if not is_feasible(ts):
        pytest.skip("solo allowances require a feasible base")
    ctx = AnalysisContext(ts)
    warm = system_allowance(ts, context=ctx)
    for t in ts:
        assert warm[t.name] == cold_solo(ts, t.name)
    # task_allowance goes through the same context-backed search.
    first = ts.tasks[0].name
    assert task_allowance(ts, first, context=ctx) == warm[first]


@pytest.mark.parametrize("i", SEARCH_SYSTEMS)
def test_scaling_factor_matches_cold(i):
    ts = _system(i)
    if not is_feasible(ts):
        pytest.skip("scaling factor requires a feasible base")
    assert scaling_factor_ppm(ts) == cold_scaling_ppm(ts)


def test_probe_order_does_not_change_results():
    # A context that has served searches (warm tables populated in an
    # arbitrary order) must still answer base queries cold-identically.
    for i in range(0, 40, 4):
        ts = _system(i)
        if not is_feasible(ts):
            continue
        ctx = AnalysisContext(ts)
        equitable_allowance(ts, context=ctx)
        system_allowance(ts, context=ctx)
        cold = analyze(ts)
        for t in ts:
            assert ctx.wcrt(t.name) == cold.per_task[t.name].wcrt
