"""Finding baseline: adopt the tool on a codebase with legacy debt.

A committed ``analysis-baseline.json`` records the currently-accepted
findings.  CI then enforces a ratchet:

* a finding **not** in the baseline is *new* → fail;
* a baselined finding that still fires is *legacy* → allowed, burn down
  over time;
* a baseline entry that no longer matches anything is *resolved* →
  warn, so the file gets re-tightened (``--write-baseline``) and the
  debt count only ever moves down.

Fingerprints are ``stable_hash(code, normalized path, message)`` —
deliberately **line-number free**, so unrelated edits above a legacy
finding don't re-flag it as new.  Identical findings are matched as a
multiset: two occurrences in the baseline excuse at most two in the
current run.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.rng import stable_hash

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "BaselineDiff",
    "fingerprint",
    "load_baseline",
    "save_baseline",
    "diff_baseline",
]

DEFAULT_BASELINE_PATH = "analysis-baseline.json"

_BASELINE_VERSION = 1


def _norm_path(path: str) -> str:
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def fingerprint(diag: Diagnostic) -> str:
    """Line-independent identity of a finding."""
    return f"{stable_hash(diag.code, _norm_path(diag.path), diag.message):08x}"


def save_baseline(path: str | Path, diagnostics: Iterable[Diagnostic]) -> int:
    """Write *diagnostics* as the accepted baseline; returns the count."""
    findings = sorted(
        (
            {
                "fingerprint": fingerprint(d),
                "code": d.code,
                "path": _norm_path(d.path),
                "message": d.message,
            }
            for d in diagnostics
        ),
        key=lambda e: (e["path"], e["code"], e["fingerprint"]),
    )
    payload = {
        "version": _BASELINE_VERSION,
        "tool": "repro.analysis",
        "findings": findings,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(findings)


def load_baseline(path: str | Path) -> Counter:
    """fingerprint → allowed occurrence count.  Missing file = empty."""
    p = Path(path)
    if not p.exists():
        return Counter()
    payload = json.loads(p.read_text(encoding="utf-8"))
    if payload.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {p}"
        )
    return Counter(e["fingerprint"] for e in payload.get("findings", []))


class BaselineDiff:
    """Partition of a run's findings against the accepted baseline."""

    def __init__(
        self,
        new: list[Diagnostic],
        legacy: list[Diagnostic],
        resolved: int,
    ):
        self.new = new
        self.legacy = legacy
        self.resolved = resolved

    @property
    def ok(self) -> bool:
        """True when the ratchet holds: nothing new."""
        return not self.new


def diff_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Counter
) -> BaselineDiff:
    """Split findings into new vs baselined, counting resolved entries."""
    remaining = Counter(baseline)
    new: list[Diagnostic] = []
    legacy: list[Diagnostic] = []
    for d in diagnostics:
        fp = fingerprint(d)
        if remaining[fp] > 0:
            remaining[fp] -= 1
            legacy.append(d)
        else:
            new.append(d)
    resolved = sum(remaining.values())
    return BaselineDiff(new=new, legacy=legacy, resolved=resolved)
