"""Random task-set generation for sweeps and property tests.

The paper evaluates one hand-built system; the ablation benchmarks
generalise its comparisons over random workloads.  The standard
methodology is used:

* **UUniFast** (Bini & Buttazzo) draws ``n`` per-task utilizations
  summing exactly to ``U`` with a uniform distribution over the simplex;
* periods are drawn log-uniformly over a configurable range (so task
  rates spread over orders of magnitude, as in real systems);
* costs are ``round(U_i * T_i)`` floored at 1 ns;
* deadlines are ``D_i = round(T_i * deadline_factor)`` (factor <= 1
  gives constrained deadlines; > 1 arbitrary deadlines);
* priorities are deadline-monotonic by default.

Everything is driven by an explicit seed for reproducibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.priority_assignment import deadline_monotonic
from repro.core.task import Task, TaskSet
from repro.rng import resolve_rng

__all__ = ["uunifast", "log_uniform_periods", "random_taskset", "GeneratorConfig"]


def uunifast(n: int, total_utilization: float, rng: random.Random) -> list[float]:
    """Draw *n* utilizations summing to *total_utilization* (UUniFast)."""
    if n <= 0:
        raise ValueError("n must be >= 1")
    if total_utilization <= 0:
        raise ValueError("total utilization must be > 0")
    utils: list[float] = []
    remaining = total_utilization
    for i in range(n - 1):
        nxt = remaining * rng.random() ** (1.0 / (n - i - 1))
        utils.append(remaining - nxt)
        remaining = nxt
    utils.append(remaining)
    return utils


def log_uniform_periods(
    n: int, rng: random.Random, *, lo: int, hi: int, granularity: int = 1
) -> list[int]:
    """Draw *n* periods log-uniformly in ``[lo, hi]`` ns, rounded to
    *granularity* (e.g. 1 ms so hyperperiods stay tame)."""
    if not 0 < lo <= hi:
        raise ValueError("need 0 < lo <= hi")
    out = []
    for _ in range(n):
        p = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        p = max(granularity, round(p / granularity) * granularity)
        out.append(int(p))
    return out


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :func:`random_taskset`."""

    n: int = 5
    utilization: float = 0.6
    period_lo: int = 10_000_000  # 10 ms
    period_hi: int = 1_000_000_000  # 1 s
    period_granularity: int = 1_000_000  # 1 ms
    deadline_factor: float = 1.0
    seed: int = 0


def random_taskset(
    config: GeneratorConfig = GeneratorConfig(),
    *,
    rng: random.Random | None = None,
    **overrides,
) -> TaskSet:
    """Generate a random task set per *config* (fields overridable by
    keyword).  Priorities are deadline-monotonic.

    An injected *rng* wins over ``config.seed``, so sweeps can draw many
    sets from one explicitly-seeded stream.  The result is *not*
    guaranteed feasible: UUniFast controls only the utilization.
    Callers filter with ``is_feasible`` when they need schedulable sets
    (UUniFast-discard).
    """
    cfg = GeneratorConfig(**{**config.__dict__, **overrides}) if overrides else config
    rng = resolve_rng(rng, cfg.seed)
    utils = uunifast(cfg.n, cfg.utilization, rng)
    periods = log_uniform_periods(
        cfg.n, rng, lo=cfg.period_lo, hi=cfg.period_hi, granularity=cfg.period_granularity
    )
    tasks = []
    for i, (u, t) in enumerate(zip(utils, periods)):
        cost = max(1, round(u * t))
        deadline = max(cost, round(t * cfg.deadline_factor))
        tasks.append(
            Task(name=f"task{i}", cost=cost, period=t, deadline=deadline, priority=1)
        )
    return deadline_monotonic(tasks)
