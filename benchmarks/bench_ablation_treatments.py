"""Ablation: the five treatments over random workloads.

Generalises the paper's single-system comparison (§6): across many
random feasible task sets with a random single cost overrun, the
treatments must preserve their qualitative ordering —

* without treatment, faults propagate (collateral failures happen);
* every stopping policy eliminates collateral failures entirely;
* the faulty job's execution time grows from immediate stop through
  equitable allowance to system allowance (more tolerance, same
  safety), which is the paper's headline trade-off.
"""

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.feasibility import is_feasible
from repro.core.treatments import TreatmentKind
from repro.experiments.metrics import compute_metrics
from repro.sim.simulation import simulate
from repro.workloads.generator import GeneratorConfig, random_taskset

N_SYSTEMS = 30


def _systems():
    """Deterministic pool of feasible constrained-deadline systems."""
    systems = []
    seed = 0
    while len(systems) < N_SYSTEMS:
        ts = random_taskset(
            GeneratorConfig(
                n=4,
                utilization=0.75,
                period_lo=10_000,
                period_hi=1_000_000,
                period_granularity=1_000,
                deadline_factor=0.9,
                seed=seed,
            )
        )
        seed += 1
        if is_feasible(ts):
            systems.append(ts)
    return systems


def _run_sweep(treatment):
    outcomes = []
    for i, ts in enumerate(_systems()):
        victim = ts.tasks[0]  # paper: highest priority = worst case
        faults = FaultInjector([CostOverrun(victim.name, 1, victim.deadline)])
        horizon = 6 * max(t.period for t in ts)
        res = simulate(ts, horizon=horizon, faults=faults, treatment=treatment)
        outcomes.append((victim.name, compute_metrics(res)))
    return outcomes


def test_no_detection_lets_faults_propagate(benchmark):
    outcomes = benchmark(_run_sweep, None)
    collateral = sum(len(m.collateral_failures) for _, m in outcomes)
    # The shape: with a deadline-sized overrun and no treatment, lower
    # tasks fail somewhere in the pool.
    assert collateral > 0


def test_detect_only_changes_nothing(benchmark):
    outcomes = benchmark(_run_sweep, TreatmentKind.DETECT_ONLY)
    bare = _run_sweep(None)
    assert [m.failed_tasks for _, m in outcomes] == [m.failed_tasks for _, m in bare]
    # But every overrun is detected.
    assert all(m.detections >= 1 for _, m in outcomes)


def test_immediate_stop_eliminates_collateral_failures(benchmark):
    outcomes = benchmark(_run_sweep, TreatmentKind.IMMEDIATE_STOP)
    assert all(m.collateral_failures == [] for _, m in outcomes)


def test_equitable_allowance_eliminates_collateral_failures(benchmark):
    outcomes = benchmark(_run_sweep, TreatmentKind.EQUITABLE_ALLOWANCE)
    assert all(m.collateral_failures == [] for _, m in outcomes)


def test_system_allowance_eliminates_collateral_failures(benchmark):
    outcomes = benchmark(_run_sweep, TreatmentKind.SYSTEM_ALLOWANCE)
    assert all(m.collateral_failures == [] for _, m in outcomes)


def test_tolerance_ordering_immediate_lt_equitable_lt_system(benchmark):
    """The faulty job's granted execution never decreases from
    immediate stop -> equitable allowance -> system allowance."""

    def run():
        grants = {k: [] for k in ("stop", "equitable", "system")}
        for ts in _systems():
            victim = ts.tasks[0]
            faults = FaultInjector([CostOverrun(victim.name, 1, victim.deadline)])
            horizon = 6 * max(t.period for t in ts)
            for key, kind in (
                ("stop", TreatmentKind.IMMEDIATE_STOP),
                ("equitable", TreatmentKind.EQUITABLE_ALLOWANCE),
                ("system", TreatmentKind.SYSTEM_ALLOWANCE),
            ):
                res = simulate(ts, horizon=horizon, faults=faults, treatment=kind)
                job = res.job(victim.name, 1)
                grants[key].append(job.executed)
        return grants

    grants = benchmark(run)
    for a, b, c in zip(grants["stop"], grants["equitable"], grants["system"]):
        assert a <= b <= c
    # And strictly more tolerance overall (the ordering is not vacuous).
    assert sum(grants["system"]) > sum(grants["stop"])
