"""Integration tests for the full simulation front-end."""

import pytest

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.sim.simulation import Simulation, simulate
from repro.sim.trace import EventKind
from repro.sim.vm import JRATE_VM, VMProfile, ConstantOverhead
from repro.units import ms


def small_set() -> TaskSet:
    return TaskSet(
        [
            Task("hi", cost=2, period=10, priority=10),
            Task("lo", cost=3, period=15, priority=5),
        ]
    )


class TestPeriodicReleases:
    def test_release_count(self):
        res = simulate(small_set(), horizon=100)
        assert len(res.jobs_of("hi")) == 11  # t = 0, 10, ..., 100
        assert len(res.jobs_of("lo")) == 7

    def test_offsets_respected(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1, offset=4)])
        res = simulate(ts, horizon=40)
        assert [j.release for j in res.jobs_of("t")] == [4, 14, 24, 34]

    def test_schedule_matches_analysis_shape(self):
        # hi runs [0,2) and [10,12); lo runs [2,5) etc.
        res = simulate(small_set(), horizon=30)
        assert res.trace.execution_intervals("hi")[0] == (0, 2, 0)
        assert res.trace.execution_intervals("lo")[0] == (2, 5, 0)

    def test_response_times_without_faults(self):
        res = simulate(small_set(), horizon=300)
        assert res.max_response_time("hi") == 2
        assert res.max_response_time("lo") == 5

    def test_no_deadline_misses_for_feasible_set(self):
        res = simulate(small_set(), horizon=300)
        assert res.missed() == []

    def test_busy_and_idle_time(self):
        ts = TaskSet([Task("t", cost=3, period=10, priority=1)])
        res = simulate(ts, horizon=100)
        # 11 releases (0..100); the job at t=100 is cut by the horizon.
        assert res.busy_time == 10 * 3
        assert res.idle_time == 100 - 30


class TestBacklog:
    def test_overrunning_job_delays_next_job_of_same_task(self):
        ts = TaskSet([Task("t", cost=3, period=10, priority=1)])
        faults = FaultInjector([CostOverrun("t", 0, 15)])  # demand 18
        res = simulate(ts, horizon=40, faults=faults)
        j0, j1 = res.job("t", 0), res.job("t", 1)
        assert j0.finished_at == 18
        # Job 1 released at 10 but starts only when job 0 ends.
        assert j1.release == 10
        assert j1.started_at == 18
        assert j1.finished_at == 21

    def test_deadline_miss_recorded_for_overrun(self):
        ts = TaskSet([Task("t", cost=3, period=10, priority=1)])
        faults = FaultInjector([CostOverrun("t", 0, 15)])
        res = simulate(ts, horizon=40, faults=faults)
        assert res.job("t", 0).deadline_missed
        misses = res.trace.deadline_misses("t")
        assert misses[0].time == 10  # absolute deadline of job 0

    def test_job_finishing_exactly_at_deadline_is_not_a_miss(self):
        ts = TaskSet([Task("t", cost=10, period=10, priority=1)])
        res = simulate(ts, horizon=50)
        assert res.missed() == []


class TestDetectors:
    def test_detector_fires_every_period(self, table2):
        res = simulate(table2, horizon=ms(1000), treatment=TreatmentKind.DETECT_ONLY)
        fires = [e for e in res.trace.of_kind(EventKind.DETECTOR_FIRE) if e.task == "tau1"]
        assert [e.time for e in fires] == [ms(29 + 200 * k) for k in range(5)]

    def test_no_false_positives_without_faults(self, table2):
        res = simulate(table2, horizon=ms(3000), treatment=TreatmentKind.DETECT_ONLY)
        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []

    def test_fault_detected_on_overrun(self, figures_taskset, figures_fault, figures_horizon):
        res = simulate(
            figures_taskset,
            horizon=figures_horizon,
            faults=figures_fault,
            treatment=TreatmentKind.DETECT_ONLY,
        )
        detected = [
            (e.task, e.job) for e in res.trace.of_kind(EventKind.FAULT_DETECTED)
        ]
        assert ("tau1", 5) in detected

    def test_job_completing_exactly_at_detector_is_not_faulty(self):
        # WCRT of "t" is exactly its cost; the detector fires at that
        # instant and the completion (lower rank) runs first.
        ts = TaskSet([Task("t", cost=5, period=20, priority=1)])
        res = simulate(ts, horizon=100, treatment=TreatmentKind.DETECT_ONLY)
        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []


class TestTreatmentsEndToEnd:
    def test_immediate_stop(self, figures_taskset, figures_fault, figures_horizon):
        res = simulate(
            figures_taskset,
            horizon=figures_horizon,
            faults=figures_fault,
            treatment=TreatmentKind.IMMEDIATE_STOP,
        )
        (stopped,) = res.stopped()
        assert (stopped.name, stopped.index) == ("tau1", 5)
        assert stopped.finished_at == ms(1029)
        assert res.missed() == []

    def test_plan_object_accepted(self, figures_taskset, figures_fault, figures_horizon):
        plan = plan_treatment(figures_taskset, TreatmentKind.IMMEDIATE_STOP)
        res = simulate(
            figures_taskset,
            horizon=figures_horizon,
            faults=figures_fault,
            treatment=plan,
        )
        assert res.stopped()

    def test_no_detection_kind_means_bare_run(self, figures_taskset, figures_fault, figures_horizon):
        res = simulate(
            figures_taskset,
            horizon=figures_horizon,
            faults=figures_fault,
            treatment=TreatmentKind.NO_DETECTION,
        )
        assert res.runtime is None
        assert res.trace.of_kind(EventKind.DETECTOR_FIRE) == []

    def test_stop_of_preempted_job(self):
        # lo overruns, gets preempted by hi, and its detector fires
        # while it is preempted: the stop must land cleanly.
        ts = TaskSet(
            [
                Task("hi", cost=2, period=10, priority=10),
                Task("lo", cost=3, period=20, deadline=18, priority=5),
            ]
        )
        faults = FaultInjector([CostOverrun("lo", 0, 40)])
        res = simulate(ts, horizon=60, faults=faults, treatment=TreatmentKind.IMMEDIATE_STOP)
        (stopped,) = res.stopped("lo")
        assert stopped.index == 0
        # lo's WCRT is 5 (2 + 3); at t=5 hi isn't running, lo is -> the
        # stop is immediate.
        assert stopped.finished_at == 5


class TestVMEffects:
    def test_jrate_poll_overhead_delays_stop(self, figures_taskset, figures_fault, figures_horizon):
        vm = VMProfile(
            name="poll", stop_poll_overhead=ConstantOverhead(ms(2))
        )
        res = simulate(
            figures_taskset,
            horizon=figures_horizon,
            faults=figures_fault,
            treatment=TreatmentKind.IMMEDIATE_STOP,
            vm=vm,
        )
        (stopped,) = res.stopped()
        assert stopped.finished_at == ms(1031)  # 1029 + 2 ms poll cost

    def test_jrate_timer_rounding_shifts_detectors(self, table2):
        res = simulate(table2, horizon=ms(500), treatment=TreatmentKind.DETECT_ONLY, vm=JRATE_VM)
        first = [e for e in res.trace.of_kind(EventKind.DETECTOR_FIRE) if e.task == "tau1"][0]
        assert first.time == ms(30)

    def test_detector_fire_cost_steals_cpu(self):
        ts = TaskSet([Task("t", cost=5, period=20, deadline=19, priority=1)])
        vm = VMProfile(name="det", detector_fire_cost=2)
        res = simulate(ts, horizon=100, treatment=TreatmentKind.DETECT_ONLY, vm=vm)
        # Detector fires at t=5 while the job just completed; the
        # injected overhead occupies the CPU but the task is unaffected.
        assert res.missed() == []
        assert res.busy_time > 5 * 5

    def test_context_switch_charged(self):
        ts = TaskSet(
            [
                Task("hi", cost=2, period=10, priority=10),
                Task("lo", cost=10, period=20, priority=5),
            ]
        )
        vm = VMProfile(name="cs", context_switch=1)
        res = simulate(ts, horizon=20, vm=vm)
        # lo runs [2,10), is preempted, resumes at 12 and pays one
        # context switch: 2 residual demand + 1 -> finishes at 15.
        assert res.job("lo", 0).finished_at == 15


class TestOverheadAccounting:
    """Regression: ``__overhead*`` pseudo-jobs must not leak into the
    public ``jobs`` mapping (they used to, so ``missed()``/``stopped()``
    and the metrics iterated over them)."""

    def _run(self, fire_cost: int):
        ts = TaskSet(
            [
                Task("a", cost=3, period=20, deadline=18, priority=2),
                Task("b", cost=4, period=25, deadline=24, priority=1),
            ]
        )
        vm = VMProfile(name="det", detector_fire_cost=fire_cost)
        return simulate(ts, horizon=200, treatment=TreatmentKind.DETECT_ONLY, vm=vm)

    def test_public_jobs_exclude_pseudo_jobs(self):
        res = self._run(fire_cost=2)
        assert res.overhead_jobs, "detector fires should have injected overhead"
        assert all(not name.startswith("__overhead") for name, _ in res.jobs)
        assert all(not j.name.startswith("__overhead") for j in res.missed())
        assert all(not j.name.startswith("__overhead") for j in res.stopped())

    def test_overhead_still_steals_cpu(self):
        base = self._run(fire_cost=0)
        loaded = self._run(fire_cost=2)
        stolen = sum(j.executed for j in loaded.overhead_jobs)
        assert stolen > 0
        assert loaded.busy_time == base.busy_time + stolen

    def test_job_counts_match_task_releases(self):
        res = self._run(fire_cost=2)
        # 200/20 -> 10 releases of a, 200/25 -> 9 of b (inclusive t=200
        # release of a at 200 > horizon? releases at 0..180 plus t=200).
        names = {name for name, _ in res.jobs}
        assert names == {"a", "b"}


class TestValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            Simulation(small_set(), horizon=0)

    def test_result_job_lookup(self):
        res = simulate(small_set(), horizon=30)
        assert res.job("hi", 1).release == 10
        with pytest.raises(KeyError):
            res.job("hi", 99)
