"""SARIF 2.1.0 output for GitHub code-scanning annotations.

One renderer for *all* diagnostics — per-file ``RT0xx``, scenario
``TS0xx`` and whole-program ``RT1xx`` — so a single
``python -m repro.analysis --format sarif`` upload annotates pull
requests regardless of which layer produced a finding.

The document sticks to the small, schema-required core: a single run,
a ``tool.driver`` with per-rule metadata (id, name, short description,
default level), and one ``result`` per diagnostic with a physical
location carrying a repo-relative URI.  ``startLine``/``startColumn``
are only emitted when known (SARIF regions must be >= 1).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity, sort_key

__all__ = ["render_sarif", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_metadata() -> dict[str, dict]:
    """id → SARIF ``reportingDescriptor`` for every known rule code."""
    from repro.analysis.flow.rules import FLOW_RULES
    from repro.analysis.lint import PARSE_ERROR_CODE, all_rules
    from repro.analysis.taskset import TS_CODES

    out: dict[str, dict] = {}
    for rule in (*all_rules(), *FLOW_RULES):
        out[rule.code] = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
    out[PARSE_ERROR_CODE] = {
        "id": PARSE_ERROR_CODE,
        "name": "parse-error",
        "shortDescription": {"text": "file could not be parsed"},
        "defaultConfiguration": {"level": "error"},
    }
    for code in sorted(TS_CODES):
        out[code] = {
            "id": code,
            "name": f"task-system-{code[2:].lstrip('0') or '0'}",
            "shortDescription": {
                "text": "task-system consistency check "
                "(see repro.analysis.taskset)"
            },
            "defaultConfiguration": {"level": "error"},
        }
    return out


def _relative_uri(path: str) -> str:
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def render_sarif(
    diagnostics: Iterable[Diagnostic], *, tool_version: str = "1.0.0"
) -> str:
    """A SARIF 2.1.0 document (JSON text) for *diagnostics*."""
    diags = sorted(diagnostics, key=sort_key)
    metadata = _rule_metadata()
    used_ids = sorted({d.code for d in diags} | set(metadata))
    rules = [
        metadata.get(
            rule_id,
            {
                "id": rule_id,
                "name": rule_id.lower(),
                "shortDescription": {"text": rule_id},
                "defaultConfiguration": {"level": "error"},
            },
        )
        for rule_id in used_ids
    ]
    index = {rule["id"]: i for i, rule in enumerate(rules)}

    results = []
    for d in diags:
        message = d.message if not d.hint else f"{d.message} (hint: {d.hint})"
        region: dict = {}
        if d.line > 0:
            region["startLine"] = d.line
            if d.column > 0:
                region["startColumn"] = d.column
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": _relative_uri(d.path)},
            }
        }
        if region:
            location["physicalLocation"]["region"] = region
        results.append(
            {
                "ruleId": d.code,
                "ruleIndex": index[d.code],
                "level": _LEVELS[d.severity],
                "message": {"text": message},
                "locations": [location],
            }
        )

    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(document, indent=2)
