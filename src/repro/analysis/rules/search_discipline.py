"""RT008 — allowance searches in ``repro.core`` must probe warm.

The analysis fast path (DESIGN.md §3.5) exists because the §4 allowance
searches are binary searches whose predicate re-runs the exact
response-time analysis.  A predicate that calls the *cold* entry points
— ``analyze()``, ``wc_response_time()``, ``is_feasible()`` — pays the
full fixed-point iteration per probe and silently discards the warm
fixed points, early-exit verdicts and memo the
:class:`~repro.core.context.AnalysisContext` maintains.  That is
exactly the regression this PR removed, so the core layer is held to
it structurally: inside ``src/repro/core/``, a predicate handed to
``max_such_that`` must route through a context view (``view.feasible``,
``ctx.max_inflation`` …), never through the cold module functions.

Lambdas are checked in place; a predicate passed by name is resolved to
a function defined in the same module and its body checked.  Code
outside ``repro/core/`` (tests, benchmarks, cold-replica baselines) is
exempt — cold probing is the *point* of a baseline.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import Rule, register

__all__ = ["SearchDiscipline"]

#: Cold analysis entry points forbidden inside search predicates.
_COLD = frozenset({"analyze", "wc_response_time", "is_feasible"})

_HINT = (
    "probe through an AnalysisContext view (view.feasible / "
    "ctx.max_inflation / ctx.max_task_cost_delta) so the search "
    "warm-starts; cold analyze()/wc_response_time()/is_feasible() "
    "re-iterates from scratch on every probe"
)


def _in_core_layer(path: str) -> bool:
    return "repro/core/" in Path(path).as_posix()


def _cold_calls(node: ast.AST) -> list[tuple[ast.Call, str]]:
    """Nested calls to a cold entry point, as bare or attribute names."""
    out: list[tuple[ast.Call, str]] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name) and func.id in _COLD:
                out.append((sub, func.id))
            elif isinstance(func, ast.Attribute) and func.attr in _COLD:
                out.append((sub, func.attr))
    return out


@register
class SearchDiscipline(Rule):
    """RT008: cold analysis calls inside ``max_such_that`` predicates."""

    code = "RT008"
    name = "search-discipline"
    description = (
        "Core-layer allowance searches must not probe with the cold "
        "analysis entry points; every max_such_that predicate goes "
        "through the warm AnalysisContext fast path."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._active = _in_core_layer(ctx.path)
        #: module-level name -> function definition, for predicates
        #: passed by name rather than as a lambda.
        self._functions: dict[str, ast.AST] = {}
        if self._active:
            for stmt in ast.walk(ctx.tree):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._functions.setdefault(stmt.name, stmt)

    def visit_Call(self, node: ast.Call) -> None:
        if self._active and self._is_search(node) and node.args:
            predicate = node.args[0]
            target: ast.AST | None = None
            if isinstance(predicate, ast.Lambda):
                target = predicate.body
            elif isinstance(predicate, ast.Name):
                target = self._functions.get(predicate.id)
            if target is not None:
                for call, name in _cold_calls(target):
                    self.report(
                        call if isinstance(predicate, ast.Lambda) else node,
                        f"max_such_that predicate calls cold {name}() "
                        f"per probe",
                        hint=_HINT,
                    )
        self.generic_visit(node)

    @staticmethod
    def _is_search(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "max_such_that"
        return isinstance(func, ast.Attribute) and func.attr == "max_such_that"
