"""Unit tests for precedence-constraint analysis."""

import pytest

from repro.core.precedence import (
    PrecedenceGraph,
    end_to_end_bound,
    holistic_response_times,
)
from repro.core.task import Task, TaskSet


def transaction() -> TaskSet:
    """sense -> compute -> act, plus an unrelated high-rate task."""
    return TaskSet(
        [
            Task("clock", cost=1, period=10, priority=20),
            Task("sense", cost=2, period=40, priority=9),
            Task("compute", cost=6, period=40, priority=8),
            Task("act", cost=2, period=40, priority=7),
        ]
    )


EDGES = [("sense", "compute"), ("compute", "act")]


class TestGraph:
    def test_structure(self):
        g = PrecedenceGraph(transaction(), EDGES)
        assert g.roots() == ["act", "clock", "compute", "sense"] or True
        # roots = no predecessors: clock and sense.
        assert set(g.roots()) == {"clock", "sense"}
        assert set(g.sinks()) == {"clock", "act"}
        assert g.predecessors("compute") == ["sense"]
        assert g.successors("compute") == ["act"]

    def test_chains(self):
        g = PrecedenceGraph(transaction(), EDGES)
        chains = g.chains()
        assert ["sense", "compute", "act"] in chains

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            PrecedenceGraph(transaction(), EDGES + [("act", "sense")])

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PrecedenceGraph(transaction(), [("sense", "ghost")])

    def test_period_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a period"):
            PrecedenceGraph(transaction(), [("clock", "sense")])

    def test_topological_order(self):
        g = PrecedenceGraph(transaction(), EDGES)
        order = g.topological_order()
        assert order.index("sense") < order.index("compute") < order.index("act")


class TestHolisticAnalysis:
    def test_completion_bounds_accumulate(self):
        g = PrecedenceGraph(transaction(), EDGES)
        bounds = holistic_response_times(g)
        # sense: 2 + clock interference (1 per 10-window): w=3.
        assert bounds["sense"] == 3
        # compute: jitter 3, w = 6 + clock interference with the
        # jitter-dense arrivals; completion = 3 + w.
        assert bounds["compute"] > bounds["sense"]
        assert bounds["act"] > bounds["compute"]

    def test_root_bound_is_plain_wcrt(self):
        from repro.core.feasibility import wc_response_time

        g = PrecedenceGraph(transaction(), EDGES)
        bounds = holistic_response_times(g)
        ts = transaction()
        assert bounds["sense"] == wc_response_time(ts["sense"], ts)
        assert bounds["clock"] == wc_response_time(ts["clock"], ts)

    def test_unbounded_propagates(self):
        ts = TaskSet(
            [
                Task("hog", cost=10, period=10, priority=20),
                Task("a", cost=2, period=40, priority=9),
                Task("b", cost=2, period=40, priority=8),
            ]
        )
        g = PrecedenceGraph(ts, [("a", "b")])
        bounds = holistic_response_times(g)
        assert bounds["a"] is None
        assert bounds["b"] is None

    def test_join_takes_latest_predecessor(self):
        ts = TaskSet(
            [
                Task("fast", cost=1, period=40, priority=9),
                Task("slow", cost=8, period=40, priority=8),
                Task("join", cost=2, period=40, priority=7),
            ]
        )
        g = PrecedenceGraph(ts, [("fast", "join"), ("slow", "join")])
        bounds = holistic_response_times(g)
        assert bounds["join"] >= bounds["slow"] + ts["join"].cost

    def test_end_to_end_bound(self):
        g = PrecedenceGraph(transaction(), EDGES)
        bound = end_to_end_bound(g, ["sense", "compute", "act"])
        assert bound == holistic_response_times(g)["act"]
        with pytest.raises(ValueError):
            end_to_end_bound(g, [])
