"""Unit tests for sporadic task support (§7 future work)."""

import pytest

from repro.core.feasibility import analyze
from repro.core.sporadic import (
    SporadicTask,
    analysis_taskset,
    dense_arrivals,
    periodic_equivalent,
    poisson_arrivals,
    validate_arrivals,
)
from repro.core.task import Task
from repro.core.treatments import TreatmentKind
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind


def sporadic(name="s", cost=2, mit=10, priority=5, deadline=-1):
    return SporadicTask(
        name=name, cost=cost, min_interarrival=mit, priority=priority, deadline=deadline
    )


class TestModel:
    def test_deadline_defaults_to_mit(self):
        assert sporadic(mit=50).deadline == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            SporadicTask("s", cost=0, min_interarrival=10, priority=1)
        with pytest.raises(ValueError):
            SporadicTask("s", cost=1, min_interarrival=0, priority=1)

    def test_periodic_equivalent(self):
        eq = periodic_equivalent(sporadic(cost=3, mit=20, deadline=15))
        assert isinstance(eq, Task)
        assert eq.period == 20
        assert eq.deadline == 15
        assert eq.cost == 3

    def test_analysis_taskset_mixes_both(self):
        periodic = [Task("p", cost=2, period=8, priority=9)]
        ts = analysis_taskset(periodic, [sporadic()])
        report = analyze(ts)
        assert report.feasible
        # Sporadic WCRT at densest pattern: 2 + 2 = 4.
        assert report.wcrt("s") == 4


class TestArrivalGenerators:
    def test_dense_arrivals_at_mit(self):
        s = sporadic(mit=10)
        assert dense_arrivals(s, 35) == [0, 10, 20, 30]

    def test_dense_arrivals_with_start(self):
        assert dense_arrivals(sporadic(mit=10), 25, start=5) == [5, 15, 25]

    def test_poisson_arrivals_respect_mit(self):
        s = sporadic(mit=10)
        arrivals = poisson_arrivals(s, 10_000, seed=3)
        validate_arrivals(s, arrivals)  # must not raise
        assert arrivals

    def test_poisson_deterministic(self):
        s = sporadic(mit=10)
        assert poisson_arrivals(s, 1000, seed=7) == poisson_arrivals(s, 1000, seed=7)

    def test_poisson_mean_below_mit_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(sporadic(mit=10), 100, mean_interarrival=5)

    def test_validate_rejects_violations(self):
        s = sporadic(mit=10)
        with pytest.raises(ValueError, match="gap"):
            validate_arrivals(s, [0, 5])
        with pytest.raises(ValueError, match="negative"):
            validate_arrivals(s, [-1, 20])


class TestSporadicSimulation:
    def test_explicit_arrivals_drive_releases(self):
        s = sporadic(cost=2, mit=10, priority=5)
        ts = analysis_taskset([], [s])
        res = simulate(ts, horizon=100, arrivals={"s": [3, 17, 42]})
        assert [j.release for j in res.jobs_of("s")] == [3, 17, 42]
        assert all(j.finished for j in res.jobs_of("s"))

    def test_detectors_follow_actual_arrivals(self):
        s = sporadic(cost=2, mit=10, priority=5)
        ts = analysis_taskset([], [s])
        res = simulate(
            ts,
            horizon=100,
            arrivals={"s": [3, 42]},
            treatment=TreatmentKind.DETECT_ONLY,
        )
        fires = [e.time for e in res.trace.of_kind(EventKind.DETECTOR_FIRE)]
        # WCRT of the (equivalent) task is 2: checks at 5 and 44.
        assert fires == [5, 44]
        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []

    def test_sporadic_never_misses_under_analysis_bound(self):
        # If the dense-pattern analysis accepts, any legal (sparser)
        # arrival sequence must meet all deadlines.
        periodic = [Task("p", cost=3, period=12, deadline=12, priority=9)]
        s = sporadic(cost=4, mit=20, priority=5)
        ts = analysis_taskset(periodic, [s])
        assert analyze(ts).feasible
        arrivals = poisson_arrivals(s, 2000, seed=11)
        res = simulate(ts, horizon=2100, arrivals={"s": arrivals})
        assert res.missed() == []

    def test_unsorted_arrivals_rejected(self):
        ts = analysis_taskset([], [sporadic()])
        with pytest.raises(ValueError, match="sorted"):
            simulate(ts, horizon=100, arrivals={"s": [10, 5]})

    def test_unknown_task_arrivals_rejected(self):
        ts = analysis_taskset([], [sporadic()])
        with pytest.raises(ValueError, match="unknown"):
            simulate(ts, horizon=100, arrivals={"ghost": [1]})
