"""Figure 7: allowance granted totally to the first faulty task.

Shape reproduced exactly: the whole 33 ms of system free time goes to
tau1, which is stopped at release + WCRT + 33 = 1062 ms; tau2 and tau3
then finish "just before their deadlines" (1091 of 1120, and exactly
1120).  Also checks the residual rule: when tau1 consumes only part of
the grant, a later faulty task receives the remainder.
"""

from repro.core.treatments import TreatmentKind
from repro.experiments.paper import figure7
from repro.sim.simulation import simulate
from repro.units import ms
from repro.workloads.scenarios import paper_figures_taskset, paper_horizon
from repro.core.faults import CostOverrun, FaultInjector


def test_figure7_system_allowance(benchmark):
    result = benchmark(figure7)
    assert all(c.holds for c in result.claims()), [
        c.description for c in result.claims() if not c.holds
    ]
    assert result.job_end("tau1", 5) == ms(1062)  # WCRT + 33
    assert result.job_end("tau2", 4) == ms(1091)
    assert result.job_end("tau3", 0) == ms(1120)  # exactly its deadline
    assert result.metrics.collateral_failures == []


def test_figure7_residual_allowance(benchmark):
    """"If the first faulty task finishes before having consumed all
    its allowance, the remainder is allocated to the other faulty
    tasks": tau1 consumes 20 of the 33 ms, tau2 gets the other 13."""

    def run():
        faults = FaultInjector(
            [CostOverrun("tau1", 5, ms(20)), CostOverrun("tau2", 4, ms(20))]
        )
        return simulate(
            paper_figures_taskset(),
            horizon=paper_horizon(),
            faults=faults,
            treatment=TreatmentKind.SYSTEM_ALLOWANCE,
        )

    result = benchmark(run)
    tau2 = result.job("tau2", 4)
    assert tau2.was_stopped
    assert tau2.executed == ms(29) + ms(13)  # cost + residual grant
    assert result.job("tau3", 0).finished_at == ms(1120)
    assert result.missed() == []
