"""Job state for the simulator.

A *job* is one activation of a periodic task.  Jobs of the same task
serialise (a task is one thread: if a job overruns past the next period
boundary, the next job is released on time but cannot start before the
previous one ends — exactly the RTSJ ``waitForNextPeriod`` behaviour
the paper's instrumentation hooks into).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.task import Task

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    PENDING = "pending"  # released, but an earlier job of the task is active
    READY = "ready"  # eligible to run
    RUNNING = "running"  # currently holds the CPU
    BLOCKED = "blocked"  # waiting for a shared resource (PIP)
    DONE = "done"  # completed normally
    STOPPED = "stopped"  # terminated by a fault treatment
    SKIPPED = "skipped"  # never executed: dropped by a weakly-hard SKIP_JOB plan


@dataclass
class Job:
    """One activation of *task*.

    ``release`` is the nominal period boundary (response times and
    deadlines are measured from it even when the job starts late);
    ``demand`` is the *actual* execution requirement of this job, which
    differs from ``task.cost`` exactly when the job is faulty.
    """

    task: Task
    index: int
    release: int
    demand: int
    state: JobState = JobState.PENDING
    executed: int = 0
    started_at: int | None = None
    finished_at: int | None = None
    last_dispatch: int | None = None
    deadline_missed: bool = False
    fault_detected: bool = False
    stop_granted: int = 0
    overhead: int = 0
    #: Priority boost from resource protocols (inheritance/ceiling);
    #: the dispatcher uses :attr:`effective_priority`.
    boost: int = 0
    #: True when the job runs with the plan's reduced DEGRADE cost
    #: instead of the task's full cost.
    degraded: bool = False
    _stop_cap: int | None = field(default=None, repr=False)
    #: Execution-progress hooks: ``(point, callback)`` sorted by point,
    #: fired exactly once when ``executed`` reaches the point (used for
    #: critical-section boundaries).
    _hooks: list = field(default_factory=list, repr=False)

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def effective_priority(self) -> int:
        """Base priority raised by any protocol boost."""
        return max(self.task.priority, self.boost)

    # -- progress hooks ------------------------------------------------------
    def add_progress_hook(self, point: int, callback) -> None:
        """Fire *callback(job)* once the job has executed *point* ns."""
        if point < 0:
            raise ValueError("progress point must be >= 0")
        self._hooks.append((point, callback))
        self._hooks.sort(key=lambda pair: pair[0])

    def pop_due_hook(self):
        """Next unfired hook with ``point <= executed``, or None."""
        if self._hooks and self._hooks[0][0] <= self.executed:
            return self._hooks.pop(0)[1]
        return None

    def next_hook_point(self) -> int | None:
        """Earliest pending hook point (> executed), or None."""
        return self._hooks[0][0] if self._hooks else None

    @property
    def absolute_deadline(self) -> int:
        return self.release + self.task.deadline

    @property
    def required(self) -> int:
        """Total CPU the job will consume: its (possibly stop-capped)
        demand plus platform overhead charged to it (context switches)."""
        cap = self.demand if self._stop_cap is None else min(self.demand, self._stop_cap)
        return cap + self.overhead

    @property
    def remaining(self) -> int:
        """CPU time still required before the job ends."""
        return max(self.required - self.executed, 0)

    def add_overhead(self, amount: int) -> None:
        """Charge platform overhead (e.g. a context switch) to the job."""
        if amount < 0:
            raise ValueError("overhead must be >= 0")
        self.overhead += amount

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.STOPPED, JobState.SKIPPED)

    @property
    def was_stopped(self) -> bool:
        return self.state is JobState.STOPPED

    @property
    def was_skipped(self) -> bool:
        return self.state is JobState.SKIPPED

    @property
    def response_time(self) -> int | None:
        """``finish - release``, or None while unfinished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.release

    @property
    def overran(self) -> bool:
        """True when the job's demand exceeds its declared cost."""
        return self.demand > self.task.cost

    def truncate(self, extra_cpu: int) -> bool:
        """Request the job to stop after at most *extra_cpu* more CPU.

        *extra_cpu* models the §4.1 stop-flag poll latency (0 = stop at
        the next instant the job would run).  Returns True when the cap
        actually shortens the job (i.e. it will end as STOPPED rather
        than complete naturally).
        """
        if extra_cpu < 0:
            raise ValueError("extra_cpu must be >= 0")
        # The job should end once it has consumed `executed + extra_cpu`
        # total CPU; subtract the overhead share so the cap applies to
        # the demand portion of `required`.
        cap = max(self.executed + extra_cpu - self.overhead, 0)
        if cap >= self.demand:
            return False  # job finishes naturally first
        if self._stop_cap is None or cap < self._stop_cap:
            self._stop_cap = cap
        return True

    @property
    def stop_requested(self) -> bool:
        return self._stop_cap is not None and self._stop_cap < self.demand
