"""Unit tests for sensitivity analysis (multiplicative slack)."""

import pytest

from repro.core.feasibility import is_feasible
from repro.core.sensitivity import (
    PPM,
    breakdown_utilization,
    compare_slack,
    scaling_factor_ppm,
)
from repro.core.task import Task, TaskSet
from repro.units import ms


class TestScalingFactor:
    def test_at_least_identity_for_feasible(self, table2):
        assert scaling_factor_ppm(table2) >= PPM

    def test_maximal(self, table2):
        factor = scaling_factor_ppm(table2)
        scaled = table2.with_costs(
            {t.name: max(1, -(-t.cost * factor // PPM)) for t in table2}
        )
        assert is_feasible(scaled)

    def test_single_task_exact(self):
        ts = TaskSet([Task("t", cost=ms(2), period=ms(10), priority=1)])
        # Scaling limit: cost can reach the 10 ms deadline: factor 5.0.
        assert scaling_factor_ppm(ts) == 5 * PPM

    def test_tight_system_cannot_scale(self):
        ts = TaskSet([Task("t", cost=10, period=10, priority=1)])
        assert scaling_factor_ppm(ts) == PPM

    def test_infeasible_rejected(self):
        ts = TaskSet(
            [
                Task("a", cost=6, period=10, priority=2),
                Task("b", cost=6, period=10, priority=1),
            ]
        )
        with pytest.raises(ValueError):
            scaling_factor_ppm(ts)


class TestBreakdownUtilization:
    def test_single_task_is_full(self):
        ts = TaskSet([Task("t", cost=ms(2), period=ms(10), priority=1)])
        assert breakdown_utilization(ts) == pytest.approx(1.0)

    def test_never_exceeds_one(self, table2):
        assert breakdown_utilization(table2) <= 1.0 + 1e-9

    def test_constrained_deadlines_lower_breakdown(self):
        implicit = TaskSet(
            [
                Task("a", cost=2, period=10, priority=2),
                Task("b", cost=3, period=15, priority=1),
            ]
        )
        constrained = TaskSet(
            [
                Task("a", cost=2, period=10, priority=2),
                Task("b", cost=3, period=15, deadline=9, priority=1),
            ]
        )
        assert breakdown_utilization(constrained) <= breakdown_utilization(implicit)


class TestSlackComparison:
    def test_paper_system(self, table2):
        cmp = compare_slack(table2)
        assert cmp.additive_allowance == ms(11)
        assert cmp.scaling > 1.0
        # Additive tolerance is uniform; multiplicative is proportional
        # (equal here, since all costs are 29 ms).
        assert cmp.additive_tolerance("tau1") == ms(11)
        assert (
            cmp.multiplicative_tolerance("tau1")
            == cmp.multiplicative_tolerance("tau3")
        )

    def test_short_tasks_favoured_by_additive(self):
        ts = TaskSet(
            [
                Task("short", cost=ms(1), period=ms(50), priority=2),
                Task("long", cost=ms(20), period=ms(100), priority=1),
            ]
        )
        cmp = compare_slack(ts)
        # Multiplicative slack gives 'long' 20x the tolerance of
        # 'short'; the paper's additive policy treats them equally.
        assert cmp.multiplicative_tolerance("long") > cmp.multiplicative_tolerance("short")
        assert cmp.additive_tolerance("long") == cmp.additive_tolerance("short")
