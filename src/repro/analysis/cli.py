"""``python -m repro.analysis`` — check invariants from the command line.

Usage::

    python -m repro.analysis [paths...] [--format text|json]
                             [--select RT001,TS003] [--list-rules]

Paths may be files or directories.  ``.py`` files go through the AST
linter; scenario files (``.scn``/``.scenario``/``.tasks``, or any
non-Python file named explicitly) go through the task-system validator.
With no paths, ``src/repro`` is checked when it exists, else the
current directory.

Exit status: 0 when clean or warnings only, 1 when any error-severity
diagnostic was produced (or with ``--strict``, any diagnostic at all),
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.lint import PARSE_ERROR_CODE, all_rules, lint_file, iter_python_files
from repro.analysis.taskset import SCENARIO_SUFFIXES, TS_CODES, validate_scenario_file

__all__ = ["main", "check_paths"]


def check_paths(
    paths: Sequence[str | Path], *, codes: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the linter and the task-system validator over *paths*."""
    out: list[Diagnostic] = []
    scenario_files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            scenario_files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SCENARIO_SUFFIXES
            )
        elif p.suffix != ".py":
            scenario_files.append(p)
    for py in iter_python_files(paths):
        out.extend(lint_file(py, codes=codes))
    for scn in scenario_files:
        out.extend(validate_scenario_file(scn))
    if codes is not None:
        wanted = {c.upper() for c in codes}
        out = [d for d in out if d.code in wanted]
    return out


def _list_rules() -> str:
    lines = ["code   severity  name"]
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.severity.value:8}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checker: integer-nanosecond time "
        "discipline, determinism, and task-system consistency.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated diagnostic codes to enable (e.g. RT003,TS003)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the lint rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        paths = [str(default)] if default.is_dir() else ["."]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    codes = None
    if args.select:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        known = {r.code for r in all_rules()} | TS_CODES | {PARSE_ERROR_CODE}
        unknown = sorted(set(codes) - known)
        if unknown:
            print(
                f"error: unknown diagnostic code(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
    diagnostics = check_paths(paths, codes=codes)

    if args.format == "json":
        print(render_json(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))
    else:
        print("clean: no diagnostics")

    if any(d.severity is Severity.ERROR for d in diagnostics):
        return 1
    if diagnostics and args.strict:
        return 1
    return 0
