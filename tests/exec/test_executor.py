"""Executor contract tests: serial/pool equivalence, cache awareness."""

from repro.exec.cache import ResultCache
from repro.exec.executor import LocalExecutor, PoolExecutor, make_executor
from repro.exec.spec import ExperimentSpec


def spec(name):
    return ExperimentSpec.make(name=name, builder="b", params={"n": name})


def builder(s):
    # Module-level and deterministic, so it pickles into pool workers.
    return f"built:{s.name}"


class TestLocalExecutor:
    def test_runs_every_spec_in_order(self):
        ex = LocalExecutor()
        results = ex.run([spec("a"), spec("b"), spec("c")], builder)
        assert [r.value for r in results] == ["built:a", "built:b", "built:c"]
        assert all(r.source == "computed" for r in results)
        assert ex.stats.specs == 3
        assert ex.stats.computed == 3

    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = LocalExecutor(cache)
        first.run([spec("a"), spec("b")], builder)
        second = LocalExecutor(ResultCache(tmp_path))
        results = second.run([spec("a"), spec("b")], builder)
        assert all(r.from_cache for r in results)
        assert [r.value for r in results] == ["built:a", "built:b"]
        assert second.stats.cache_hits == 2
        assert second.stats.hit_rate == 1.0

    def test_partial_cache_mixes_sources(self, tmp_path):
        cache = ResultCache(tmp_path)
        LocalExecutor(cache).run([spec("a")], builder)
        ex = LocalExecutor(ResultCache(tmp_path))
        results = ex.run([spec("a"), spec("new")], builder)
        assert [r.source for r in results] == ["cache", "computed"]


class TestPoolExecutor:
    def test_matches_serial_results(self):
        specs = [spec(str(i)) for i in range(5)]
        serial = [r.value for r in LocalExecutor().run(specs, builder)]
        pooled = [r.value for r in PoolExecutor(2).run(specs, builder)]
        assert pooled == serial

    def test_single_worker_falls_back_inline(self):
        results = PoolExecutor(1).run([spec("a")], builder)
        assert results[0].value == "built:a"

    def test_empty_spec_list(self):
        assert PoolExecutor(4).run([], builder) == []

    def test_pool_writes_cache_in_parent(self, tmp_path):
        cache = ResultCache(tmp_path)
        PoolExecutor(2, cache).run([spec("a"), spec("b")], builder)
        assert len(cache) == 2


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), LocalExecutor)

    def test_pool_otherwise(self):
        ex = make_executor(3)
        assert isinstance(ex, PoolExecutor)
        assert ex.jobs == 3

    def test_stats_describe_mentions_hit_rate(self):
        ex = LocalExecutor()
        ex.run([spec("a")], builder)
        assert "hit rate" in ex.stats.describe()


class TestSpecDelta:
    """The pool's broadcast-and-delta handoff must reconstruct every
    spec exactly (equality and content hash), or worker-side flight
    context and parent-side caching would disagree."""

    def big(self, name, start):
        return ExperimentSpec.make(
            name=name,
            builder="sweep.chunk",
            seed=7,
            params={
                "sweep": {"axes": {"utilization": (0.5, 0.9)}, "replicates": 40},
                "start": start,
                "count": 5,
            },
        )

    def test_round_trip_is_exact(self):
        from repro.exec.executor import _inflate_spec, _spec_delta

        ref = self.big("chunk0000", 0)
        for other in (
            ref,
            self.big("chunk0001", 5),
            ExperimentSpec.make(name="x", builder="other", params={"k": 1}),
        ):
            delta = _spec_delta(other, ref)
            rebuilt = _inflate_spec(delta, ref)
            assert rebuilt == other
            assert rebuilt.spec_hash() == other.spec_hash()

    def test_delta_is_small_for_sibling_chunks(self):
        from repro.exec.executor import _spec_delta

        ref = self.big("chunk0000", 0)
        changed_fields, changed_params, removed = _spec_delta(self.big("chunk0001", 5), ref)
        assert dict(changed_fields) == {"name": "chunk0001"}
        assert dict(changed_params) == {"start": 5}
        assert removed == ()
