"""AST linter enforcing the reproduction's core invariants.

The simulator's results are only trustworthy under two discipline rules
that ordinary review keeps missing (exactly how the uncorrected RTSJ
``addToFeasibility()`` shipped in the paper's baseline):

* **time discipline** — every duration/instant is an integer nanosecond
  count; float arithmetic on time silently accumulates rounding error;
* **determinism** — no wall clocks, no process-global RNG, no
  salted-``hash`` seeds; a scenario plus a seed must replay bit-exactly.

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register`, drop the module into :mod:`repro.analysis.rules`.
Each rule owns a stable ``RT0xx`` code (see the package docs for the
full table) and reports :class:`~repro.analysis.diagnostics.Diagnostic`
records; suppression is per-line via ``# noqa`` / ``# noqa: RT001``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "ModuleContext",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Code used for files the linter cannot parse at all.
PARSE_ERROR_CODE = "RT000"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?", re.I)


@dataclass
class ModuleContext:
    """Everything a rule may need about the module under inspection."""

    path: str
    tree: ast.Module
    source: str
    #: Per-line suppressions: ``None`` means *all* codes on that line.
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    #: Codes actually silenced per line — the RT099 staleness ledger.
    used_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: False when a ``--select`` subset runs; suppression-staleness
    #: accounting (RT099) is only meaningful against the full rule set.
    full_run: bool = True

    @property
    def is_units_module(self) -> bool:
        """True for :mod:`repro.units` itself — the one module allowed
        to convert between floats and nanosecond ticks."""
        return Path(self.path).as_posix().endswith("repro/units.py")

    def suppressed(self, line: int, code: str) -> bool:
        if line not in self.suppressions:
            return False
        codes = self.suppressions[line]
        if codes is None or code in codes:
            self.used_suppressions.setdefault(line, set()).add(code)
            return True
        return False


def _scan_suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line ``# noqa`` entries, scanned from *comment tokens* only
    so a docstring that merely talks about ``# noqa`` is not treated as
    a suppression (which RT099 would then report as stale)."""
    out: dict[int, set[str] | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, SyntaxError, ValueError):
        # Unreachable for source that ast.parse accepted; degrade to
        # the old whole-line scan rather than dropping suppressions.
        tokens = None
    if tokens is None:
        candidates = enumerate(source.splitlines(), start=1)
    else:
        candidates = (
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        )
    for lineno, text in candidates:
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        out[lineno] = {c.strip().upper() for c in codes.split(",")} if codes else None
    return out


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description`` and override the
    ``visit_*`` methods they care about, calling :meth:`report` for each
    finding.  One fresh instance is created per module, so rules may
    keep per-module state (import aliases, scope stacks) freely.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        self.visit(self.ctx.tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str, *, hint: str = "") -> None:
        line = getattr(node, "lineno", 0)
        if self.ctx.suppressed(line, self.code):
            return
        self.diagnostics.append(
            Diagnostic(
                code=self.code,
                severity=self.severity,
                message=message,
                path=self.ctx.path,
                line=line,
                column=getattr(node, "col_offset", -1) + 1,
                hint=hint,
            )
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule* to the global registry."""
    if not rule.code:
        raise ValueError(f"{rule.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule


def all_rules() -> tuple[Type[Rule], ...]:
    """Registered rules in code order (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401 - triggers registration

    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rules.
# ---------------------------------------------------------------------------

def module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to *module* by ``import`` statements
    (``import random`` -> ``{'random'}``, ``import random as rnd`` ->
    ``{'rnd'}``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or item.name)
    return aliases


def from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module and node.level == 0:
            for item in node.names:
                out[item.asname or item.name] = item.name
    return out


def call_name(node: ast.Call) -> str | None:
    """The bare called name: ``foo(...)`` -> ``'foo'``, else None."""
    return node.func.id if isinstance(node.func, ast.Name) else None


def attr_call(node: ast.Call) -> tuple[str, str] | None:
    """``base.attr(...)`` -> ``('base', 'attr')`` when base is a Name."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def contains_call_to(node: ast.AST, names: frozenset[str]) -> ast.Call | None:
    """First nested call to any bare name in *names* (e.g. ``hash``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id in names:
                return sub
    return None


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def lint_source(
    source: str, path: str = "<string>", *, codes: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint Python *source*; returns diagnostics (possibly empty).

    *codes* restricts to a subset of rule codes (default: all).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                column=exc.offset or 0,
            )
        ]
    ctx = ModuleContext(
        path=path,
        tree=tree,
        source=source,
        suppressions=_scan_suppressions(source),
        full_run=codes is None,
    )
    wanted = {c.upper() for c in codes} if codes is not None else None
    out: list[Diagnostic] = []
    for rule_cls in all_rules():
        if wanted is not None and rule_cls.code not in wanted:
            continue
        out.extend(rule_cls(ctx).run())
    return out


def lint_file(path: str | Path, *, codes: Iterable[str] | None = None) -> list[Diagnostic]:
    p = Path(path)
    return lint_source(p.read_text(), str(p), codes=codes)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[str | Path], *, codes: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    out: list[Diagnostic] = []
    for p in iter_python_files(paths):
        out.extend(lint_file(p, codes=codes))
    return out
