"""Property-based tests for the workload layer (hypothesis)."""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.task import Task, TaskSet
from repro.units import MS
from repro.workloads.generator import GeneratorConfig, random_taskset, uunifast
from repro.workloads.parser import Scenario, format_scenario, parse_scenario


class TestUUniFastProperties:
    @given(st.integers(1, 30), st.floats(0.05, 2.0), st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_sum_and_positivity(self, n, total, seed):
        utils = uunifast(n, total, random.Random(seed))
        assert len(utils) == n
        assert abs(sum(utils) - total) < 1e-9
        assert all(u >= 0 for u in utils)


class TestGeneratorProperties:
    @given(st.integers(1, 8), st.floats(0.1, 0.95), st.integers(0, 500))
    @settings(max_examples=40)
    def test_structural_invariants(self, n, util, seed):
        ts = random_taskset(GeneratorConfig(n=n, utilization=util, seed=seed))
        assert len(ts) == n
        for t in ts:
            assert 1 <= t.cost <= t.deadline
            assert t.deadline <= t.period
            assert t.period % 1_000_000 == 0  # granularity respected
        priorities = [t.priority for t in ts]
        assert len(set(priorities)) == n  # distinct


@st.composite
def scenarios(draw) -> Scenario:
    """Random well-formed scenarios (for round-trip testing)."""
    n = draw(st.integers(1, 5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(2, 500)) * MS
        cost = draw(st.integers(1, period // MS)) * MS
        deadline = draw(st.integers(cost // MS, 2 * period // MS)) * MS
        offset = draw(st.integers(0, 50)) * MS
        tasks.append(
            Task(
                name=f"t{i}",
                cost=cost,
                period=period,
                deadline=deadline,
                priority=draw(st.integers(1, 30)),
                offset=offset,
            )
        )
    from repro.core.faults import CostOverrun, CostUnderrun, FaultInjector
    from repro.core.treatments import TreatmentKind

    deviations = []
    for i in range(draw(st.integers(0, 3))):
        target = draw(st.sampled_from(tasks))
        job = draw(st.integers(0, 9))
        if draw(st.booleans()):
            deviations.append(CostOverrun(target.name, job, draw(st.integers(1, 50)) * MS))
        else:
            deviations.append(CostUnderrun(target.name, job, draw(st.integers(1, 50)) * MS))
    treatment = draw(st.sampled_from([None, *TreatmentKind]))
    horizon = draw(st.one_of(st.none(), st.integers(1, 10_000).map(lambda v: v * MS)))
    return Scenario(
        taskset=TaskSet(tasks),
        faults=FaultInjector(deviations),
        treatment=treatment,
        horizon=horizon,
    )


class TestParserRoundTripProperty:
    @given(scenarios())
    @settings(max_examples=60)
    def test_format_parse_identity(self, scenario):
        text = format_scenario(scenario)
        reparsed = parse_scenario(text)
        assert reparsed.taskset == scenario.taskset
        assert reparsed.horizon == scenario.horizon
        assert reparsed.treatment == scenario.treatment
        assert reparsed.faults.deviations == scenario.faults.deviations

    @given(scenarios())
    @settings(max_examples=30)
    def test_format_is_stable(self, scenario):
        once = format_scenario(scenario)
        twice = format_scenario(parse_scenario(once))
        assert once == twice
