"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import engine as engine_mod
from repro.sim.engine import Engine, Rank


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(30, lambda: log.append("c"))
        eng.schedule(10, lambda: log.append("a"))
        eng.schedule(20, lambda: log.append("b"))
        eng.run()
        assert log == ["a", "b", "c"]
        assert eng.now == 30

    def test_rank_breaks_ties(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: log.append("release"), Rank.RELEASE)
        eng.schedule(10, lambda: log.append("completion"), Rank.COMPLETION)
        eng.schedule(10, lambda: log.append("detector"), Rank.DETECTOR)
        eng.schedule(10, lambda: log.append("deadline"), Rank.DEADLINE_CHECK)
        eng.run()
        assert log == ["completion", "deadline", "detector", "release"]

    def test_fifo_within_same_time_and_rank(self):
        eng = Engine()
        log = []
        for i in range(5):
            eng.schedule(10, lambda i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(5, lambda: None)

    def test_schedule_at_now_allowed(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: eng.schedule(10, lambda: log.append("nested")))
        eng.run()
        assert log == ["nested"]

    def test_schedule_in(self):
        eng = Engine()
        log = []
        eng.schedule(5, lambda: eng.schedule_in(7, lambda: log.append(eng.now)))
        eng.run()
        assert log == [12]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        log = []
        handle = eng.schedule(10, lambda: log.append("x"))
        handle.cancel()
        eng.run()
        assert log == []

    def test_cancel_from_earlier_event(self):
        eng = Engine()
        log = []
        later = eng.schedule(20, lambda: log.append("later"))
        eng.schedule(10, later.cancel)
        eng.run()
        assert log == []

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        h.cancel()
        assert eng.peek_time() == 20


class TestRunUntil:
    def test_stops_before_later_events(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: log.append("early"))
        eng.schedule(100, lambda: log.append("late"))
        eng.run(until=50)
        assert log == ["early"]
        assert eng.now == 50  # clock advanced to the horizon

    def test_event_exactly_at_until_runs(self):
        eng = Engine()
        log = []
        eng.schedule(50, lambda: log.append("edge"))
        eng.run(until=50)
        assert log == ["edge"]

    def test_resume_after_until(self):
        eng = Engine()
        log = []
        eng.schedule(100, lambda: log.append("late"))
        eng.run(until=50)
        eng.run()
        assert log == ["late"]

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert not eng.step()
        eng.schedule(1, lambda: None)
        assert eng.step()
        assert not eng.step()

    def test_events_processed_counter(self):
        eng = Engine()
        for t in (1, 2, 3):
            eng.schedule(t, lambda: None)
        eng.run()
        assert eng.events_processed == 3


class TestHeapDiscipline:
    """Regression guards for the fused run loop: each event costs one
    heap pop, and the loop never re-scans the heap head (the old
    implementation peeked ``heap[0]`` via ``peek_time`` before every
    ``step``, traversing the heap twice per event)."""

    def test_run_pops_each_event_exactly_once(self, monkeypatch):
        pops = []
        real = engine_mod.heappop

        def counting_pop(heap):
            entry = real(heap)
            pops.append(entry)
            return entry

        monkeypatch.setattr(engine_mod, "heappop", counting_pop)
        eng = Engine()
        for t in range(100):
            eng.schedule(t, lambda: None)
        eng.run()
        assert eng.events_processed == 100
        assert len(pops) == 100
        assert len(set(pops)) == 100  # no entry popped twice

    def test_run_until_pops_the_boundary_event_once(self, monkeypatch):
        count = [0]
        real = engine_mod.heappop

        def counting_pop(heap):
            count[0] += 1
            return real(heap)

        monkeypatch.setattr(engine_mod, "heappop", counting_pop)
        eng = Engine()
        for t in (10, 20, 100):
            eng.schedule(t, lambda: None)
        eng.run(until=50)
        # Two events executed, plus the single over-horizon probe that
        # is pushed back for the next run — not one probe per event.
        assert eng.events_processed == 2
        assert count[0] == 3
        eng.run()
        assert eng.events_processed == 3

    def test_run_never_indexes_the_heap_head(self):
        gets = [0]

        class CountingHeap(list):
            def __getitem__(self, index):
                gets[0] += 1
                return super().__getitem__(index)

        eng = Engine()
        eng._heap = CountingHeap()
        for t in range(50):
            eng.schedule(t, lambda: None)
        gets[0] = 0
        eng.run()
        # heapq's C internals bypass __getitem__; only a Python-level
        # ``heap[0]`` rescan (the old peek-per-event) would count here.
        assert eng.events_processed == 50
        assert gets[0] == 0

    def test_cancelled_entries_are_dropped_lazily(self, monkeypatch):
        count = [0]
        real = engine_mod.heappop

        def counting_pop(heap):
            count[0] += 1
            return real(heap)

        monkeypatch.setattr(engine_mod, "heappop", counting_pop)
        eng = Engine()
        handles = [eng.schedule(t, lambda: None) for t in range(10)]
        for h in handles[::2]:
            h.cancel()
        eng.run()
        assert eng.events_processed == 5
        assert count[0] == 10  # each entry popped once, live or dead
