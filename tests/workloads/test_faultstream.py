"""The vectorized fault-stream replay against the scalar truth.

`workloads/faultstream.py` promises bit equality with the
`derive_rng` → `random.Random` draws that `RandomFaults.demand`
makes per job; these tests pin that equality directly (the oracle and
stepper suites pin it end-to-end through the simulator)."""

import random

import numpy as np

from repro.core.faults import RandomFaults
from repro.rng import stable_hash
from repro.workloads.faultstream import job_seeds, uniform_extras


def _extras_for(fm: RandomFaults, name: str, count: int) -> list[int]:
    seeds = job_seeds(fm.seed, name, count)
    out = uniform_extras(
        seeds,
        np.full(count, fm.rate),
        np.full(count, fm.max_extra, dtype=np.int64),
    )
    return [int(x) for x in out]


class TestJobSeeds:
    def test_matches_stable_hash(self):
        seeds = job_seeds(99, "tau_1", 50)
        assert [int(s) for s in seeds] == [
            stable_hash(99, "tau_1", job) for job in range(50)
        ]

    def test_unicode_task_names(self):
        seeds = job_seeds(3, "τ_ünïcode", 8)
        assert [int(s) for s in seeds] == [
            stable_hash(3, "τ_ünïcode", job) for job in range(8)
        ]

    def test_empty(self):
        assert job_seeds(1, "a", 0).shape == (0,)
        assert uniform_extras(
            np.empty(0, np.uint32), np.empty(0), np.empty(0, np.int64)
        ).shape == (0,)


class TestUniformExtras:
    def test_bit_identical_to_random_faults(self):
        """A broad (seed, rate, max_extra) grid: every stream equals
        the scalar ``RandomFaults.demand`` draw, including power-of-two
        boundaries that stress the rejection loop."""
        rng = random.Random(11)
        for trial in range(40):
            fm = RandomFaults(
                rate=rng.choice([0.05, 0.3, 0.6, 0.95, 1.0]),
                max_extra=rng.choice([1, 2, 7, 9, 1023, 1025, 2**31]),
                seed=rng.randrange(2**32),
            )
            n = rng.randrange(1, 60)
            assert _extras_for(fm, "t", n) == [
                fm.demand("t", k, 0) for k in range(n)
            ], (fm.rate, fm.max_extra, fm.seed, n)

    def test_zero_rate_is_all_zero(self):
        fm = RandomFaults(rate=0.0, max_extra=100, seed=5)
        assert _extras_for(fm, "a", 30) == [0] * 30

    def test_rate_one_always_faults_in_range(self):
        fm = RandomFaults(rate=1.0, max_extra=9, seed=5)
        extras = _extras_for(fm, "a", 200)
        assert all(1 <= e <= 9 for e in extras)
        assert extras == [fm.demand("a", k, 0) for k in range(200)]

    def test_wide_max_extra_takes_scalar_path(self):
        """``max_extra`` beyond one getrandbits word cannot vectorize —
        the scalar fallback must still be bit-identical."""
        fm = RandomFaults(rate=0.9, max_extra=2**40, seed=17)
        assert _extras_for(fm, "a", 40) == [fm.demand("a", k, 0) for k in range(40)]

    def test_mixed_per_stream_parameters(self):
        """Streams from different systems (different rate/max) resolve
        independently in one call."""
        fms = [
            RandomFaults(rate=0.4, max_extra=12, seed=1),
            RandomFaults(rate=0.8, max_extra=257, seed=2),
        ]
        n = 25
        seeds = np.concatenate([job_seeds(fm.seed, "x", n) for fm in fms])
        rates = np.concatenate([np.full(n, fm.rate) for fm in fms])
        maxes = np.concatenate(
            [np.full(n, fm.max_extra, dtype=np.int64) for fm in fms]
        )
        got = uniform_extras(seeds, rates, maxes).tolist()
        want = [fm.demand("x", k, 0) for fm in fms for k in range(n)]
        assert got == want
