"""Reproducible run manifests.

A *manifest* is the machine-readable record of one batch run: for every
exhibit, the full spec, its content hash, the claim verdicts, the
rendering artifact (with its SHA-256), the cache provenance and the
wall time; globally, the git revision, the code-version fingerprint the
cache keyed on, the executor shape and the cache counters.  Every
number in a report can be traced back through the manifest to the spec
that produced it.

Two views of a manifest matter:

* the **full document** (``manifest.json``) — everything, including
  volatile execution metadata (timings, cache hits, executor kind);
* the **fingerprint** (:func:`manifest_fingerprint`) — a SHA-256 over
  the manifest with volatile fields stripped.  Serial and parallel runs
  of the same registry at the same code version must produce the same
  fingerprint; the parity tests in :mod:`tests.exec` enforce exactly
  that.
"""

from __future__ import annotations

import copy
import hashlib
import json
import re
import subprocess
from pathlib import Path
from typing import Sequence

from repro.exec.cache import code_version
from repro.exec.executor import ExecutionResult, Executor

__all__ = [
    "MANIFEST_SCHEMA",
    "git_revision",
    "build_manifest",
    "strip_volatile",
    "manifest_fingerprint",
    "write_manifest",
]

MANIFEST_SCHEMA = 1

#: Execution metadata excluded from the fingerprint: timings, cache
#: provenance, executor shape and telemetry vary run to run; results
#: must not.
_VOLATILE_TOP = ("git_rev", "code_version", "executor", "stats", "telemetry")
_VOLATILE_EXHIBIT = ("wall_s", "source")

_ARTIFACT_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def git_revision(cwd: str | Path | None = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def _artifact_name(spec_name: str) -> str:
    return _ARTIFACT_SAFE.sub("_", spec_name).strip("_") + ".txt"


def _telemetry_section(
    results: Sequence[ExecutionResult], executor: Executor | None
) -> dict:
    """The manifest's ``telemetry`` block: cache counters, executor
    shape, per-spec wall time and queue wait, and any recorded exec
    spans.  Volatile by construction — stripped before fingerprinting
    (see :data:`_VOLATILE_TOP`)."""
    telemetry: dict = {
        "specs": [
            {
                "name": r.spec.name,
                "source": r.source,
                "wall_s": round(r.wall_s, 6),
                "queue_wait_ns": r.queue_wait_ns,
            }
            for r in results
        ],
    }
    if executor is not None:
        telemetry["cache"] = executor.cache_stats.as_dict()
        telemetry["executor"] = {"kind": executor.kind, "jobs": executor.jobs}
        if executor.spans is not None:
            telemetry["spans"] = executor.spans.as_dicts()
        # Merged worker telemetry (repro.obs.aggregate): identical for
        # serial and --jobs N runs modulo pid tags.  Lives under the
        # volatile "telemetry" top-level key, so fingerprints are
        # unchanged whether worker observability was on or off.
        if executor.telemetry:
            telemetry["aggregate"] = executor.telemetry.as_dict()
            if executor.telemetry.flight_bundles:
                telemetry["flight_bundles"] = list(executor.telemetry.flight_bundles)
    return telemetry


def build_manifest(
    results: Sequence[ExecutionResult],
    *,
    executor: Executor | None = None,
) -> tuple[dict, dict[str, str]]:
    """Assemble the manifest document and its rendering artifacts.

    Returns ``(manifest, artifacts)`` where *artifacts* maps artifact
    file names to rendered exhibit text (written alongside
    ``manifest.json`` by :func:`write_manifest`).
    """
    exhibits = []
    artifacts: dict[str, str] = {}
    for r in results:
        rendering = r.value.render() if hasattr(r.value, "render") else str(r.value)
        claims = list(r.value.claims()) if hasattr(r.value, "claims") else []
        artifact = _artifact_name(r.spec.name)
        if artifact in artifacts:
            raise ValueError(f"duplicate artifact name {artifact!r} (spec {r.spec.name!r})")
        artifacts[artifact] = rendering
        exhibits.append(
            {
                "name": r.spec.name,
                "spec": r.spec.to_dict(),
                "spec_hash": r.spec.spec_hash(),
                "claims": [
                    {"description": c.description, "holds": bool(c.holds)} for c in claims
                ],
                "claims_ok": all(c.holds for c in claims),
                "artifact": artifact,
                "artifact_sha256": hashlib.sha256(rendering.encode()).hexdigest(),
                "source": r.source,
                "wall_s": round(r.wall_s, 6),
            }
        )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "git_rev": git_revision(),
        "code_version": code_version(),
        "executor": {
            "kind": executor.kind if executor is not None else "unknown",
            "jobs": executor.jobs if executor is not None else 1,
        },
        "stats": {
            "specs": len(exhibits),
            "claims": sum(len(e["claims"]) for e in exhibits),
            "claims_holding": sum(
                sum(1 for c in e["claims"] if c["holds"]) for e in exhibits
            ),
            "cache": (
                executor.cache_stats.as_dict() if executor is not None else None
            ),
            "wall_s": round(sum(e["wall_s"] for e in exhibits), 6),
        },
        "telemetry": _telemetry_section(results, executor),
        "exhibits": exhibits,
    }
    return manifest, artifacts


def strip_volatile(manifest: dict) -> dict:
    """A deep copy of *manifest* without execution-volatile fields."""
    out = copy.deepcopy(manifest)
    for key in _VOLATILE_TOP:
        out.pop(key, None)
    for exhibit in out.get("exhibits", ()):
        for key in _VOLATILE_EXHIBIT:
            exhibit.pop(key, None)
    return out


def manifest_fingerprint(manifest: dict) -> str:
    """SHA-256 over the volatile-stripped canonical JSON.

    Identical for serial and parallel runs of the same specs at the
    same code state — the reproducibility check one can put in CI.
    """
    canonical = json.dumps(strip_volatile(manifest), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def write_manifest(
    out_dir: str | Path, manifest: dict, artifacts: dict[str, str]
) -> Path:
    """Write ``manifest.json`` plus every rendering artifact; returns
    the manifest path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, text in artifacts.items():
        (out / name).write_text(text + ("" if text.endswith("\n") else "\n"))
    path = out / "manifest.json"
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
