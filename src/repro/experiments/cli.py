"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.experiments all
    python -m repro.experiments all --jobs 4 --manifest out/
    python -m repro.experiments table2 figure7
    python -m repro.experiments figure4 --svg out/
    python -m repro.experiments run my_scenario.txt --treatment immediate-stop
    python -m repro.experiments sweep landscape --jobs 4 --manifest out/

``all`` covers the nine paper exhibits *and* the seven ablation studies.
Every target runs through the batch executor: ``--jobs N`` fans the
builds out over a process pool, results are cached under ``--cache``
(default ``.repro-cache/``; disable with ``--no-cache``), and
``--manifest DIR`` writes a ``manifest.json`` recording the spec,
content hash, claim verdicts and artifact digest of every exhibit.

``sweep <name>`` runs a named population sweep (see
:data:`repro.experiments.population.SWEEPS`) through the same executor
stack: chunks are ordinary cached specs, so an interrupted ``sweep``
re-invocation recomputes only the chunks that never finished, and the
manifest fingerprint is identical for serial, ``--jobs N`` and
``--stepper exact`` runs.

Observability (see :mod:`repro.obs`): ``--trace-out FILE`` streams
every simulator event to a JSONL trace (convert with ``python -m
repro.obs convert``), ``--metrics-out FILE`` writes a ``metrics.json``
with per-task response-time histograms and cache/exec telemetry, and
``--profile`` prints the engine's per-event-kind dispatch profile.
These flags force a serial, cache-bypassing run so the recorded trace
covers every simulation.

Sweep-scale observability flags do *not* force serial — they are built
to survive the process pool: ``--telemetry`` ships each worker's
metrics and pid-tagged spans back through the result channel and folds
them into the manifest's ``telemetry.aggregate`` section (serial and
``--jobs N`` agree modulo pid tags); ``--progress FILE`` appends a
crash-readable JSONL progress stream (summarize with ``python -m
repro.obs progress``); ``--flight DIR`` arms the anomaly flight
recorder, dumping replayable bundles (``python -m repro.obs replay``)
for any deadline miss the analysis called feasible or any
batched-vs-exact divergence found by ``--stepper verify``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.treatments import TreatmentKind
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.manifest import build_manifest, manifest_fingerprint, write_manifest
from repro.exec.executor import Executor, make_executor
from repro.experiments.registry import all_specs, build_exhibit
from repro.experiments.runner import scenario_spec
from repro.obs import (
    EngineProfiler,
    JsonlSink,
    MetricsObserver,
    ObsConfig,
    ProgressWriter,
    SpanRecorder,
    WorkerObs,
    activate,
    write_metrics,
)
from repro.viz.svg import SvgOptions, render_svg

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    known = {spec.name: spec for spec in all_specs()}
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Fault Tolerance "
        "with Real-Time Java' (Masson & Midonnet, 2006).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=f"experiment names ({', '.join(known)}), 'all', "
        "'run <scenario-file>', or 'sweep <name>'",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="build exhibits over N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything; do not read or write the cache",
    )
    parser.add_argument(
        "--manifest",
        metavar="DIR",
        help="write manifest.json + rendered artifacts into DIR",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also write an SVG chart per figure into DIR",
    )
    parser.add_argument(
        "--html",
        metavar="FILE",
        help="for the 'report' target: write the report as a standalone "
        "HTML page instead of Markdown on stdout",
    )
    parser.add_argument(
        "--treatment",
        choices=[k.value for k in TreatmentKind],
        help="treatment override for 'run' targets",
    )
    parser.add_argument(
        "--vm",
        choices=["exact", "jrate"],
        default="exact",
        help="VM profile for 'run' targets (default: exact)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        metavar="K",
        help="override the sweep's chunk size (systems per cached chunk)",
    )
    parser.add_argument(
        "--stepper",
        choices=["batched", "exact", "verify"],
        default="batched",
        help="how 'sweep' runs classifier-eligible systems: vectorized "
        "batch stepper, the per-system engine, or both with a "
        "fingerprint cross-check (default: batched; results are "
        "bit-identical)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-build worker telemetry (metrics + pid-tagged "
        "spans) and fold it into the manifest; works under --jobs N",
    )
    parser.add_argument(
        "--progress",
        metavar="FILE",
        help="append a crash-readable JSONL progress stream to FILE "
        "(summarize with 'python -m repro.obs progress FILE')",
    )
    parser.add_argument(
        "--flight",
        metavar="DIR",
        help="arm the anomaly flight recorder: dump replayable bundles "
        "into DIR on miss-despite-feasible or stepper divergence "
        "(verify with 'python -m repro.obs replay')",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="stream every simulator event to FILE as JSONL "
        "(inspect/convert with 'python -m repro.obs')",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write metrics.json (per-task histograms, counters, cache "
        "and exec telemetry) to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile engine event dispatch and print the table",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1")
        return 2

    jobs = args.jobs
    obs_enabled = bool(args.trace_out or args.metrics_out or args.profile)
    if obs_enabled and not args.no_cache:
        print("note: observability flags bypass the result cache (recomputing)")
    cache = None if (args.no_cache or obs_enabled) else ResultCache(args.cache)
    spans: SpanRecorder | None = None
    obs_cfg: ObsConfig | None = None
    if obs_enabled:
        if jobs > 1:
            print(f"note: observability flags force a serial run (ignoring --jobs {jobs})")
            jobs = 1
        spans = SpanRecorder()
        obs_cfg = ObsConfig(
            sink=JsonlSink(args.trace_out) if args.trace_out else None,
            metrics=MetricsObserver(),
            profiler=EngineProfiler() if args.profile else None,
        )
    worker_obs = None
    if args.telemetry or args.flight:
        worker_obs = WorkerObs(telemetry=True, flight_dir=args.flight)
    progress = ProgressWriter(args.progress, echo=sys.stderr) if args.progress else None
    executor = make_executor(jobs, cache, spans, worker_obs, progress)

    try:
        if obs_cfg is None:
            status = _dispatch(args, known, executor)
        else:
            with activate(obs_cfg):
                status = _dispatch(args, known, executor)
            _finalize_obs(args, obs_cfg, spans, executor)
    finally:
        if progress is not None:
            progress.close()
    if worker_obs is not None and executor.telemetry:
        t = executor.telemetry
        print(
            f"telemetry: {len(t.pids)} worker(s), {len(t.counters)} counters, "
            f"{len(t.spans)} spans, {len(t.flight_bundles)} flight bundle(s)"
        )
        for bundle in t.flight_bundles:
            print(f"  flight bundle: {bundle}")
    return status


def _dispatch(
    args: argparse.Namespace, known: dict, executor: Executor
) -> int:
    targets = list(args.targets)
    if targets and targets[0] == "run":
        return _run_scenario_files(targets[1:], args, executor)
    if targets and targets[0] == "sweep":
        return _run_sweeps(targets[1:], args, executor)
    if targets and targets[0] == "report":
        from repro.experiments.report import generate_html_report, generate_report

        if args.html:
            path = Path(args.html)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(generate_html_report(executor=executor))
            print(f"wrote {path}")
        else:
            print(generate_report(executor=executor))
        return 0
    if "all" in targets:
        targets = list(known)

    specs = []
    for name in targets:
        if name not in known:
            print(f"unknown experiment {name!r}; known: {', '.join(known)}")
            return 2
        specs.append(known[name])

    if executor.progress is not None:
        executor.progress.emit("run_started", run="exhibits", total_specs=len(specs))
    runs = executor.run(specs, build_exhibit)
    status = 0
    for run in runs:
        exp = run.value
        print(exp.render())
        for claim in exp.claims():
            print(str(claim))
            if not claim.holds:
                status = 1
        print()
        if args.svg and hasattr(exp, "result"):
            out = Path(args.svg)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{run.spec.name}.svg"
            path.write_text(render_svg(exp.result, SvgOptions(title=exp.name)))
            print(f"wrote {path}")
    fingerprint = None
    if args.manifest:
        manifest, artifacts = build_manifest(runs, executor=executor)
        path = write_manifest(args.manifest, manifest, artifacts)
        fingerprint = manifest_fingerprint(manifest)
        print(f"wrote {path} (fingerprint {fingerprint[:12]})")
    if executor.progress is not None:
        executor.progress.emit(
            "run_finished",
            run="exhibits",
            **({"fingerprint": fingerprint} if fingerprint else {}),
        )
    cs = executor.cache_stats
    print(
        f"executor: {executor.stats.describe()}; cache: hits={cs.hits} "
        f"misses={cs.misses} stores={cs.stores} evictions={cs.evictions}"
    )
    return status


def _finalize_obs(
    args: argparse.Namespace,
    cfg: ObsConfig,
    spans: SpanRecorder | None,
    executor: Executor,
) -> None:
    """Flush the run's observability outputs: exec spans into the trace,
    the trace file closed, metrics.json written, profiler table printed."""
    if cfg.sink is not None:
        if spans is not None:
            for event in spans.to_trace_events():
                cfg.sink.emit(event)
        cfg.sink.close()
        emitted = getattr(cfg.sink, "emitted", None)
        suffix = f" ({emitted} events)" if emitted is not None else ""
        print(f"wrote trace {args.trace_out}{suffix}")
    if cfg.profiler is not None:
        print(cfg.profiler.render_table())
    if cfg.metrics is not None and args.metrics_out:
        extra = {
            "cache": executor.cache_stats.as_dict(),
            "exec": {
                "specs": executor.stats.specs,
                "computed": executor.stats.computed,
                "wall_s": round(executor.stats.wall_s, 6),
                "spans": spans.as_dicts() if spans is not None else [],
            },
        }
        if cfg.profiler is not None:
            extra["engine_profile"] = cfg.profiler.as_dict()
        path = write_metrics(args.metrics_out, cfg.metrics.registry, extra)
        print(f"wrote metrics {path}")


def _run_sweeps(names: list[str], args: argparse.Namespace, executor: Executor) -> int:
    from dataclasses import replace

    from repro.exec.sweep import run_sweep, summarize_cells
    from repro.experiments.population import SWEEPS, sweep_by_name

    if not names:
        print(f"sweep: need a sweep name ({', '.join(sorted(SWEEPS))})")
        return 2
    for name in names:
        try:
            sweep = sweep_by_name(name)
        except ValueError as err:
            print(str(err))
            return 2
        if args.chunk_size:
            sweep = replace(sweep, chunk_size=args.chunk_size)
        result = run_sweep(sweep, executor=executor, stepper=args.stepper)
        print(
            f"sweep {sweep.name} [{sweep.sweep_hash()}]: "
            f"{sweep.total_points} systems in {len(result.results)} chunks"
        )
        for line in summarize_cells(result.points):
            print(f"  {line}")
        print(f"fingerprint {result.fingerprint()}")
        if args.manifest:
            path = write_manifest(args.manifest, result.manifest, result.artifacts)
            print(f"wrote {path}")
    cs = executor.cache_stats
    print(
        f"executor: {executor.stats.describe()}; cache: hits={cs.hits} "
        f"misses={cs.misses} stores={cs.stores} evictions={cs.evictions}"
    )
    return 0


def _run_scenario_files(paths: list[str], args: argparse.Namespace, executor: Executor) -> int:
    if not paths:
        print("run: need at least one scenario file")
        return 2
    specs = [
        scenario_spec(
            Path(path).read_text(),
            name=Path(path).stem,
            treatment=args.treatment,
            vm=args.vm,
        )
        for path in paths
    ]
    for path, run in zip(paths, executor.run(specs, build_exhibit)):
        m = run.value.metrics
        print(f"{path}: horizon {m.horizon} ns")
        for name, tm in m.per_task.items():
            print(
                f"  {name}: jobs={tm.jobs} completed={tm.completed} "
                f"stopped={tm.stopped} misses={tm.deadline_misses} "
                f"detected={tm.faults_detected}"
            )
        print(f"  failed: {m.failed_tasks or 'none'}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
