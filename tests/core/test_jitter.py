"""Unit tests for jitter-aware response-time analysis."""

import pytest

from repro.core.feasibility import response_time_constrained
from repro.core.jitter import (
    analyze_with_jitter,
    detector_offsets_with_jitter,
    is_feasible_with_jitter,
    max_tolerable_jitter,
    response_time_with_jitter,
)
from repro.core.task import Task, TaskSet
from repro.units import ms


class TestZeroJitter:
    def test_matches_plain_rta(self, table2):
        for t in table2:
            assert response_time_with_jitter(t, table2, {}) == response_time_constrained(t, table2)

    def test_analyze(self, table2):
        assert analyze_with_jitter(table2, {}) == {
            "tau1": ms(29),
            "tau2": ms(58),
            "tau3": ms(87),
        }


class TestWithJitter:
    def test_own_jitter_adds_directly(self, table2):
        r = response_time_with_jitter(table2["tau1"], table2, {"tau1": ms(3)})
        assert r == ms(32)

    def test_hp_jitter_densifies_interference(self):
        ts = TaskSet(
            [
                Task("hi", cost=4, period=10, priority=2),
                Task("lo", cost=5, period=30, deadline=30, priority=1),
            ]
        )
        base = response_time_with_jitter(ts["lo"], ts, {})
        # lo: 5 + 4 = 9 without jitter (one hi activation in 9).
        assert base == 9
        # 2 units of hi jitter pull a second activation into the window:
        # w = 5 + 2*4 = 13.
        jittered = response_time_with_jitter(ts["lo"], ts, {"hi": 2})
        assert jittered == 13

    def test_monotone_in_jitter(self, table2):
        prev = 0
        for j in (0, 1, 2, 5, 10):
            r = response_time_with_jitter(
                table2["tau3"], table2, {n: ms(j) for n in ("tau1", "tau2", "tau3")}
            )
            assert r >= prev
            prev = r

    def test_full_utilization_converges_with_shifted_fixed_point(self):
        # At U = 1 the jitter only shifts the fixed point; the analysis
        # still converges (w = 110 here: 5 + ceil(210/10)*5).
        ts = TaskSet(
            [
                Task("hi", cost=5, period=10, priority=2),
                Task("lo", cost=5, period=10, priority=1),
            ]
        )
        assert response_time_with_jitter(ts["lo"], ts, {"hi": 100}) == 110

    def test_divergence_returns_none(self):
        ts = TaskSet(
            [
                Task("hi", cost=10, period=10, priority=2),
                Task("lo", cost=5, period=10, priority=1),
            ]
        )
        # The higher-priority task saturates the CPU: lo's recurrence
        # never closes and the analysis reports None.
        assert response_time_with_jitter(ts["lo"], ts, {}) is None

    def test_requires_constrained(self):
        ts = TaskSet([Task("t", cost=1, period=10, deadline=25, priority=1)])
        with pytest.raises(ValueError):
            response_time_with_jitter(ts["t"], ts, {})

    def test_validation(self, table2):
        with pytest.raises(KeyError):
            response_time_with_jitter(table2["tau1"], table2, {"ghost": 1})
        with pytest.raises(ValueError):
            response_time_with_jitter(table2["tau1"], table2, {"tau1": -1})


class TestFeasibilityAndDetectors:
    def test_feasible_under_small_jitter(self, table2):
        assert is_feasible_with_jitter(table2, {n: ms(5) for n in ("tau1", "tau2", "tau3")})

    def test_infeasible_under_large_jitter(self, table2):
        assert not is_feasible_with_jitter(
            table2, {n: ms(50) for n in ("tau1", "tau2", "tau3")}
        )

    def test_detector_offsets_grow_with_jitter(self, table2):
        plain = detector_offsets_with_jitter(table2, {})
        jittery = detector_offsets_with_jitter(
            table2, {n: ms(2) for n in ("tau1", "tau2", "tau3")}
        )
        for name in plain:
            assert jittery[name] > plain[name]

    def test_detector_offsets_raise_when_unschedulable(self, table2):
        with pytest.raises(ValueError):
            detector_offsets_with_jitter(
                TaskSet(
                    [
                        Task("a", cost=5, period=10, priority=2),
                        Task("b", cost=5, period=10, priority=1),
                    ]
                ),
                {"a": 1_000_000},
            )


class TestMaxTolerableJitter:
    def test_paper_system(self, table2):
        j = max_tolerable_jitter(table2)
        assert j > 0
        uniform = {n: j for n in ("tau1", "tau2", "tau3")}
        assert is_feasible_with_jitter(table2, uniform)
        assert not is_feasible_with_jitter(
            table2, {n: j + 1 for n in ("tau1", "tau2", "tau3")}
        )

    def test_infeasible_base_rejected(self):
        ts = TaskSet(
            [
                Task("a", cost=5, period=10, priority=2),
                Task("b", cost=6, period=10, priority=1),
            ]
        )
        with pytest.raises(ValueError):
            max_tolerable_jitter(ts)
