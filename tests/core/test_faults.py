"""Unit tests for the fault models (paper §3)."""

import pytest

from repro.core.faults import (
    CostOverrun,
    CostUnderrun,
    FaultInjector,
    NoFaults,
    RandomFaults,
)


class TestNoFaults:
    def test_identity(self):
        model = NoFaults()
        assert model.demand("t", 0, 100) == 100
        assert model.demand("t", 99, 7) == 7


class TestDeviationValidation:
    def test_overrun_positive(self):
        with pytest.raises(ValueError):
            CostOverrun("t", 0, 0)
        with pytest.raises(ValueError):
            CostOverrun("t", 0, -5)

    def test_underrun_positive(self):
        with pytest.raises(ValueError):
            CostUnderrun("t", 0, 0)

    def test_job_nonnegative(self):
        with pytest.raises(ValueError):
            CostOverrun("t", -1, 5)
        with pytest.raises(ValueError):
            CostUnderrun("t", -1, 5)


class TestFaultInjector:
    def test_targets_only_named_job(self):
        inj = FaultInjector([CostOverrun("a", 2, 10)])
        assert inj.demand("a", 2, 100) == 110
        assert inj.demand("a", 1, 100) == 100
        assert inj.demand("b", 2, 100) == 100

    def test_underrun(self):
        inj = FaultInjector([CostUnderrun("a", 0, 30)])
        assert inj.demand("a", 0, 100) == 70

    def test_accumulation(self):
        inj = FaultInjector([CostOverrun("a", 0, 10), CostOverrun("a", 0, 5)])
        assert inj.demand("a", 0, 100) == 115

    def test_floor_at_one(self):
        inj = FaultInjector([CostUnderrun("a", 0, 1000)])
        assert inj.demand("a", 0, 100) == 1

    def test_add_after_construction(self):
        inj = FaultInjector()
        inj.add(CostOverrun("a", 3, 7))
        assert inj.demand("a", 3, 10) == 17

    def test_deviations_copy(self):
        inj = FaultInjector([CostOverrun("a", 0, 10)])
        devs = inj.deviations
        devs[("a", 0)] = 999
        assert inj.demand("a", 0, 100) == 110


class TestRandomFaults:
    def test_deterministic_for_seed(self):
        a = RandomFaults(rate=0.5, max_extra=100, seed=42)
        b = RandomFaults(rate=0.5, max_extra=100, seed=42)
        demands_a = [a.demand("t", i, 50) for i in range(50)]
        demands_b = [b.demand("t", i, 50) for i in range(50)]
        assert demands_a == demands_b

    def test_repeated_queries_stable(self):
        model = RandomFaults(rate=1.0, max_extra=100, seed=1)
        first = model.demand("t", 3, 50)
        assert model.demand("t", 3, 50) == first

    def test_rate_zero_never_faults(self):
        model = RandomFaults(rate=0.0, max_extra=100, seed=1)
        assert all(model.demand("t", i, 50) == 50 for i in range(100))

    def test_rate_one_always_faults(self):
        model = RandomFaults(rate=1.0, max_extra=100, seed=1)
        assert all(model.demand("t", i, 50) > 50 for i in range(100))

    def test_extra_bounded(self):
        model = RandomFaults(rate=1.0, max_extra=10, seed=3)
        assert all(50 < model.demand("t", i, 50) <= 60 for i in range(100))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomFaults(rate=1.5, max_extra=10)
        with pytest.raises(ValueError):
            RandomFaults(rate=0.5, max_extra=0)
