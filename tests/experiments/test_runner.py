"""Unit tests for the scenario runner."""

from repro.core.treatments import TreatmentKind
from repro.experiments.runner import run_scenario
from repro.units import ms
from repro.workloads.parser import parse_scenario

PAPER_FILE = """
@unit ms
@horizon 1600
@treatment immediate-stop
task tau1 priority=20 cost=29 period=200  deadline=70
task tau2 priority=18 cost=29 period=250  deadline=120
task tau3 priority=16 cost=29 period=1500 deadline=120 offset=1000
fault tau1 job=5 extra=40
"""


class TestRunScenario:
    def test_uses_scenario_treatment(self):
        outcome = run_scenario(parse_scenario(PAPER_FILE))
        assert outcome.metrics.per_task["tau1"].stopped == 1
        assert outcome.metrics.collateral_failures == []

    def test_treatment_override(self):
        outcome = run_scenario(
            parse_scenario(PAPER_FILE), treatment=TreatmentKind.NO_DETECTION
        )
        assert outcome.metrics.per_task["tau1"].stopped == 0
        assert outcome.metrics.per_task["tau3"].deadline_misses == 1

    def test_default_horizon_when_unspecified(self):
        sc = parse_scenario("task a priority=1 cost=1 period=4")
        outcome = run_scenario(sc)
        assert outcome.result.horizon == ms(4)

    def test_result_and_metrics_consistent(self):
        outcome = run_scenario(parse_scenario(PAPER_FILE))
        assert outcome.metrics.busy_time == outcome.result.busy_time
