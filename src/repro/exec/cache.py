"""Content-addressed on-disk result cache.

Executed specs are cached under ``.repro-cache/`` keyed by
``<spec-hash>-<code-version>``:

* the **spec hash** (:meth:`ExperimentSpec.spec_hash`) covers the whole
  declarative configuration, so any change to a scenario, horizon,
  fault, treatment, VM profile or seed produces a new key;
* the **code version** is a stable hash over the source bytes of the
  ``repro`` package, so editing the simulator or analysis invalidates
  every cached result at once — a stale exhibit can never be served
  after a code change.

Entries are pickled exhibit results.  Unreadable entries count as
misses (and are overwritten on the next store), so a corrupted or
version-skewed cache degrades to recomputation, never to wrong data.
Eviction is least-recently-used by file mtime when ``max_entries`` is
set; :attr:`ResultCache.stats` reports hits/misses/stores/evictions for
the executor summary and the run manifest.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.exec.spec import ExperimentSpec
from repro.rng import stable_hash

__all__ = ["DEFAULT_CACHE_DIR", "CacheStats", "ResultCache", "code_version"]

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: str | None = None


def code_version() -> str:
    """A stable fingerprint of the installed ``repro`` source tree.

    Computed once per process: CRC-32 of every ``*.py`` file under the
    package root, crushed with :func:`repro.rng.stable_hash` so the
    value is identical across processes and platforms.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = [
            (p.relative_to(root).as_posix(), zlib.crc32(p.read_bytes()))
            for p in sorted(root.rglob("*.py"))
        ]
        _code_version = f"{stable_hash(digest):08x}"
    return _code_version


@dataclass
class CacheStats:
    """Counters the executor reports and the manifest records."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Pickle store keyed by spec hash + code version."""

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        *,
        max_entries: int | None = None,
        version: str | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def key(self, spec: ExperimentSpec) -> str:
        return f"{spec.spec_hash()}-{self.version}"

    def path(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{self.key(spec)}.pkl"

    def get(self, spec: ExperimentSpec) -> object | None:
        """The cached result for *spec*, or None on a miss."""
        path = self.path(spec)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.stats.misses += 1
            return None
        path.touch()  # refresh LRU recency
        self.stats.hits += 1
        return value

    def put(self, spec: ExperimentSpec, value: object) -> None:
        """Store *value* for *spec* (atomic write), then evict LRU
        entries beyond ``max_entries``."""
        path = self.path(spec)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        self.stats.stores += 1
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        entries = sorted(
            self.root.glob("*.pkl"), key=lambda p: (p.stat().st_mtime, p.name)
        )
        while len(entries) > self.max_entries:
            victim = entries.pop(0)
            victim.unlink(missing_ok=True)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
