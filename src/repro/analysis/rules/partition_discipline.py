"""RT009 — cross-processor task moves go through ``partition.py`` APIs.

The partitioned-multiprocessor subsystem (DESIGN.md §3.6) has exactly
one mutation authority for task-to-processor assignment: the
:class:`~repro.core.partition.Partitioner` (``admit`` / ``remove`` /
``reassign``), which re-checks per-processor feasibility on every move.
Code that pokes the partitioner's private state (``_assignment``,
``_subsets``, ``_contexts``) or writes into a snapshot's ``assignment``
mapping bypasses those admission checks, so the per-partition treatment
plans and analysis contexts silently go stale.

The shard-level migration mechanics — ``detach_task`` / ``adopt_task``
on a simulation shard — are equally reserved: only the shared-clock
driver in ``repro/sim/mp.py`` may call them, and it does so strictly
after :meth:`~repro.core.partition.Partitioner.reassign` has approved
the move.  ``repro/core/partition.py`` itself is exempt (it *is* the
authority).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import Rule, register

__all__ = ["PartitionDiscipline"]

#: Partitioner-private assignment state; touching it outside the
#: authority module bypasses admission checks.
_PRIVATE = frozenset({"_assignment", "_subsets", "_contexts"})

#: Shard-level migration mechanics reserved for the shared-clock driver.
_SHARD_MOVES = frozenset({"detach_task", "adopt_task"})

_HINT = (
    "move tasks through the Partitioner API (admit / remove / reassign) "
    "in repro.core.partition — it re-checks per-processor feasibility "
    "on every mutation; direct state pokes leave plans and contexts stale"
)


def _posix(path: str) -> str:
    return Path(path).as_posix()


def _is_authority(path: str) -> bool:
    return _posix(path).endswith("repro/core/partition.py")


def _is_mp_driver(path: str) -> bool:
    return _posix(path).endswith("repro/sim/mp.py")


@register
class PartitionDiscipline(Rule):
    """RT009: cross-processor assignment mutated outside ``partition.py``."""

    code = "RT009"
    name = "partition-discipline"
    description = (
        "Task-to-processor assignment may only change through the "
        "Partitioner APIs in repro.core.partition; private partition "
        "state and shard migration mechanics are off limits elsewhere."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._authority = _is_authority(ctx.path)
        self._mp_driver = _is_mp_driver(ctx.path)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._authority and node.attr in _PRIVATE:
            self.report(
                node,
                f"access to partitioner-private state .{node.attr} "
                f"outside repro.core.partition",
                hint=_HINT,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            not self._authority
            and not self._mp_driver
            and isinstance(func, ast.Attribute)
            and func.attr in _SHARD_MOVES
        ):
            self.report(
                node,
                f"shard migration mechanic .{func.attr}() called outside "
                f"the repro.sim.mp shared-clock driver",
                hint=_HINT,
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_snapshot_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_snapshot_write(node.target, node)
        self.generic_visit(node)

    def _check_snapshot_write(self, target: ast.AST, node: ast.AST) -> None:
        """Flag ``something.assignment[task] = processor`` — writing into
        a :class:`PartitionResult` snapshot (read-only at runtime, but
        the lint catches it before the traceback does)."""
        if self._authority:
            return
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "assignment"
        ):
            self.report(
                node,
                "write into a partition snapshot's .assignment mapping",
                hint=_HINT,
            )
