"""Ambient observability configuration.

The experiments CLI cannot thread ``trace_out=``/``profiler=`` through
every spec builder (builders take exactly one :class:`ExperimentSpec`,
and widening that contract would push host-side concerns into the
declarative layer and its content hashes).  Instead the CLI *activates*
an :class:`ObsConfig` for the duration of a run, and the exec bridge
(:func:`repro.exec.sim.run_simulation`) — the one sanctioned door to
the simulator — attaches the configured sink, metrics observer and
profiler to every simulation that flows through it.

The config is deliberately process-local state, not a contextvar: the
CLI is single-threaded, and :class:`~repro.exec.executor.PoolExecutor`
workers intentionally do *not* inherit it (trace capture forces a
serial run; see the CLI's handling of ``--trace-out`` + ``--jobs``).
Nothing here affects simulation results — observability is strictly
read-only on the event stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.metrics import MetricsObserver
    from repro.obs.profiler import EngineProfiler
    from repro.sim.trace import TraceSink

__all__ = ["ObsConfig", "activate", "current"]


@dataclass
class ObsConfig:
    """What to attach to every simulation run through the exec bridge."""

    sink: "TraceSink | None" = None
    metrics: "MetricsObserver | None" = None
    profiler: "EngineProfiler | None" = None

    def trace_sinks(self) -> list["TraceSink"]:
        """The sinks (file sink and/or metrics observer) to tee."""
        return [s for s in (self.sink, self.metrics) if s is not None]


_active: ObsConfig | None = None


def current() -> ObsConfig | None:
    """The active config, or None when observability is off."""
    return _active


@contextmanager
def activate(config: ObsConfig) -> Iterator[ObsConfig]:
    """Activate *config* for the duration of the ``with`` block."""
    global _active
    previous = _active
    _active = config
    try:
        yield config
    finally:
        _active = previous
