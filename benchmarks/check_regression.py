"""CI benchmark regression guard.

Compares a freshly-written ``BENCH_results.json`` against the committed
baseline and fails when any benchmark's ``events_per_s`` dropped by
more than the threshold (default 20%).  Only entries present in *both*
files are compared — new benchmarks are allowed in without a baseline,
and removed ones stop being checked.  Wall-time-only entries (no
``events_per_s``) are skipped: wall seconds for sub-millisecond
analysis benchmarks are too noisy on shared CI runners to gate on.

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT [--threshold 0.2]

The threshold is a fraction (0.2 = fail below 80% of baseline) and can
also be set via the ``BENCH_REGRESSION_THRESHOLD`` environment variable
(the flag wins).  Exit status: 0 clean, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

__all__ = ["compare", "main"]


def _load(path: Path) -> dict[str, dict]:
    data = json.loads(path.read_text())
    benches = data.get("benchmarks", {})
    if not isinstance(benches, dict):
        raise ValueError(f"{path}: 'benchmarks' must be an object")
    return benches


def compare(
    baseline: dict[str, dict], current: dict[str, dict], threshold: float
) -> list[str]:
    """Regression messages for every common entry whose ``events_per_s``
    fell below ``baseline * (1 - threshold)``.  Empty list = clean."""
    problems: list[str] = []
    for name in sorted(baseline.keys() & current.keys()):
        base_eps = baseline[name].get("events_per_s")
        cur_eps = current[name].get("events_per_s")
        if not base_eps or not cur_eps:
            continue  # wall-time-only entries are informational
        floor = base_eps * (1.0 - threshold)
        if cur_eps < floor:
            problems.append(
                f"{name}: {cur_eps:,.0f} events/s < "
                f"{floor:,.0f} (baseline {base_eps:,.0f}, "
                f"-{(1 - cur_eps / base_eps) * 100:.1f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_results.json")
    parser.add_argument("current", type=Path, help="freshly generated results")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed fractional drop (default 0.2, or "
        "$BENCH_REGRESSION_THRESHOLD)",
    )
    args = parser.parse_args(argv)
    threshold = args.threshold
    if threshold is None:
        threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.2"))
    if not 0 <= threshold < 1:
        print(f"threshold must be in [0, 1), got {threshold}", file=sys.stderr)
        return 2
    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read results: {exc}", file=sys.stderr)
        return 2
    problems = compare(baseline, current, threshold)
    compared = sum(
        1
        for name in baseline.keys() & current.keys()
        if baseline[name].get("events_per_s") and current[name].get("events_per_s")
    )
    if problems:
        print(f"benchmark regression ({len(problems)} of {compared} gated):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"benchmarks OK ({compared} gated entries within {threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
