"""Ablations for the remaining §7/extension capabilities.

* precedence chains: simulated end-to-end latency vs the holistic bound;
* jitter: detector offsets vs platform release jitter;
* sensitivity: additive (paper) vs multiplicative slack;
* detector overhead: the §6.2 "more tasks, more sensors" remark.
"""

from repro.core.jitter import detector_offsets_with_jitter, max_tolerable_jitter
from repro.core.precedence import PrecedenceGraph, end_to_end_bound
from repro.core.sensitivity import compare_slack
from repro.core.task import Task, TaskSet
from repro.experiments.ablations import detector_overhead_sweep
from repro.sim.chains import end_to_end_latencies, simulate_chains
from repro.units import ms
from repro.workloads.scenarios import paper_table2


def chain_graph() -> PrecedenceGraph:
    ts = TaskSet(
        [
            Task("clock", cost=1, period=10, priority=20),
            Task("sense", cost=2, period=40, priority=9),
            Task("compute", cost=6, period=40, priority=8),
            Task("act", cost=2, period=40, priority=7),
        ]
    )
    return PrecedenceGraph(ts, [("sense", "compute"), ("compute", "act")])


CHAIN = ["sense", "compute", "act"]


def test_chain_latency_within_holistic_bound(benchmark):
    g = chain_graph()

    def run():
        res = simulate_chains(g, horizon=800)
        return end_to_end_latencies(res, g, CHAIN)

    latencies = benchmark(run)
    bound = end_to_end_bound(g, CHAIN)
    assert latencies
    assert max(latencies.values()) <= bound


def test_jitter_tolerance_of_paper_system(benchmark):
    ts = paper_table2()
    j = benchmark(max_tolerable_jitter, ts)
    # The paper's system absorbs a platform release jitter far above
    # the 10 ms timer coarseness it was measured with.
    assert j >= ms(10)


def test_jitter_aware_detector_offsets(benchmark):
    ts = paper_table2()
    jitter = {n: ms(2) for n in ("tau1", "tau2", "tau3")}
    offsets = benchmark(detector_offsets_with_jitter, ts, jitter)
    # Jittery platforms need later detectors than the nominal WCRTs.
    assert offsets["tau1"] > ms(29)
    assert offsets["tau3"] > ms(87)


def test_additive_vs_multiplicative_slack(benchmark):
    ts = paper_table2()
    cmp = benchmark(compare_slack, ts)
    assert cmp.additive_allowance == ms(11)
    # Equal costs: the multiplicative policy grants every task the same
    # tolerance too, and at least the additive one.
    tol = {n: cmp.multiplicative_tolerance(n) for n in ("tau1", "tau2", "tau3")}
    assert len(set(tol.values())) == 1
    # ... up to the 1-ppm granularity of the scaling search (29 us on
    # a 29 ms cost).
    assert tol["tau1"] >= cmp.additive_allowance - 30_000


def test_detector_overhead_scales_with_tasks(benchmark):
    points = benchmark(detector_overhead_sweep, (2, 5, 8), fire_cost=2_000)
    fires = [p.detector_fires for p in points]
    stolen = [p.stolen_cpu for p in points]
    assert fires == sorted(fires)
    assert stolen == sorted(stolen)
