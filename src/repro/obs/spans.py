"""Host-side spans for the execution layer.

The exec layer (PR 2) computes cache and timing information and drops
most of it on the floor.  A :class:`SpanRecorder` captures the missing
structure as begin/end wall-clock spans — ``executor.run`` around a
batch, one ``spec:<name>`` span per computed exhibit, ``cache:<name>``
around each cache lookup — which surface in three places:

* the ``telemetry`` section of ``manifest.json`` (volatile-stripped
  from the fingerprint, so reproducibility is untouched);
* the trace file: spans convert to SPAN :class:`~repro.sim.trace.TraceEvent`
  records (time = offset from the recorder's origin, ``info`` =
  duration), so even analysis-only exhibits produce a non-empty,
  chrome-convertible trace;
* ``metrics.json``: per-spec wall-time and queue-wait numbers.

Spans measure *host* time (``perf_counter_ns``) — run metadata in the
same sanctioned sense as the executor's existing ``wall_s`` fields,
never simulated time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.sim.trace import EventKind, TraceEvent

__all__ = ["Span", "SpanRecorder"]


def _now_ns() -> int:
    return time.perf_counter_ns()  # noqa: RT002 - host-side span metadata, not simulated time


@dataclass(frozen=True)
class Span:
    """One completed host-side interval."""

    name: str
    category: str
    start_ns: int  # offset from the recorder's origin
    dur_ns: int
    attrs: tuple[tuple[str, str], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def to_trace_event(self) -> TraceEvent:
        """SPAN trace-event encoding (``task`` = ``category:name``,
        ``info`` = duration) — losslessly JSONL-serialisable alongside
        simulator events."""
        return TraceEvent(
            time=self.start_ns,
            kind=EventKind.SPAN,
            task=f"{self.category}:{self.name}",
            info=self.dur_ns,
        )


class SpanRecorder:
    """Collects spans relative to a fixed origin (its creation time)."""

    def __init__(self) -> None:
        self.origin_ns = _now_ns()
        self.spans: list[Span] = []

    def now_ns(self) -> int:
        """Host time as an offset from the recorder's origin."""
        return _now_ns() - self.origin_ns

    @contextmanager
    def span(self, name: str, category: str = "exec", **attrs: str) -> Iterator[None]:
        start = self.now_ns()
        try:
            yield
        finally:
            self.record(name, category, start, self.now_ns() - start, **attrs)

    def record(
        self, name: str, category: str, start_ns: int, dur_ns: int, **attrs: str
    ) -> Span:
        """Add an already-measured span (offsets relative to the
        recorder origin; clamped to be non-negative)."""
        span = Span(
            name=name,
            category=category,
            start_ns=max(0, start_ns),
            dur_ns=max(0, dur_ns),
            attrs=tuple(sorted(attrs.items())),
        )
        self.spans.append(span)
        return span

    def as_dicts(self) -> list[dict[str, Any]]:
        return [s.as_dict() for s in sorted(self.spans, key=lambda s: s.start_ns)]

    def to_trace_events(self) -> list[TraceEvent]:
        return [s.to_trace_event() for s in sorted(self.spans, key=lambda s: s.start_ns)]

    def __len__(self) -> int:
        return len(self.spans)
