"""Shared-resource protocols in the simulator — runtime counterpart of
:mod:`repro.core.blocking` (§7 future work).

Jobs declare critical sections as execution-progress windows: a job
acquires *resource* once it has executed *start* ns and releases it
once it has executed ``start + duration`` ns (faults — overruns — are
assumed to happen outside critical sections, matching the analysis
assumption in ``core.blocking``; an overrunning job still releases at
the same progress point).

Two classic uniprocessor protocols are implemented:

* **PIP** (priority inheritance): a job that finds the resource held
  blocks; the holder inherits the blocked job's effective priority,
  transitively along the blocking chain, until it releases.
* **ICPP** (immediate ceiling priority protocol, the practical form of
  the priority *ceiling* protocol): a job's priority is raised to the
  resource ceiling for the whole critical section.  On one processor
  this makes blocking-at-acquire impossible; the blocking shows up as a
  delayed start, and the PCP bound of ``core.blocking`` applies.

A job that ends while holding locks (stopped by a treatment, or an
overrun modelled as ending inside a section) releases everything — the
pragmatic choice the paper's polled-stop mechanism would need; the
safety implications are discussed in ``core.blocking``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.blocking import CriticalSection
from repro.core.task import TaskSet
from repro.sim.jobs import Job, JobState
from repro.sim.trace import EventKind, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.processor import Processor

__all__ = ["LockProtocol", "SectionSpec", "LockManager"]


class LockProtocol(enum.Enum):
    PIP = "pip"
    ICPP = "icpp"


@dataclass(frozen=True)
class SectionSpec:
    """A critical section as an execution-progress window.

    *start* is the executed time at which the job acquires *resource*;
    it holds it for the next *duration* ns of execution.
    """

    task_name: str
    resource: str
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("section start must be >= 0")
        if self.duration <= 0:
            raise ValueError("section duration must be > 0")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def as_analysis_section(self) -> CriticalSection:
        """The :mod:`repro.core.blocking` view (duration only)."""
        return CriticalSection(self.task_name, self.resource, self.duration)


@dataclass
class _ResourceState:
    holder: Job | None = None
    waiters: list[Job] = field(default_factory=list)


class LockManager:
    """Tracks resource ownership and applies the protocol."""

    def __init__(
        self,
        taskset: TaskSet,
        sections: list[SectionSpec],
        *,
        protocol: LockProtocol,
        processor: "Processor",
        trace: Trace,
    ):
        for spec in sections:
            if spec.task_name not in taskset:
                raise ValueError(f"section for unknown task {spec.task_name!r}")
            if spec.end > taskset[spec.task_name].cost:
                raise ValueError(
                    f"{spec.task_name}: section [{spec.start}, {spec.end}) "
                    "exceeds the declared cost"
                )
        self.protocol = protocol
        self.processor = processor
        self.trace = trace
        self.sections = sections
        self._by_task: dict[str, list[SectionSpec]] = {}
        for spec in sections:
            self._by_task.setdefault(spec.task_name, []).append(spec)
        # ICPP ceilings come from the static analysis definition.
        from repro.core.blocking import priority_ceilings

        self.ceilings = priority_ceilings(
            taskset, [s.as_analysis_section() for s in sections]
        )
        self._resources: dict[str, _ResourceState] = {}
        self._held: dict[tuple[str, int], list[str]] = {}
        #: (job key) -> resource the job is currently blocked on.
        self._blocked_on: dict[tuple[str, int], str] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, job: Job) -> None:
        """Install acquire/release hooks on a freshly released job."""
        for spec in self._by_task.get(job.name, ()):
            job.add_progress_hook(spec.start, self._make_acquire(spec))
            job.add_progress_hook(spec.end, self._make_release(spec))

    def on_job_end(self, job: Job) -> None:
        """Release everything the ending job still holds and forget any
        pending block record (stops and truncated overruns)."""
        self._blocked_on.pop(self._key(job), None)
        for resource in list(self._held.get(self._key(job), ())):
            self._release(job, resource)

    def held_by(self, job: Job) -> list[str]:
        return list(self._held.get(self._key(job), ()))

    # -- protocol -------------------------------------------------------------
    def _make_acquire(self, spec: SectionSpec):
        def acquire(job: Job) -> None:
            self._acquire(job, spec.resource)

        return acquire

    def _make_release(self, spec: SectionSpec):
        def release(job: Job) -> None:
            self._release(job, spec.resource)

        return release

    def _state(self, resource: str) -> _ResourceState:
        return self._resources.setdefault(resource, _ResourceState())

    @staticmethod
    def _key(job: Job) -> tuple[str, int]:
        return (job.name, job.index)

    def _acquire(self, job: Job, resource: str) -> None:
        state = self._state(resource)
        if state.holder is None:
            self._grant(job, resource)
            return
        if state.holder is job:
            raise RuntimeError(f"{job.name}: re-acquiring held {resource!r}")
        # Contention.  Under ICPP on a uniprocessor this cannot happen
        # (the holder runs at >= the requester's priority), so reaching
        # here means PIP semantics.
        state.waiters.append(job)
        self._blocked_on[self._key(job)] = resource
        self._inherit(state.holder, job.effective_priority, visited=set())
        # Re-arm the acquire hook: when the job is granted the lock and
        # resumes, its executed time is unchanged, so the grant happens
        # in _grant directly (no hook re-fire needed).
        self.processor.block_running_job(job)

    def _inherit(self, holder: Job, priority: int, visited: set) -> None:
        """PIP: propagate *priority* along the blocking chain."""
        key = self._key(holder)
        if key in visited:
            return
        visited.add(key)
        if priority > holder.boost:
            holder.boost = priority
        # The holder may itself be blocked on another resource: the
        # holder of *that* resource inherits too (transitive chains).
        blocked_on = self._blocked_on.get(key)
        if blocked_on is not None:
            next_holder = self._state(blocked_on).holder
            if next_holder is not None:
                self._inherit(next_holder, priority, visited)
        # A raised priority must be made visible to the ready heap.
        self.processor.notify_priority_change(holder)

    def _grant(self, job: Job, resource: str) -> None:
        state = self._state(resource)
        state.holder = job
        self._held.setdefault(self._key(job), []).append(resource)
        if self.protocol is LockProtocol.ICPP:
            job.boost = max(job.boost, self.ceilings.get(resource, 0))
        self.trace.record(
            self.processor._engine.now, EventKind.LOCK, job.name, job.index
        )

    def _release(self, job: Job, resource: str) -> None:
        state = self._state(resource)
        if state.holder is not job:
            return  # already released (job ended inside the section)
        state.holder = None
        held = self._held.get(self._key(job), [])
        if resource in held:
            held.remove(resource)
        self.trace.record(
            self.processor._engine.now, EventKind.UNLOCK, job.name, job.index
        )
        self._recompute_boost(job)
        # Wake the most eligible waiter, if any.
        state.waiters = [w for w in state.waiters if not w.finished]
        if state.waiters:
            state.waiters.sort(key=lambda w: -w.effective_priority)
            winner = state.waiters.pop(0)
            self._blocked_on.pop(self._key(winner), None)
            self._grant(winner, resource)
            self.processor.unblock(winner)
        self.processor.refresh()

    def _recompute_boost(self, job: Job) -> None:
        """Drop the boost to what the still-held resources justify."""
        boost = 0
        for resource in self._held.get(self._key(job), ()):
            if self.protocol is LockProtocol.ICPP:
                boost = max(boost, self.ceilings.get(resource, 0))
            else:
                for waiter in self._state(resource).waiters:
                    boost = max(boost, waiter.effective_priority)
        job.boost = boost
