"""Hypothesis profiles for the differential oracle suite.

The local default keeps the suite quick; CI exports
``HYPOTHESIS_PROFILE=ci`` for a deeper sweep (more examples, no
per-example deadline).  Both disable the wall-clock deadline: one
example runs a full simulation, whose duration is workload- not
code-dependent.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

_SUPPRESS = [HealthCheck.too_slow, HealthCheck.filter_too_much, HealthCheck.data_too_large]

settings.register_profile(
    "oracle", max_examples=100, deadline=None, suppress_health_check=_SUPPRESS
)
settings.register_profile(
    "ci", max_examples=300, deadline=None, suppress_health_check=_SUPPRESS
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "oracle"))
