"""Unit tests for the preemptive fixed-priority processor."""

from repro.core.task import Task
from repro.sim.engine import Engine
from repro.sim.jobs import Job, JobState
from repro.sim.processor import Processor
from repro.sim.trace import EventKind, Trace


def setup(context_switch=0):
    engine = Engine()
    trace = Trace()
    ended = []
    proc = Processor(
        engine, trace, context_switch=context_switch, on_job_end=ended.append
    )
    return engine, trace, proc, ended


def job(name, priority, demand, release=0, index=0):
    task = Task(name, cost=demand, period=1_000_000, priority=priority)
    return Job(task=task, index=index, release=release, demand=demand)


class TestSingleJob:
    def test_runs_to_completion(self):
        engine, trace, proc, ended = setup()
        j = job("a", 1, 10)
        proc.submit(j)
        engine.run()
        assert j.state is JobState.DONE
        assert j.finished_at == 10
        assert j.executed == 10
        assert [e.kind for e in trace.for_task("a")] == [
            EventKind.START,
            EventKind.COMPLETE,
        ]
        assert ended == [j]

    def test_idle_after_completion(self):
        engine, trace, proc, _ = setup()
        proc.submit(job("a", 1, 10))
        engine.run()
        assert proc.idle()
        assert proc.running is None


class TestPreemption:
    def test_higher_priority_preempts(self):
        engine, trace, proc, _ = setup()
        lo = job("lo", 1, 10)
        hi = job("hi", 9, 4)
        proc.submit(lo)
        engine.schedule(3, lambda: proc.submit(hi))
        engine.run()
        # lo runs [0,3), hi runs [3,7), lo resumes [7,14).
        assert hi.finished_at == 7
        assert lo.finished_at == 14
        assert trace.execution_intervals("lo") == [(0, 3, 0), (7, 14, 0)]
        assert trace.execution_intervals("hi") == [(3, 7, 0)]

    def test_equal_priority_does_not_preempt(self):
        engine, trace, proc, _ = setup()
        first = job("first", 5, 10)
        second = job("second", 5, 5)
        proc.submit(first)
        engine.schedule(2, lambda: proc.submit(second))
        engine.run()
        assert first.finished_at == 10
        assert second.finished_at == 15

    def test_fifo_within_priority(self):
        engine, _, proc, ended = setup()
        a, b, c = job("a", 5, 3), job("b", 5, 3), job("c", 5, 3)
        for j in (a, b, c):
            proc.submit(j)
        engine.run()
        assert [j.name for j in ended] == ["a", "b", "c"]

    def test_nested_preemption(self):
        engine, trace, proc, _ = setup()
        lo, mid, hi = job("lo", 1, 10), job("mid", 5, 10), job("hi", 9, 10)
        proc.submit(lo)
        engine.schedule(2, lambda: proc.submit(mid))
        engine.schedule(4, lambda: proc.submit(hi))
        engine.run()
        assert hi.finished_at == 14
        assert mid.finished_at == 22
        assert lo.finished_at == 30

    def test_busy_time_accounting(self):
        engine, _, proc, _ = setup()
        proc.submit(job("a", 1, 10))
        engine.run()
        # Idle gap, then another job.
        engine.now = 10
        engine.schedule(20, lambda: proc.submit(job("b", 1, 5)))
        engine.run()
        proc.finalize()
        assert proc.busy_time == 15


class TestStops:
    def test_stop_running_job(self):
        engine, trace, proc, _ = setup()
        j = job("a", 1, 100)
        proc.submit(j)
        engine.schedule(30, lambda: proc.stop_job(j))
        engine.run()
        assert j.state is JobState.STOPPED
        assert j.finished_at == 30
        assert j.executed == 30
        assert [e.kind for e in trace.for_task("a")] == [
            EventKind.START,
            EventKind.STOP,
        ]

    def test_stop_with_poll_latency_runs_extra(self):
        engine, _, proc, _ = setup()
        j = job("a", 1, 100)
        proc.submit(j)
        engine.schedule(30, lambda: proc.stop_job(j, 5))
        engine.run()
        assert j.finished_at == 35
        assert j.was_stopped

    def test_stop_noop_when_completing_naturally(self):
        engine, _, proc, _ = setup()
        j = job("a", 1, 40)
        proc.submit(j)
        outcome = []
        engine.schedule(30, lambda: outcome.append(proc.stop_job(j, 15)))
        engine.run()
        assert outcome == [False]
        assert j.state is JobState.DONE
        assert j.finished_at == 40

    def test_stop_preempted_job(self):
        engine, trace, proc, ended = setup()
        lo = job("lo", 1, 50)
        hi = job("hi", 9, 20)
        proc.submit(lo)
        engine.schedule(5, lambda: proc.submit(hi))

        def stop_lo():
            assert lo.state is JobState.READY  # preempted by hi
            assert proc.stop_job(lo)

        engine.schedule(10, stop_lo)
        engine.run()
        assert lo.state is JobState.STOPPED
        assert lo.finished_at == 10
        assert hi.finished_at == 25
        assert {j.name for j in ended} == {"lo", "hi"}

    def test_stop_preempted_job_with_latency_resumes_first(self):
        engine, _, proc, _ = setup()
        lo = job("lo", 1, 50)
        hi = job("hi", 9, 20)
        proc.submit(lo)
        engine.schedule(5, lambda: proc.submit(hi))
        engine.schedule(10, lambda: proc.stop_job(lo, 3))
        engine.run()
        # lo ran 5, was preempted; hi ends at 25; lo resumes and
        # consumes its 3-unit poll latency before stopping.
        assert lo.was_stopped
        assert lo.finished_at == 28

    def test_stop_finished_job_is_noop(self):
        engine, _, proc, _ = setup()
        j = job("a", 1, 10)
        proc.submit(j)
        engine.run()
        assert proc.stop_job(j) is False
        assert j.state is JobState.DONE

    def test_stop_never_started_job(self):
        engine, _, proc, _ = setup()
        lo = job("lo", 1, 50)
        hi = job("hi", 9, 20)
        proc.submit(hi)
        proc.submit(lo)
        engine.schedule(1, lambda: proc.stop_job(lo))
        engine.run()
        assert lo.was_stopped
        assert lo.finished_at == 1
        assert lo.executed == 0
        assert hi.finished_at == 20


class TestContextSwitch:
    def test_resume_charges_overhead(self):
        engine, _, proc, _ = setup(context_switch=2)
        lo = job("lo", 1, 10)
        hi = job("hi", 9, 4)
        proc.submit(lo)
        engine.schedule(3, lambda: proc.submit(hi))
        engine.run()
        # lo pays one context switch on resume: 14 + 2.
        assert hi.finished_at == 7
        assert lo.finished_at == 16

    def test_first_dispatch_free(self):
        engine, _, proc, _ = setup(context_switch=2)
        j = job("a", 1, 10)
        proc.submit(j)
        engine.run()
        assert j.finished_at == 10
