"""Feasibility analysis for fixed-priority preemptive periodic systems.

This module implements the admission-control machinery of the paper's
Section 2:

* the processor **load test** ``U = sum C_i/T_i`` (eq. 1) — ``U > 1``
  means infeasible, otherwise the test is inconclusive;
* the **worst-case response time** computation of Figure 2 — Lehoczky's
  generalisation to arbitrary deadlines [10]: the response time of every
  job ``q`` in the level-i busy period is computed by a fixed-point
  recurrence and the WCRT is the maximum over the jobs, iterating until
  a job ends within its own period;
* :func:`analyze`, producing a full :class:`FeasibilityReport` — this is
  the work the paper delegates to its ``FeasibilityAnalysis`` class from
  the overloaded ``addToFeasibility()`` / ``removeFromFeasibility()``.

The classic constrained-deadline recurrence (Joseph & Pandya / Audsley)
is also provided as :func:`response_time_constrained`; for ``D <= T`` it
agrees with the general algorithm (property-tested).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.task import Task, TaskSet
from repro.core.weakly_hard import MKConstraint

__all__ = [
    "LoadTest",
    "load_test",
    "wc_response_time",
    "response_time_of_job",
    "job_response_times",
    "response_time_constrained",
    "level_busy_period",
    "TaskReport",
    "FeasibilityReport",
    "analyze",
    "is_feasible",
    "weakly_hard_response_time",
    "WeaklyHardTaskReport",
    "WeaklyHardReport",
    "weakly_hard_analyze",
    "is_weakly_hard_feasible",
]

#: Analysis budget: the number of jobs examined inside one level-i busy
#: period.  Any practically-admittable system terminates within a few
#: jobs; the busy period only approaches this many jobs when the level
#: load sits within ~1/budget of exactly 1 *and* the hyperperiod is
#: astronomically large — systems no admission controller would accept.
#: When the budget is exhausted the task is reported unschedulable
#: (conservative), keeping every caller — including the allowance
#: binary searches — safe and fast.
MAX_JOBS_PER_BUSY_PERIOD = 50_000


class LoadTest(enum.Enum):
    """Outcome of the necessary utilization condition (paper §2.1)."""

    INFEASIBLE = "infeasible"  # U > 1: reject immediately
    INCONCLUSIVE = "inconclusive"  # U <= 1: must run the WCRT analysis


def load_test(taskset: TaskSet) -> LoadTest:
    """Apply the paper's load condition (eq. 1) exactly.

    Uses rational arithmetic so that e.g. three tasks of utilization 1/3
    sum to exactly 1 and are *not* rejected.
    """
    num, den = taskset.utilization_exact()
    return LoadTest.INFEASIBLE if num > den else LoadTest.INCONCLUSIVE


def _interference_fixed_point(
    base: int, interferers: Sequence[Task], *, start: int | None = None
) -> int | None:
    """Solve ``R = base + sum_j ceil(R / T_j) * C_j`` by fixed point.

    A fixed point exists iff the interferers' total utilization is
    strictly below 1 (otherwise the right-hand side always exceeds
    ``R``, since ``base > 0``); when it exists it is bounded by
    ``(base + sum C_j) / (1 - U)`` because ``ceil(x) <= x + 1``.  Both
    facts are used: divergence is detected *exactly* (no iteration into
    astronomically slow growth) and convergence is geometric within the
    bound.  Returns ``None`` when no fixed point exists.
    """
    # Exact interference utilization.
    num, den = 0, 1
    total_cost = 0
    for t in interferers:
        num = num * t.period + t.cost * den
        den *= t.period
        total_cost += t.cost
    if num >= den:  # U_hp >= 1: R = base + ... > R for every R
        return None
    # w <= (base + total_cost) * den / (den - num), exactly.
    limit = (base + total_cost) * den // (den - num) + 1
    r = start if start is not None else base
    while True:
        demand = base
        for t in interferers:
            demand += -(-r // t.period) * t.cost  # ceil division
        if demand == r:
            return r
        if demand > limit:  # unreachable by the bound; defensive only
            return None
        r = demand


def response_time_of_job(task: Task, taskset: TaskSet, q: int) -> int | None:
    """Completion time ``R_q`` of job *q* (0-based) of *task*, measured
    from the critical instant, i.e. the inner fixed point of Figure 2.

    The *response time* of the job is ``R_q - q * T_i``.  Returns
    ``None`` when the fixed point diverges (level-i load >= 1 with no
    closure), in which case the task is unschedulable.
    """
    if q < 0:
        raise ValueError("job index must be >= 0")
    hp = taskset.higher_or_equal_priority(task)
    base = task.cost * (q + 1)
    return _interference_fixed_point(base, hp)


def job_response_times(
    task: Task, taskset: TaskSet, max_jobs: int | None = None
) -> list[int]:
    """Response times of successive jobs of *task* in the synchronous
    level-i busy period (the series plotted by the paper's Figure 1).

    Stops at the job that ends within its own period window (the busy
    period closes) or after *max_jobs* entries.
    """
    _check_level_load(task, taskset)
    out: list[int] = []
    cap = max_jobs if max_jobs is not None else MAX_JOBS_PER_BUSY_PERIOD
    for q in range(cap):
        rq = response_time_of_job(task, taskset, q)
        if rq is None:
            break
        out.append(rq - q * task.period)
        if rq <= (q + 1) * task.period:
            break
    return out


def _check_level_load(task: Task, taskset: TaskSet) -> bool:
    """Return True when the level-i busy period is guaranteed to close.

    The level-i load counts *task* and all higher-or-equal priority
    tasks; when it exceeds 1 the busy period never closes and the WCRT
    is unbounded.
    """
    level = [task, *taskset.higher_or_equal_priority(task)]
    num, den = TaskSet(level).utilization_exact() if len(level) > 1 else (
        task.cost,
        task.period,
    )
    return num <= den


def wc_response_time(task: Task, taskset: TaskSet) -> int | None:
    """Worst-case response time of *task* — the paper's Figure 2.

    Iterates over the jobs ``q = 0, 1, 2, ...`` of the synchronous
    level-i busy period.  Job *q*'s completion ``R_q`` solves::

        R_q = (q + 1) * C_i + sum_{j in HP(i)} ceil(R_q / T_j) * C_j

    its response time is ``R_q - q * T_i``, and iteration stops at the
    first job with ``R_q <= (q + 1) * T_i`` (no carry-over into the next
    job).  Returns the maximum response time, or ``None`` when the task
    is unschedulable at its priority level (level-i load > 1 or the
    busy period fails to close within the safety cap).

    Offsets are ignored: the synchronous release pattern is the worst
    case for independent tasks, so the result is valid (conservative)
    for offset task sets too.
    """
    if not _check_level_load(task, taskset):
        return None
    r_max = 0
    for q in range(MAX_JOBS_PER_BUSY_PERIOD):
        rq = response_time_of_job(task, taskset, q)
        if rq is None:
            return None
        r_max = max(r_max, rq - q * task.period)
        if rq <= (q + 1) * task.period:
            return r_max
    return None


def response_time_constrained(task: Task, taskset: TaskSet) -> int | None:
    """Classic RTA for constrained deadlines (first job only).

    Valid when ``D_i <= T_i`` for *task* and all higher-priority tasks:
    the critical-instant first job then dominates.  Provided both as an
    independent oracle for tests and as the cheaper path the admission
    controller uses when the whole system is constrained.
    """
    hp = taskset.higher_or_equal_priority(task)
    return _interference_fixed_point(task.cost, hp)


def level_busy_period(task: Task, taskset: TaskSet) -> int | None:
    """Length of the synchronous level-i busy period for *task*.

    Solves ``L = sum_{j in HP(i) + {i}} ceil(L / T_j) * C_j``.  Returns
    ``None`` when the level-i load exceeds 1 (unbounded busy period).
    """
    if not _check_level_load(task, taskset):
        return None
    level = [task, *taskset.higher_or_equal_priority(task)]
    total_cost = sum(t.cost for t in level)
    # Solve L = sum_j ceil(L / T_j) * C_j starting at the total cost
    # (base 0 would admit the trivial fixed point L = 0).  For level
    # load < 1 convergence is geometric; at exactly 1 the least fixed
    # point can sit at hyperperiod scale, so the iteration is bounded
    # and gives up (None) past the analysis budget.
    r = total_cost
    for _ in range(MAX_JOBS_PER_BUSY_PERIOD):
        demand = sum(-(-r // t.period) * t.cost for t in level)
        if demand == r:
            return r
        r = demand
    return None


# -- weakly-hard (m, K) analysis ---------------------------------------------
#: Hard behaviour for tasks without an (m, K) constraint: (0, 1) —
#: zero misses in every window of one, i.e. every job executes.
_HARD = MKConstraint(0, 1)


def _mk_of(task: Task) -> MKConstraint:
    return task.mk if task.mk is not None else _HARD


def _degraded_cost(task: Task, degraded: Mapping[str, int] | None) -> int:
    """CPU a *skipped-slot* job of *task* still consumes (0 = dropped)."""
    if degraded is None:
        return 0
    cost = degraded.get(task.name, 0)
    if not 0 <= cost <= task.cost:
        raise ValueError(
            f"{task.name}: degraded cost must be in [0, C], got {cost}"
        )
    return cost


def _weakly_hard_fixed_point(
    base: int,
    interferers: Sequence[Task],
    degraded: Mapping[str, int] | None,
) -> int | None:
    """Solve ``R = base + sum_j demand_j(ceil(R / T_j))`` where task j
    contributes ``f_j(n) * C_j + (n - f_j(n)) * Cd_j`` over n releases —
    the deeply-red interference bound (executed jobs front-loaded,
    skipped slots billed at the degraded cost ``Cd_j``, 0 for SKIP_JOB).

    Divergence is detected exactly, mirroring
    :func:`_interference_fixed_point`: the effective per-release cost is
    ``w_j = ((K_j - m_j) C_j + m_j Cd_j) / K_j``, and a fixed point
    exists only when ``sum_j w_j / T_j < 1``; it is then bounded by
    ``(base + sum_j (w_j + (K_j - m_j)(C_j - Cd_j))) / (1 - U_w)``
    because ``f(n) <= (K - m) n / K + (K - m)`` and ``ceil(x) <= x + 1``.
    """
    num, den = 0, 1  # U_w = sum w_j / T_j, exact
    slack_cost = 0  # sum_j (w_j + (K_j - m_j)(C_j - Cd_j)), rounded up
    for t in interferers:
        mk = _mk_of(t)
        cd = _degraded_cost(t, degraded)
        w_num = (mk.k - mk.m) * t.cost + mk.m * cd  # w_j * K_j
        num = num * (mk.k * t.period) + w_num * den
        den *= mk.k * t.period
        g = math.gcd(num, den)
        num //= g
        den //= g
        slack_cost += -(-w_num // mk.k) + (mk.k - mk.m) * (t.cost - cd)
    if num >= den:
        return None
    limit = (base + slack_cost) * den // (den - num) + 1
    r = base
    while True:
        demand = base
        for t in interferers:
            mk = _mk_of(t)
            cd = _degraded_cost(t, degraded)
            n = -(-r // t.period)  # ceil division
            f = mk.max_executed(n)
            demand += f * t.cost + (n - f) * cd
        if demand == r:
            return r
        if demand > limit:  # unreachable by the bound; defensive only
            return None
        r = demand


def weakly_hard_response_time(
    task: Task,
    taskset: TaskSet,
    *,
    degraded: Mapping[str, int] | None = None,
) -> int | None:
    """Worst-case response time of *task* under the deeply-red (m, K)
    skip pattern — the weakly-hard companion of :func:`wc_response_time`.

    Iterates over the *executed* jobs ``q = 0, 1, ...`` of the
    synchronous level-i busy period.  Executed job *q* is released at
    index ``g_i(q)`` (so ``q`` full jobs and ``g_i(q) - q`` skipped
    slots precede it in its own thread) and completes at::

        R_q = (q + 1) * C_i + (g_i(q) - q) * Cd_i
              + sum_{j in HP(i)} f_j(ceil(R_q / T_j)) * C_j
              + (ceil(R_q / T_j) - f_j(...)) * Cd_j

    its response time is ``R_q - g_i(q) * T_i`` and iteration stops at
    the first executed job with ``R_q <= g_i(q + 1) * T_i`` (no
    carry-over into the next executed release).  With no constraints
    anywhere (``f(n) = n``, ``g(q) = q``, ``Cd = 0``) every term reduces
    to the paper's Figure 2 recurrence, so the function degenerates
    *exactly* to :func:`wc_response_time` (property-tested).

    A task with ``m = K`` never executes a full job: its WCRT is 0 and
    it is vacuously feasible (it still interferes through ``Cd``).
    Returns ``None`` when the skip-reduced level load diverges or the
    busy period fails to close within the analysis budget — the same
    conservative verdict as the hard analysis.
    """
    mk = _mk_of(task)
    if mk.unconstrained:
        return 0
    hp = taskset.higher_or_equal_priority(task)
    cd_own = _degraded_cost(task, degraded)
    r_max = 0
    for q in range(MAX_JOBS_PER_BUSY_PERIOD):
        g = mk.executed_release(q)
        base = (q + 1) * task.cost + (g - q) * cd_own
        rq = _weakly_hard_fixed_point(base, hp, degraded)
        if rq is None:
            return None
        r_max = max(r_max, rq - g * task.period)
        if rq <= mk.executed_release(q + 1) * task.period:
            return r_max
    return None


@dataclass(frozen=True)
class WeaklyHardTaskReport:
    """Per-task result of :func:`weakly_hard_analyze`."""

    task: Task
    wcrt: int | None  # max response over *executed* jobs; None = unbounded

    @property
    def feasible(self) -> bool:
        return self.wcrt is not None and self.wcrt <= self.task.deadline


@dataclass(frozen=True)
class WeaklyHardReport:
    """Admission verdict under the deeply-red (m, K) skip pattern.

    ``feasible`` means every task's executed jobs meet their deadlines
    when the planned skip pattern drops the sanctioned slots — the
    admission test of the SKIP_JOB / DEGRADE treatments.  Because
    skipping only removes demand (``f_j(n) <= n``, ``g_i(q) >= q``),
    the verdict is monotone: a hard-feasible set is always weakly-hard
    feasible, never the reverse (property-tested).
    """

    taskset: TaskSet
    per_task: Mapping[str, WeaklyHardTaskReport]
    degraded: Mapping[str, int] | None = None

    @property
    def feasible(self) -> bool:
        return all(r.feasible for r in self.per_task.values())

    def wcrt(self, name: str) -> int | None:
        return self.per_task[name].wcrt


def weakly_hard_analyze(
    taskset: TaskSet, *, degraded: Mapping[str, int] | None = None
) -> WeaklyHardReport:
    """Run the weakly-hard schedulability test on every task."""
    per_task = {
        t.name: WeaklyHardTaskReport(
            t, weakly_hard_response_time(t, taskset, degraded=degraded)
        )
        for t in taskset
    }
    return WeaklyHardReport(taskset=taskset, per_task=per_task, degraded=degraded)


def is_weakly_hard_feasible(
    taskset: TaskSet, *, degraded: Mapping[str, int] | None = None
) -> bool:
    """Convenience wrapper: the weakly-hard admission boolean."""
    return weakly_hard_analyze(taskset, degraded=degraded).feasible


@dataclass(frozen=True)
class TaskReport:
    """Per-task result of :func:`analyze`."""

    task: Task
    wcrt: int | None  # None = unbounded (level load > 1)

    @property
    def feasible(self) -> bool:
        """True when the worst-case response time meets the deadline."""
        return self.wcrt is not None and self.wcrt <= self.task.deadline

    @property
    def slack(self) -> int | None:
        """``D_i - WCRT_i`` (negative when the deadline is missed)."""
        if self.wcrt is None:
            return None
        return self.task.deadline - self.wcrt


@dataclass(frozen=True)
class FeasibilityReport:
    """Full admission-control verdict for a task set.

    ``feasible`` is the paper's admission-control answer: the load test
    did not reject the set and every task's WCRT meets its deadline.
    """

    taskset: TaskSet
    load: LoadTest
    per_task: Mapping[str, TaskReport]

    @property
    def feasible(self) -> bool:
        return self.load is not LoadTest.INFEASIBLE and all(
            r.feasible for r in self.per_task.values()
        )

    def wcrt(self, name: str) -> int | None:
        """Worst-case response time of the named task."""
        return self.per_task[name].wcrt

    def first_infeasible(self) -> Task | None:
        """Lowest-priority task that misses its deadline, if any."""
        for report in reversed(list(self.per_task.values())):
            if not report.feasible:
                return report.task
        return None


def analyze(taskset: TaskSet) -> FeasibilityReport:
    """Run the full admission control of §2 on *taskset*.

    Applies the load test first; when it rejects, per-task WCRTs are
    still computed for the tasks whose *level* load permits it (useful
    diagnostics: only the priority levels at/below the overload are
    unbounded).
    """
    load = load_test(taskset)
    per_task = {t.name: TaskReport(t, wc_response_time(t, taskset)) for t in taskset}
    return FeasibilityReport(taskset=taskset, load=load, per_task=per_task)


def is_feasible(taskset: TaskSet) -> bool:
    """Convenience wrapper: the admission-control boolean."""
    return analyze(taskset).feasible


def assert_feasible(taskset: TaskSet) -> FeasibilityReport:
    """Analyze and raise :class:`ValueError` when the set is infeasible.

    This mirrors the paper's admission control entry point: a system is
    only started when the analysis accepts it.
    """
    report = analyze(taskset)
    if not report.feasible:
        culprit = report.first_infeasible()
        detail = f" ({culprit.name} misses its deadline)" if culprit else ""
        raise ValueError(f"task set rejected by admission control{detail}")
    return report
