"""Unit tests for the RTSJ parameter classes."""

import pytest

from repro.rtsj.params import (
    AperiodicParameters,
    PeriodicParameters,
    PriorityParameters,
    ReleaseParameters,
    SporadicParameters,
)
from repro.rtsj.time import RelativeTime
from repro.units import ms


class TestPriorityParameters:
    def test_get_set(self):
        p = PriorityParameters(20)
        assert p.getPriority() == 20
        p.setPriority(25)
        assert p.getPriority() == 25


class TestReleaseParameters:
    def test_cost_and_deadline_from_relative_time(self):
        rp = ReleaseParameters(RelativeTime(29, 0), RelativeTime(70, 0))
        assert rp.getCost() == ms(29)
        assert rp.getDeadline() == ms(70)

    def test_cost_from_nanos(self):
        rp = ReleaseParameters(12345, 99999)
        assert rp.getCost() == 12345

    def test_setters(self):
        rp = ReleaseParameters()
        assert rp.getCost() is None
        rp.setCost(RelativeTime(5, 0))
        rp.setDeadline(ms(9))
        assert (rp.getCost(), rp.getDeadline()) == (ms(5), ms(9))


class TestPeriodicParameters:
    def test_paper_style_construction(self):
        pp = PeriodicParameters(
            start=RelativeTime(0, 0),
            period=RelativeTime(200, 0),
            cost=RelativeTime(29, 0),
            deadline=RelativeTime(70, 0),
        )
        assert pp.getStart() == 0
        assert pp.getPeriod() == ms(200)
        assert pp.getCost() == ms(29)
        assert pp.getDeadline() == ms(70)

    def test_deadline_defaults_to_period(self):
        pp = PeriodicParameters(period=ms(100), cost=ms(10))
        assert pp.getDeadline() == ms(100)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicParameters(period=0, cost=1)

    def test_set_period(self):
        pp = PeriodicParameters(period=ms(100), cost=ms(10))
        pp.setPeriod(ms(250))
        assert pp.getPeriod() == ms(250)
        with pytest.raises(ValueError):
            pp.setPeriod(0)


class TestSporadicParameters:
    def test_minimum_interarrival(self):
        sp = SporadicParameters(ms(50), cost=ms(5))
        assert sp.getMinimumInterarrival() == ms(50)
        assert sp.getDeadline() == ms(50)  # defaults to MIT

    def test_explicit_deadline(self):
        sp = SporadicParameters(ms(50), cost=ms(5), deadline=ms(20))
        assert sp.getDeadline() == ms(20)

    def test_invalid_mit(self):
        with pytest.raises(ValueError):
            SporadicParameters(0, cost=1)

    def test_is_aperiodic(self):
        assert isinstance(SporadicParameters(ms(10), cost=1), AperiodicParameters)
