"""Semantic task-system validation (``TS0xx`` diagnostics).

The scenario parser (:mod:`repro.workloads.parser`) is strict — a zero
cost raises before a :class:`~repro.core.task.Task` even exists — but a
raised exception points at one problem and stops.  This validator
*diagnoses*: it scans the scenario text leniently, reports every
parameter problem with its ``file:line``, and layers the system-level
checks (utilization, deadline anomalies, priority collisions) the
parser cannot see task-by-task.  In-memory :class:`TaskSet` objects can
be validated too, so generated workloads get the same scrutiny.

Codes
-----
======  ========  ====================================================
TS001   warning   duplicate priorities (FIFO tie-break applies)
TS002   error     zero/negative cost, period, deadline or offset
TS003   error     total utilization exceeds 1 (never feasible, eq. 1)
TS004   warning   deadline exceeds period (arbitrary-deadline analysis)
TS005   error     cost exceeds deadline (job can never meet it)
TS006   error     scenario file does not parse
TS007   warning   utilization above the Liu-Layland bound (exact WCRT
                  test required — the sufficient test is inconclusive)
TS008   warning   fault targets a job released at/after the horizon
======  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.bounds import liu_layland_bound
from repro.core.task import TaskSet
from repro.units import parse_duration
from repro.workloads.parser import (
    ScenarioError,
    _TASK_POSITIONAL,
    _UNITS,
    parse_scenario,
)

__all__ = [
    "validate_taskset",
    "validate_scenario_text",
    "validate_scenario_file",
    "SCENARIO_SUFFIXES",
    "TS_CODES",
]

#: File suffixes treated as scenario files by the CLI.
SCENARIO_SUFFIXES = frozenset({".scn", ".scenario", ".tasks"})

#: Every task-system diagnostic code this module can emit.
TS_CODES = frozenset({f"TS00{i}" for i in range(1, 9)})

_DURATION_FIELDS = ("cost", "period", "deadline", "offset")


@dataclass(frozen=True)
class _RawTask:
    """One ``task`` line as scanned leniently (no validation applied)."""

    name: str
    line: int
    priority: int | None
    durations: dict[str, int]  # parsed duration fields, ns


def validate_taskset(taskset: TaskSet | Iterable, *, path: str = "<taskset>") -> list[Diagnostic]:
    """System-level checks on an already-built task collection."""
    tasks = list(taskset)
    out: list[Diagnostic] = []

    seen_priority: dict[int, str] = {}
    for t in tasks:
        if t.priority in seen_priority:
            out.append(
                Diagnostic(
                    code="TS001",
                    severity=Severity.WARNING,
                    message=f"{t.name} shares priority {t.priority} with "
                    f"{seen_priority[t.priority]}",
                    path=path,
                    hint="give each task a distinct priority; equal "
                    "priorities dispatch FIFO by declaration order",
                )
            )
        else:
            seen_priority[t.priority] = t.name

        if t.deadline > t.period:
            out.append(
                Diagnostic(
                    code="TS004",
                    severity=Severity.WARNING,
                    message=f"{t.name}: deadline {t.deadline} exceeds period "
                    f"{t.period}",
                    path=path,
                    hint="arbitrary deadlines are supported but need the "
                    "Figure-2 multi-job WCRT iteration; confirm this is "
                    "intended",
                )
            )
        if t.cost > t.deadline:
            out.append(
                Diagnostic(
                    code="TS005",
                    severity=Severity.ERROR,
                    message=f"{t.name}: cost {t.cost} exceeds deadline "
                    f"{t.deadline}; no job can ever meet it",
                    path=path,
                    hint="lower the cost or relax the deadline",
                )
            )

    if tasks:
        load = sum(Fraction(t.cost, t.period) for t in tasks)
        if load > 1:
            out.append(
                Diagnostic(
                    code="TS003",
                    severity=Severity.ERROR,
                    message=f"total utilization {float(load):.3f} "
                    f"(= {load.numerator}/{load.denominator}) exceeds 1",
                    path=path,
                    hint="the processor-load necessary condition (paper "
                    "eq. 1) already rules the system infeasible",
                )
            )
        elif float(load) > liu_layland_bound(len(tasks)):
            out.append(
                Diagnostic(
                    code="TS007",
                    severity=Severity.WARNING,
                    message=f"utilization {float(load):.3f} is above the "
                    f"Liu-Layland bound "
                    f"{liu_layland_bound(len(tasks)):.3f} for "
                    f"{len(tasks)} task(s)",
                    path=path,
                    hint="the sufficient test is inconclusive here; the "
                    "exact WCRT analysis (repro.core.feasibility.analyze) "
                    "decides",
                )
            )
    return out


def validate_scenario_text(text: str, *, source: str = "<string>") -> list[Diagnostic]:
    """Diagnose a scenario file: per-line parameter problems first, then
    system-level checks on the parsed result."""
    raw_tasks, scan_diags = _scan_tasks(text, source)
    out = list(scan_diags)

    # Per-line parameter checks the strict parser would die on.
    value_errors = bool(scan_diags)
    for raw in raw_tasks:
        for fname in ("cost", "period", "deadline"):
            value = raw.durations.get(fname)
            if value is not None and value <= 0:
                value_errors = True
                out.append(
                    Diagnostic(
                        code="TS002",
                        severity=Severity.ERROR,
                        message=f"{raw.name}: {fname} must be > 0, got {value}",
                        path=source,
                        line=raw.line,
                        hint="costs, periods and deadlines are strictly "
                        "positive durations",
                    )
                )
        offset = raw.durations.get("offset")
        if offset is not None and offset < 0:
            value_errors = True
            out.append(
                Diagnostic(
                    code="TS002",
                    severity=Severity.ERROR,
                    message=f"{raw.name}: offset must be >= 0, got {offset}",
                    path=source,
                    line=raw.line,
                )
            )

    # Duplicate priorities, located at the second declaration.
    seen: dict[int, _RawTask] = {}
    for raw in raw_tasks:
        if raw.priority is None:
            continue
        if raw.priority in seen:
            out.append(
                Diagnostic(
                    code="TS001",
                    severity=Severity.WARNING,
                    message=f"{raw.name} shares priority {raw.priority} "
                    f"with {seen[raw.priority].name} "
                    f"(line {seen[raw.priority].line})",
                    path=source,
                    line=raw.line,
                    hint="give each task a distinct priority; equal "
                    "priorities dispatch FIFO by declaration order",
                )
            )
        else:
            seen[raw.priority] = raw

    if value_errors:
        # The strict parse below would just re-raise what we already
        # reported with better locations.
        return out

    try:
        scenario = parse_scenario(text, source=source)
    except ScenarioError as exc:
        out.append(
            Diagnostic(
                code="TS006",
                severity=Severity.ERROR,
                message=str(exc),
                path=source,
                hint="see the scenario grammar in repro.workloads.parser",
            )
        )
        return out

    # System-level checks on the parsed set (skip the duplicate-priority
    # pass — the lenient scan already reported it with line numbers).
    out.extend(
        d for d in validate_taskset(scenario.taskset, path=source) if d.code != "TS001"
    )

    horizon = scenario.horizon_or_default()
    for (name, job), _delta in sorted(scenario.faults.deviations.items()):
        release = scenario.taskset[name].release_time(job)
        if release >= horizon:
            out.append(
                Diagnostic(
                    code="TS008",
                    severity=Severity.WARNING,
                    message=f"fault on {name} job {job} is released at "
                    f"{release}, at/after the horizon {horizon}; it is "
                    f"never injected",
                    path=source,
                    hint="extend @horizon or target an earlier job",
                )
            )
    return out


def validate_scenario_file(path: str | Path) -> list[Diagnostic]:
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        return [
            Diagnostic(
                code="TS006",
                severity=Severity.ERROR,
                message=f"cannot read scenario: {exc}",
                path=str(p),
            )
        ]
    return validate_scenario_text(text, source=str(p))


def _scan_tasks(text: str, source: str) -> tuple[list[_RawTask], list[Diagnostic]]:
    """Lenient pass over ``task`` lines: extract names, priorities and
    duration fields without enforcing validity, tracking ``@unit``."""
    unit = _UNITS["ms"]
    tasks: list[_RawTask] = []
    diags: list[Diagnostic] = []
    for lineno, rawline in enumerate(text.splitlines(), start=1):
        line = rawline.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        if words[0] == "@unit" and len(words) > 1 and words[1] in _UNITS:
            unit = _UNITS[words[1]]
            continue
        if words[0] != "task":
            continue
        fields: dict[str, str] = {}
        positional = 0
        for token in words[1:]:
            if "=" in token:
                key, value = token.split("=", 1)
                fields.setdefault(key, value)
            elif positional < len(_TASK_POSITIONAL):
                fields.setdefault(_TASK_POSITIONAL[positional], token)
                positional += 1
        name = fields.get("name", f"<task@{lineno}>")
        try:
            priority: int | None = int(fields["priority"]) if "priority" in fields else None
        except ValueError:
            priority = None
        durations: dict[str, int] = {}
        for fname in _DURATION_FIELDS:
            if fname not in fields:
                continue
            try:
                durations[fname] = parse_duration(fields[fname], unit)
            except ValueError as exc:
                diags.append(
                    Diagnostic(
                        code="TS002",
                        severity=Severity.ERROR,
                        message=f"{name}: bad {fname}: {exc}",
                        path=source,
                        line=lineno,
                    )
                )
        tasks.append(_RawTask(name=name, line=lineno, priority=priority, durations=durations))
    return tasks, diags
