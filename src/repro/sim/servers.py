"""Simulated polling server — runtime counterpart of
:mod:`repro.core.servers`.

A :class:`ServerSimulation` extends the ordinary simulation with one
polling server: at each server release the pending aperiodic requests
(FIFO) are snapshotted, the server job's demand is ``min(capacity,
pending work)`` — zero pending work means the server skips the period
entirely (the defining PS behaviour) — and request completions are
recorded exactly via job progress hooks.  Requests arriving *during* a
serving period wait for the next poll, again per the PS definition.

The server can carry a fault detector like any task (its analysis view
is the periodic task ``(C_s, T_s)``), so the paper's detection and
treatment machinery extends to aperiodic load unchanged — the §7
"faults detection and tolerance in the case of aperiodic tasks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.faults import FaultModel
from repro.core.servers import ServerSpec, polling_server_taskset
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentPlan
from repro.sim.engine import Rank
from repro.sim.jobs import Job
from repro.sim.simulation import SimResult, Simulation
from repro.sim.trace import EventKind
from repro.sim.vm import EXACT_VM, VMProfile

__all__ = [
    "AperiodicRequest",
    "ServerSimulation",
    "simulate_with_server",
    "DeferrableServerSimulation",
    "simulate_with_deferrable_server",
]


@dataclass
class AperiodicRequest:
    """One aperiodic request: *demand* ns of work arriving at *arrival*."""

    name: str
    arrival: int
    demand: int
    remaining: int = field(init=False)
    completed_at: int | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.demand <= 0:
            raise ValueError("demand must be > 0")
        self.remaining = self.demand

    @property
    def response_time(self) -> int | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival


class ServerSimulation(Simulation):
    """A simulation hosting one polling server."""

    def __init__(
        self,
        taskset: TaskSet,
        server: ServerSpec,
        requests: Sequence[AperiodicRequest],
        *,
        horizon: int,
        faults: FaultModel | None = None,
        plan: TreatmentPlan | None = None,
        vm: VMProfile = EXACT_VM,
    ):
        self.server = server
        self.requests = sorted(requests, key=lambda r: r.arrival)
        names = {r.name for r in self.requests}
        if len(names) != len(self.requests):
            raise ValueError("request names must be unique")
        full = polling_server_taskset(taskset, server)
        super().__init__(full, horizon=horizon, faults=faults, plan=plan, vm=vm)

    # -- server release override ---------------------------------------------------
    def _make_release(self, task: Task, index: int):
        if task.name != self.server.name:
            return super()._make_release(task, index)

        def release() -> None:
            now = self.engine.now
            window = [
                r for r in self.requests if r.arrival <= now and r.remaining > 0
            ]
            pending = sum(r.remaining for r in window)
            if pending == 0:
                return  # polling server: empty queue, budget dropped
            # The fault model applies to the server too: a runaway
            # aperiodic handler is a cost overrun of the server job.
            demand = self.faults.demand(
                task.name, index, min(self.server.capacity, pending)
            )
            job = Job(task=task, index=index, release=now, demand=demand)
            self.jobs[(task.name, index)] = job
            self.trace.record(now, EventKind.RELEASE, task.name, index)
            deadline = job.absolute_deadline
            if deadline <= self.horizon:
                self.engine.schedule(
                    deadline, self._make_deadline_check(job), Rank.DEADLINE_CHECK
                )
            self._install_request_hooks(job, window)
            if self._active[task.name] is None:
                self._activate(job)
            else:
                self._backlog[task.name].append(job)

        return release

    def _install_request_hooks(self, job: Job, window: list[AperiodicRequest]) -> None:
        """Mark each fully-served request's completion instant, and do
        the FIFO budget accounting when the job ends."""
        cumulative = 0
        for req in window:
            take = min(req.remaining, job.demand - cumulative)
            if take <= 0:
                break
            cumulative += take
            if take == req.remaining:
                job.add_progress_hook(cumulative, self._make_completion(req))

        def settle(ended: Job) -> None:
            left = ended.executed
            for req in window:
                if left <= 0:
                    break
                take = min(req.remaining, left)
                req.remaining -= take
                left -= take

        self.job_end_hooks.setdefault(job.name, []).append(
            lambda ended, settle=settle, target=job: settle(ended)
            if ended is target
            else None
        )

    def _make_completion(self, req: AperiodicRequest):
        def hook(job: Job) -> None:
            if req.completed_at is None:
                req.completed_at = self.engine.now

        return hook

    def run(self) -> SimResult:  # noqa: D102 - inherits behaviour
        result = super().run()
        return result


def simulate_with_server(
    taskset: TaskSet,
    server: ServerSpec,
    requests: Sequence[AperiodicRequest],
    *,
    horizon: int,
    faults: FaultModel | None = None,
    plan: TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
) -> tuple[SimResult, list[AperiodicRequest]]:
    """Run a polling-server scenario; returns the result and the
    requests (now carrying completion times)."""
    sim = ServerSimulation(
        taskset,
        server,
        requests,
        horizon=horizon,
        faults=faults,
        plan=plan,
        vm=vm,
    )
    result = sim.run()
    return result, sim.requests


class DeferrableServerSimulation(ServerSimulation):
    """A *deferrable* server: bandwidth-preserving aperiodic service.

    The budget is replenished to the full capacity at every period
    boundary and may be consumed at any point within the period: a
    request arriving mid-period is served immediately (at the server's
    priority) if budget remains — the behaviour that improves aperiodic
    response over polling at the price of the back-to-back interference
    the deferrable analysis charges lower-priority tasks
    (:func:`repro.core.servers.deferrable_response_times`).

    Model note: server jobs are sized ``min(budget, pending)`` at
    release and the budget is debited when the job *ends*; a job
    preempted across a replenishment boundary therefore consumes
    slightly conservatively (never more service than a true DS, and at
    most ``capacity`` of execution inside any period — the property the
    interference bound needs).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._budget = self.server.capacity
        self._job_seq = 0
        self._server_active = False
        # Replenishments and arrival-driven service checks.
        t = 0
        while t <= self.horizon:
            self.engine.schedule(t, self._replenish, Rank.RELEASE)
            t += self.server.period
        for req in self.requests:
            if req.arrival <= self.horizon:
                self.engine.schedule(req.arrival, self._try_serve, Rank.RELEASE)
        self.job_end_hooks.setdefault(self.server.name, []).append(
            self._server_job_ended
        )

    # The DS releases are purely event-driven: suppress the periodic
    # schedule the base class would install for the server.
    def _clock_released(self, task: Task) -> bool:
        return task.name != self.server.name

    def _replenish(self) -> None:
        self._budget = self.server.capacity
        self._try_serve()

    def _try_serve(self) -> None:
        if self._server_active or self._budget <= 0:
            return
        now = self.engine.now
        window = [r for r in self.requests if r.arrival <= now and r.remaining > 0]
        pending = sum(r.remaining for r in window)
        if pending == 0:
            return
        task = self.taskset[self.server.name]
        demand = self.faults.demand(
            task.name, self._job_seq, min(self._budget, pending)
        )
        job = Job(task=task, index=self._job_seq, release=now, demand=demand)
        self._job_seq += 1
        self.jobs[(task.name, job.index)] = job
        self.trace.record(now, EventKind.RELEASE, task.name, job.index)
        self._install_request_hooks(job, window)
        self._server_active = True
        if self._active[task.name] is None:
            self._activate(job)
        else:  # pragma: no cover - defensive; jobs serialise via _server_active
            self._backlog[task.name].append(job)

    def _server_job_ended(self, job: Job) -> None:
        self._server_active = False
        self._budget = max(self._budget - job.executed, 0)
        # Budget may remain and more work may have arrived meanwhile.
        self._try_serve()


def simulate_with_deferrable_server(
    taskset: TaskSet,
    server: ServerSpec,
    requests: Sequence[AperiodicRequest],
    *,
    horizon: int,
    faults: FaultModel | None = None,
    plan: TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
) -> tuple[SimResult, list[AperiodicRequest]]:
    """Run a deferrable-server scenario; returns the result and the
    requests (now carrying completion times)."""
    sim = DeferrableServerSimulation(
        taskset,
        server,
        requests,
        horizon=horizon,
        faults=faults,
        plan=plan,
        vm=vm,
    )
    result = sim.run()
    return result, sim.requests
