"""Vectorized population generation for sweeps.

:func:`generate_population` produces the *same* task sets as calling
:func:`repro.workloads.generator.random_taskset` once per system with a
``derive_rng``-derived stream — the per-system uniform draws are pulled
in exactly the scalar call order (``n - 1`` UUniFast draws, then ``n``
period draws) and the arithmetic that turns them into utilizations,
periods, costs and deadlines runs as numpy array expressions over the
whole population at once (``tests/workloads/test_population.py`` pins
the bit-equality).

Two properties matter for the sweep layer (``repro.exec.sweep``):

* **chunk-boundary independence** — system ``k`` of a population is a
  pure function of ``(seed, key, k)``: every draw comes from
  ``derive_rng(seed, "population", *key, k, attempt)``, never from a
  shared stream, so generating ``[start, start + count)`` yields the
  identical slice regardless of how a sweep is chunked or how many
  workers run it;
* **deterministic feasibility filtering** — with ``feasible_only``,
  infeasible systems are re-drawn with the attempt counter bumped (the
  retry chain is part of the per-system key, so it too is independent
  of batching).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.feasibility import is_feasible
from repro.core.priority_assignment import deadline_monotonic
from repro.core.task import Task, TaskSet
from repro.rng import derive_rng

__all__ = ["PopulationConfig", "generate_population"]

#: Retry ceiling for ``feasible_only`` (a config whose random systems
#: are practically never feasible is a configuration error, not a
#: reason to spin forever).
_MAX_ATTEMPTS = 200


@dataclass(frozen=True)
class PopulationConfig:
    """Generator knobs shared by every system of a population cell."""

    n: int = 4
    utilization: float = 0.7
    deadline_factor: float = 1.0
    period_lo: int = 10_000
    period_hi: int = 1_000_000
    period_granularity: int = 1_000

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if not 0 < self.period_lo <= self.period_hi:
            raise ValueError("need 0 < period_lo <= period_hi")
        if self.period_granularity < 1:
            raise ValueError("period granularity must be >= 1")
        if self.deadline_factor <= 0:
            raise ValueError("deadline factor must be > 0")


def generate_population(
    count: int,
    config: PopulationConfig = PopulationConfig(),
    *,
    seed: int = 0,
    key: Sequence[object] = (),
    start: int = 0,
    feasible_only: bool = False,
) -> list[TaskSet]:
    """Systems ``start .. start + count - 1`` of the population named by
    ``(seed, key)``.

    Each system depends only on its absolute index, so any chunking of
    the index range reproduces the same systems.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    out: list[TaskSet | None] = [None] * count
    pending = list(range(count))
    attempt = 0
    while pending:
        if attempt > _MAX_ATTEMPTS:
            raise RuntimeError(
                f"no feasible system after {_MAX_ATTEMPTS} attempts "
                f"(n={config.n}, U={config.utilization})"
            )
        systems = _generate_rows(
            config, [(start + p, attempt) for p in pending], seed, tuple(key)
        )
        if not feasible_only:
            for p, ts in zip(pending, systems):
                out[p] = ts
            break
        still = []
        for p, ts in zip(pending, systems):
            if is_feasible(ts):
                out[p] = ts
            else:
                still.append(p)
        pending = still
        attempt += 1
    return [ts for ts in out if ts is not None]


def _generate_rows(
    config: PopulationConfig,
    indices: Sequence[tuple[int, int]],
    seed: int,
    key: tuple[object, ...],
) -> list[TaskSet]:
    """One task set per ``(absolute index, attempt)`` pair, with all
    numeric work vectorized across the rows."""
    n = config.n
    rows = len(indices)
    # Raw uniforms, drawn per system in the scalar generator's call
    # order: n-1 UUniFast draws then n period draws (rng.uniform(a, b)
    # is a + (b - a) * rng.random(), reproduced below).
    draws = np.empty((rows, 2 * n - 1), dtype=np.float64)
    for r, (k, attempt) in enumerate(indices):
        rng = derive_rng(seed, "population", *key, k, attempt)
        draws[r] = [rng.random() for _ in range(2 * n - 1)]

    # UUniFast across all rows at once (Bini & Buttazzo).
    utils = np.empty((rows, n), dtype=np.float64)
    remaining = np.full(rows, config.utilization, dtype=np.float64)
    for i in range(n - 1):
        nxt = remaining * draws[:, i] ** (1.0 / (n - i - 1))
        utils[:, i] = remaining - nxt
        remaining = nxt
    utils[:, n - 1] = remaining

    # Log-uniform periods rounded to the granularity.
    lo, hi = math.log(config.period_lo), math.log(config.period_hi)
    raw = np.exp(lo + (hi - lo) * draws[:, n - 1 :])
    gran = np.int64(config.period_granularity)
    periods = np.maximum(gran, np.rint(raw / gran).astype(np.int64) * gran)

    costs = np.maximum(np.int64(1), np.rint(utils * periods).astype(np.int64))
    deadlines = np.maximum(
        costs, np.rint(periods * config.deadline_factor).astype(np.int64)
    )

    costs_l = costs.tolist()
    periods_l = periods.tolist()
    deadlines_l = deadlines.tolist()
    out = []
    for r in range(rows):
        tasks = [
            Task(
                name=f"task{i}",
                cost=costs_l[r][i],
                period=periods_l[r][i],
                deadline=deadlines_l[r][i],
                priority=1,
            )
            for i in range(n)
        ]
        out.append(deadline_monotonic(tasks))
    return out
