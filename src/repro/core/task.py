"""Periodic task model.

The paper (§2) considers a system of periodic tasks scheduled by a
fixed-priority preemptive algorithm on one processor.  A task ``tau_i``
has a cost ``C_i``, a relative deadline ``D_i``, a period ``T_i`` and a
priority ``P_i``.  Following the RTSJ convention used by the paper's
Table 2 (P = 20 > 18 > 16, with tau_1 the highest-priority task),
**a larger priority number means a higher priority**.

All durations are integer nanoseconds (see :mod:`repro.units`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.core.weakly_hard import MKConstraint
from repro.units import fmt_ms

__all__ = ["Task", "TaskSet", "hyperperiod"]


@dataclass(frozen=True, order=False)
class Task:
    """An independent periodic task.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`TaskSet` (e.g. ``"tau1"``).
    cost:
        Worst-case execution time ``C_i`` in nanoseconds (> 0).
    period:
        Activation period ``T_i`` in nanoseconds (> 0).
    priority:
        Fixed priority ``P_i``; larger values preempt smaller ones.
    deadline:
        Relative deadline ``D_i`` in nanoseconds; defaults to the
        period.  Deadlines larger than the period are allowed (the
        arbitrary-deadline case handled by the paper's Figure 2
        algorithm).
    offset:
        Release offset of the first job relative to system start.  The
        paper's analysis assumes a synchronous critical instant
        (offset-free worst case); offsets only affect *simulation*
        scenarios such as Figures 3-7 where tau_3 is phased.
    mk:
        Optional weakly-hard constraint: at most ``mk.m`` deadline
        misses in any window of ``mk.k`` consecutive jobs
        (:class:`~repro.core.weakly_hard.MKConstraint`).  ``None`` (the
        default) means the classic hard-deadline task of the paper; the
        weakly-hard treatments (SKIP_JOB / DEGRADE / MISS_BUDGET) and
        the weakly-hard schedulability test read this field.
    """

    name: str
    cost: int
    period: int
    priority: int
    deadline: int = -1  # sentinel replaced in __post_init__
    offset: int = 0
    mk: MKConstraint | None = None

    def __post_init__(self) -> None:
        if self.deadline == -1:
            object.__setattr__(self, "deadline", self.period)
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.cost <= 0:
            raise ValueError(f"{self.name}: cost must be > 0, got {self.cost}")
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be > 0, got {self.period}")
        if self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be > 0, got {self.deadline}")
        if self.offset < 0:
            raise ValueError(f"{self.name}: offset must be >= 0, got {self.offset}")
        if self.mk is not None and not isinstance(self.mk, MKConstraint):
            raise TypeError(f"{self.name}: mk must be an MKConstraint or None")
        if self.cost > self.deadline and self.cost > self.period:
            # A task that can never meet its deadline nor complete within
            # a period is almost certainly a specification error.
            raise ValueError(
                f"{self.name}: cost {self.cost} exceeds both deadline and period"
            )

    @property
    def utilization(self) -> float:
        """Processor share ``C_i / T_i``."""
        return self.cost / self.period

    @property
    def constrained(self) -> bool:
        """True when ``D_i <= T_i`` (the simple Joseph-Pandya RTA case)."""
        return self.deadline <= self.period

    def with_cost(self, cost: int) -> "Task":
        """Return a copy with a different cost (used by allowance search)."""
        return replace(self, cost=cost)

    def with_mk(self, mk: MKConstraint | None) -> "Task":
        """Return a copy with a different weakly-hard constraint."""
        return replace(self, mk=mk)

    def release_time(self, job: int) -> int:
        """Absolute release time of job number *job* (0-based)."""
        if job < 0:
            raise ValueError("job index must be >= 0")
        return self.offset + job * self.period

    def absolute_deadline(self, job: int) -> int:
        """Absolute deadline of job number *job* (0-based)."""
        return self.release_time(job) + self.deadline

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(P={self.priority}, C={fmt_ms(self.cost)}, "
            f"T={fmt_ms(self.period)}, D={fmt_ms(self.deadline)})"
        )


class TaskSet:
    """An immutable, priority-ordered collection of :class:`Task`.

    Tasks are stored sorted by decreasing priority (ties broken by
    insertion order, matching FIFO-within-priority dispatching).  The
    class provides the derived quantities used throughout the analysis:
    total utilization, higher-priority subsets, and hyperperiod.
    """

    def __init__(self, tasks: Iterable[Task]):
        tasks = list(tasks)
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task names: {dupes}")
        # Stable sort: equal priorities keep their given order.
        self._tasks: tuple[Task, ...] = tuple(
            sorted(tasks, key=lambda t: -t.priority)
        )
        self._by_name = {t.name: t for t in self._tasks}

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, name_or_index: str | int) -> Task:
        if isinstance(name_or_index, str):
            return self._by_name[name_or_index]
        return self._tasks[name_or_index]

    def __contains__(self, task: Task | str) -> bool:
        name = task if isinstance(task, str) else task.name
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(t.name for t in self._tasks)
        return f"TaskSet([{inner}])"

    # -- derived quantities --------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        """Tasks in decreasing-priority order."""
        return self._tasks

    @property
    def utilization(self) -> float:
        """Total processor load ``U = sum C_i / T_i`` (paper eq. 1)."""
        return sum(t.utilization for t in self._tasks)

    def utilization_exact(self) -> tuple[int, int]:
        """Total load as an exact fraction ``(numerator, denominator)``.

        Used by feasibility code to test ``U > 1`` and ``U >= 1``
        without floating-point error on large nanosecond quantities.
        """
        num, den = 0, 1
        for t in self._tasks:
            num = num * t.period + t.cost * den
            den *= t.period
            g = math.gcd(num, den)
            num //= g
            den //= g
        return num, den

    def higher_or_equal_priority(self, task: Task) -> tuple[Task, ...]:
        """The set ``HP(S)`` of Figure 2: tasks with priority >= *task*'s,
        excluding *task* itself."""
        return tuple(
            t for t in self._tasks if t.priority >= task.priority and t.name != task.name
        )

    def lower_priority(self, task: Task) -> tuple[Task, ...]:
        """Tasks with a strictly lower priority than *task*."""
        return tuple(t for t in self._tasks if t.priority < task.priority)

    def hyperperiod(self) -> int:
        """Least common multiple of all periods."""
        return hyperperiod(self._tasks)

    # -- functional updates ----------------------------------------------------
    def with_task(self, task: Task) -> "TaskSet":
        """Return a new set with *task* added (name must be fresh)."""
        return TaskSet([*self._tasks, task])

    def without(self, name: str) -> "TaskSet":
        """Return a new set with the named task removed."""
        if name not in self._by_name:
            raise KeyError(name)
        return TaskSet(t for t in self._tasks if t.name != name)

    def with_costs(self, costs: dict[str, int]) -> "TaskSet":
        """Return a new set with some task costs replaced (allowance search)."""
        unknown = set(costs) - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown tasks: {sorted(unknown)}")
        return TaskSet(
            t.with_cost(costs[t.name]) if t.name in costs else t for t in self._tasks
        )

    def with_mk(self, constraints: dict[str, MKConstraint | None]) -> "TaskSet":
        """Return a new set with some weakly-hard constraints replaced."""
        unknown = set(constraints) - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown tasks: {sorted(unknown)}")
        return TaskSet(
            t.with_mk(constraints[t.name]) if t.name in constraints else t
            for t in self._tasks
        )

    def weakly_hard_tasks(self) -> tuple[Task, ...]:
        """Tasks carrying an (m, K) constraint (priority order)."""
        return tuple(t for t in self._tasks if t.mk is not None)

    def inflated(self, extra: int) -> "TaskSet":
        """Return a new set with *extra* nanoseconds added to every cost.

        This is the transformation under which the paper's equitable
        allowance (§4.2) is the largest *extra* keeping the set feasible.
        """
        if extra < 0:
            raise ValueError("extra must be >= 0")
        return TaskSet(t.with_cost(t.cost + extra) for t in self._tasks)


def hyperperiod(tasks: Iterable[Task]) -> int:
    """LCM of the task periods (1 for an empty collection)."""
    result = 1
    for t in tasks:
        result = math.lcm(result, t.period)
    return result
