"""Unit tests for the feasibility analysis (paper §2, Figure 2)."""

import pytest

from repro.core.feasibility import (
    FeasibilityReport,
    LoadTest,
    analyze,
    assert_feasible,
    is_feasible,
    job_response_times,
    level_busy_period,
    load_test,
    response_time_constrained,
    response_time_of_job,
    wc_response_time,
)
from repro.core.task import Task, TaskSet
from repro.units import ms


def make(name, cost, period, priority, deadline=-1, **kw) -> Task:
    return Task(name=name, cost=cost, period=period, priority=priority, deadline=deadline, **kw)


class TestLoadTest:
    def test_underloaded_is_inconclusive(self, two_tasks):
        assert load_test(two_tasks) is LoadTest.INCONCLUSIVE

    def test_overloaded_is_infeasible(self):
        ts = TaskSet([make("a", 6, 10, 2), make("b", 6, 10, 1)])
        assert load_test(ts) is LoadTest.INFEASIBLE

    def test_exactly_one_is_inconclusive(self):
        # Three tasks of utilization exactly 1/3 each: U == 1, which the
        # paper's condition (U > 1) does not reject.
        ts = TaskSet([make(f"t{i}", 1, 3, i + 1) for i in range(3)])
        assert load_test(ts) is LoadTest.INCONCLUSIVE

    def test_exact_arithmetic_near_one(self):
        # 1/3 + 1/3 + 1/3 must not be rejected due to float rounding.
        ts = TaskSet([make(f"t{i}", 10**9 // 3 * 1, 10**9, i + 1) for i in range(3)])
        assert load_test(ts) is LoadTest.INCONCLUSIVE


class TestSingleTask:
    def test_wcrt_is_cost(self):
        ts = TaskSet([make("only", 7, 100, 1)])
        assert wc_response_time(ts["only"], ts) == 7

    def test_full_utilization_single_task(self):
        ts = TaskSet([make("only", 10, 10, 1)])
        assert wc_response_time(ts["only"], ts) == 10

    def test_job_series_single_entry(self):
        ts = TaskSet([make("only", 7, 100, 1)])
        assert job_response_times(ts["only"], ts) == [7]


class TestConstrainedDeadlines:
    def test_classic_two_task_response(self, two_tasks):
        # hi: 2/10; lo first job: 3 + ceil(R/10)*2 -> 5.
        assert wc_response_time(two_tasks["hi"], two_tasks) == ms(2)
        assert wc_response_time(two_tasks["lo"], two_tasks) == ms(5)

    def test_matches_constrained_oracle(self, two_tasks):
        for task in two_tasks:
            assert wc_response_time(task, two_tasks) == response_time_constrained(
                task, two_tasks
            )

    def test_three_task_textbook(self):
        # Liu & Layland style example.
        ts = TaskSet(
            [
                make("a", 1, 4, 3),
                make("b", 2, 6, 2),
                make("c", 3, 13, 1),
            ]
        )
        assert wc_response_time(ts["a"], ts) == 1
        assert wc_response_time(ts["b"], ts) == 3
        # c: fixed point of 3 + ceil(R/4) + 2*ceil(R/6)
        assert wc_response_time(ts["c"], ts) == 10

    def test_equal_priority_counts_as_interference(self):
        ts = TaskSet([make("a", 2, 10, 5), make("b", 3, 10, 5)])
        # Each sees the other as higher-or-equal interference (Fig 2 HP).
        assert wc_response_time(ts["a"], ts) == 5
        assert wc_response_time(ts["b"], ts) == 5


class TestArbitraryDeadlines:
    def test_lehoczky_series(self, lehoczky):
        assert job_response_times(lehoczky["t2"], lehoczky) == [
            114,
            102,
            116,
            104,
            118,
            106,
            94,
        ]

    def test_lehoczky_wcrt_at_fifth_job(self, lehoczky):
        assert wc_response_time(lehoczky["t2"], lehoczky) == 118

    def test_first_job_not_the_worst(self, lehoczky):
        r0 = response_time_of_job(lehoczky["t2"], lehoczky, 0)
        assert r0 == 114  # completion of job 0 == its response
        assert wc_response_time(lehoczky["t2"], lehoczky) > 114

    def test_general_at_least_first_job(self, lehoczky):
        t = lehoczky["t2"]
        r0 = response_time_of_job(t, lehoczky, 0)
        assert wc_response_time(t, lehoczky) >= r0

    def test_busy_period_closure(self, lehoczky):
        # Level-2 busy period: solves L = ceil(L/70)*26 + ceil(L/100)*62.
        assert level_busy_period(lehoczky["t2"], lehoczky) == 694

    def test_busy_period_unbounded_when_overloaded(self):
        ts = TaskSet([make("a", 6, 10, 2), make("b", 6, 10, 1)])
        assert level_busy_period(ts["b"], ts) is None

    def test_negative_job_index_rejected(self, lehoczky):
        with pytest.raises(ValueError):
            response_time_of_job(lehoczky["t2"], lehoczky, -1)


class TestUnboundedCases:
    def test_overloaded_level_returns_none(self):
        ts = TaskSet([make("a", 6, 10, 2), make("b", 6, 10, 1, deadline=50)])
        assert wc_response_time(ts["b"], ts) is None

    def test_higher_levels_still_bounded(self):
        ts = TaskSet([make("a", 6, 10, 2), make("b", 6, 10, 1, deadline=50)])
        assert wc_response_time(ts["a"], ts) == 6

    def test_analyze_reports_unbounded(self):
        ts = TaskSet([make("a", 6, 10, 2), make("b", 6, 10, 1, deadline=50)])
        report = analyze(ts)
        assert report.load is LoadTest.INFEASIBLE
        assert report.per_task["b"].wcrt is None
        assert not report.feasible


class TestPaperTable2:
    def test_wcrt_values(self, table2):
        report = analyze(table2)
        assert report.wcrt("tau1") == ms(29)
        assert report.wcrt("tau2") == ms(58)
        assert report.wcrt("tau3") == ms(87)

    def test_feasible(self, table2):
        assert is_feasible(table2)

    def test_slack(self, table2):
        report = analyze(table2)
        assert report.per_task["tau1"].slack == ms(70 - 29)
        assert report.per_task["tau3"].slack == ms(120 - 87)

    def test_offsets_ignored_by_analysis(self, table2, figures_taskset):
        # The phased variant must produce identical WCRTs (synchronous
        # analysis is offset-agnostic and conservative).
        a, b = analyze(table2), analyze(figures_taskset)
        for name in ("tau1", "tau2", "tau3"):
            assert a.wcrt(name) == b.wcrt(name)


class TestReportHelpers:
    def test_first_infeasible_is_lowest_priority_victim(self):
        ts = TaskSet(
            [
                make("hi", 5, 10, 3),
                make("mid", 4, 10, 2, deadline=9),
                make("lo", 1, 10, 1, deadline=9),
            ]
        )
        report = analyze(ts)
        assert not report.feasible
        first = report.first_infeasible()
        assert first is not None and first.name == "lo"

    def test_first_infeasible_none_when_feasible(self, two_tasks):
        assert analyze(two_tasks).first_infeasible() is None

    def test_assert_feasible_passes(self, table2):
        report = assert_feasible(table2)
        assert isinstance(report, FeasibilityReport)

    def test_assert_feasible_raises_with_culprit(self):
        ts = TaskSet([make("hi", 5, 10, 2), make("lo", 5, 10, 1, deadline=9)])
        with pytest.raises(ValueError, match="lo"):
            assert_feasible(ts)


class TestDeadlineMonotonicExample:
    def test_dm_feasible_set(self):
        # Audsley et al. [1] style: DM priorities, D < T.
        ts = TaskSet(
            [
                make("a", 3, 20, 4, deadline=7),
                make("b", 3, 15, 3, deadline=9),
                make("c", 4, 20, 2, deadline=13),
                make("d", 3, 20, 1, deadline=20),
            ]
        )
        report = analyze(ts)
        assert report.feasible
        assert report.wcrt("a") == 3
        assert report.wcrt("b") == 6
        assert report.wcrt("c") == 10
        assert report.wcrt("d") == 13
