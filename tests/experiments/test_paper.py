"""The reproduction's acceptance tests: every paper claim must hold."""

import pytest

from repro.experiments.paper import (
    all_experiments,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
    table3,
)
from repro.units import ms


class TestTables:
    def test_table1_documents_inconsistency(self):
        result = table1()
        assert not result.feasible
        assert all(c.holds for c in result.claims())
        assert "Table 1" in result.render()

    def test_figure1_worst_case_at_fifth_job(self):
        result = figure1()
        assert result.responses == [114, 102, 116, 104, 118, 106, 94]
        assert result.argmax_job == 4
        assert all(c.holds for c in result.claims())

    def test_table2_values(self):
        result = table2()
        assert result.wcrt == {"tau1": ms(29), "tau2": ms(58), "tau3": ms(87)}
        assert result.allowance == ms(11)
        assert all(c.holds for c in result.claims())

    def test_table3_values(self):
        result = table3()
        assert result.exact == {"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}
        assert result.exact == result.additive
        assert all(c.holds for c in result.claims())

    def test_table_renders_mention_units(self):
        assert "ms" in table2().render()
        assert "ms" in table3().render()


class TestFigures:
    @pytest.mark.parametrize("factory", [figure3, figure4, figure5, figure6, figure7])
    def test_all_claims_hold(self, factory):
        result = factory()
        failing = [c for c in result.claims() if not c.holds]
        assert not failing, f"{result.name}: {[c.description for c in failing]}"

    def test_figure3_tau3_misses(self):
        result = figure3()
        assert result.metrics.per_task["tau3"].deadline_misses == 1
        assert result.metrics.per_task["tau1"].deadline_misses == 0

    def test_figure4_same_failures_as_figure3(self):
        f3, f4 = figure3(), figure4()
        assert f3.metrics.failed_tasks == f4.metrics.failed_tasks == ["tau3"]

    def test_figure5_stops_tau1_early(self):
        result = figure5()
        assert result.job_end("tau1", 5) == ms(1029)

    def test_figure6_stop_at_adjusted_wcrt(self):
        result = figure6()
        assert result.job_end("tau1", 5) == ms(1040)

    def test_figure7_endings_match_paper(self):
        result = figure7()
        assert result.job_end("tau1", 5) == ms(1062)
        assert result.job_end("tau2", 4) == ms(1091)
        assert result.job_end("tau3", 0) == ms(1120)

    def test_progression_of_tau1_execution_time(self):
        # Across treatments, tau1's faulty job gets strictly more time:
        # immediate stop < equitable < system allowance.
        ends = [f().job_end("tau1", 5) for f in (figure5, figure6, figure7)]
        assert ends == sorted(ends)
        assert len(set(ends)) == 3

    def test_renders_include_chart(self):
        out = figure7().render()
        assert "legend" in out
        assert "tau1" in out


class TestRegistry:
    def test_all_experiments_runnable(self):
        registry = all_experiments()
        assert set(registry) == {
            "table1",
            "figure1",
            "table2",
            "table3",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
        }
        for factory in registry.values():
            result = factory()
            assert result.render()
            assert result.claims()
