"""Mergeable telemetry snapshots — observability across process boundaries.

The executor (PR 2) fans specs out over a ``multiprocessing.Pool``; the
observability layer (PR 3) records metrics and spans into *process-local*
registries.  Before this module the two composed badly: every counter a
pool worker incremented and every span it measured died with the worker.
A :class:`TelemetrySnapshot` is the fix — a picklable, immutable capture
of one process's registry + spans that travels back through the pool's
result channel and merges losslessly in the parent.

Merge semantics (golden-tested in ``tests/obs/test_aggregate.py``):

* **counters** sum and **histograms** add bucket-wise (bounds must
  align) — associative, commutative, identity :data:`EMPTY`, so worker
  snapshots can arrive and fold in any order and a serial run and a
  ``--jobs N`` run of the same specs produce the *same* merged numbers;
* **gauges** are last-write-wins and have no order-insensitive merge,
  so they stay **per-pid**: each snapshot tags its gauges with the
  originating pid and merge unions the per-pid maps (two snapshots from
  the same pid take the maximum).  A parallel run's merged telemetry
  therefore equals the serial run's *modulo pid tags* — exactly the
  parity the regression tests assert;
* **spans** concatenate, pid-tagged, and are kept sorted by a stable
  key so the merged tuple never depends on arrival order.

The merged snapshot lands in the run manifest's ``telemetry`` section
(``aggregate``), which :func:`repro.exec.manifest.strip_volatile` drops
— telemetry describes *this host's* execution of the run, never the
results, so fingerprints stay bit-identical with telemetry on or off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span

__all__ = [
    "TelemetrySnapshot",
    "EMPTY",
    "snapshot_telemetry",
    "merge",
    "merge_all",
]

#: Lossless histogram state: (bounds, counts, count, sum, min, max).
HistState = tuple[tuple[int, ...], tuple[int, ...], int, int, int | None, int | None]

#: One span as data: (start_ns, dur_ns, category, name, attrs).
SpanState = tuple[int, int, str, str, tuple[tuple[str, str], ...]]


def _pid_key(key: str, pid: int) -> str:
    """Insert a ``pid=<n>`` label into a rendered metric key, keeping
    the sorted-label convention of ``MetricsRegistry``."""
    if key.endswith("}") and "{" in key:
        name, inner = key[:-1].split("{", 1)
        labels = sorted(inner.split(",") + [f"pid={pid}"])
        return f"{name}{{{','.join(labels)}}}"
    return f"{key}{{pid={pid}}}"


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable, picklable capture of one process's telemetry.

    All collections are sorted tuples, so equal telemetry always
    compares (and pickles) equal regardless of insertion order.
    """

    pids: tuple[int, ...] = ()
    counters: tuple[tuple[str, int], ...] = ()
    #: Per-pid gauge maps: ``((pid, ((key, value), ...)), ...)``.
    gauges: tuple[tuple[int, tuple[tuple[str, int | float], ...]], ...] = ()
    histograms: tuple[tuple[str, HistState], ...] = ()
    spans: tuple[SpanState, ...] = ()
    flight_bundles: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(
            self.pids
            or self.counters
            or self.gauges
            or self.histograms
            or self.spans
            or self.flight_bundles
        )

    # -- views ---------------------------------------------------------------
    def counter_map(self) -> dict[str, int]:
        return dict(self.counters)

    def gauge_map(self) -> dict[str, int | float]:
        """Gauges flattened to pid-tagged keys."""
        out: dict[str, int | float] = {}
        for pid, entries in self.gauges:
            for key, value in entries:
                out[_pid_key(key, pid)] = value
        return out

    def histogram_map(self) -> dict[str, dict[str, Any]]:
        return {
            key: {
                "bounds": list(bounds),
                "counts": list(counts),
                "count": count,
                "sum": total,
                "min": lo,
                "max": hi,
            }
            for key, (bounds, counts, count, total, lo, hi) in self.histograms
        }

    def as_dict(self) -> dict[str, Any]:
        """The manifest/golden-file encoding: sorted keys throughout;
        histograms use the sparse export form of
        :meth:`~repro.obs.metrics.Histogram.as_dict` plus the exact
        bounds so the state stays lossless."""
        histograms = {}
        for key, (bounds, counts, count, total, lo, hi) in self.histograms:
            buckets = {
                (str(bounds[i]) if i < len(bounds) else "+inf"): n
                for i, n in enumerate(counts)
                if n
            }
            histograms[key] = {
                "count": count,
                "sum": total,
                "min": lo,
                "max": hi,
                "buckets": buckets,
            }
        return {
            "pids": list(self.pids),
            "counters": dict(sorted(self.counters)),
            "gauges": dict(sorted(self.gauge_map().items())),
            "histograms": dict(sorted(histograms.items())),
            "spans": [
                {
                    "name": name,
                    "category": category,
                    "start_ns": start,
                    "dur_ns": dur,
                    **({"attrs": dict(attrs)} if attrs else {}),
                }
                for start, dur, category, name, attrs in self.spans
            ],
            "flight_bundles": list(self.flight_bundles),
        }


#: The merge identity: ``merge(EMPTY, s) == merge(s, EMPTY) == s``.
EMPTY = TelemetrySnapshot()


def snapshot_telemetry(
    registry: MetricsRegistry | None = None,
    *,
    spans: Sequence[Span] | Iterable[Span] = (),
    flight_bundles: Sequence[str] = (),
    pid: int | None = None,
) -> TelemetrySnapshot:
    """Capture *registry* (and optional spans / flight-bundle paths) as
    an immutable snapshot, tagged with the capturing process's pid."""
    pid = os.getpid() if pid is None else pid
    counters: list[tuple[str, int]] = []
    gauges: list[tuple[str, int | float]] = []
    histograms: list[tuple[str, HistState]] = []
    if registry is not None:
        counters = sorted((k, c.snapshot()) for k, c in registry.counters.items())
        gauges = sorted((k, g.snapshot()) for k, g in registry.gauges.items())
        histograms = sorted(
            (
                k,
                (
                    h.bounds,
                    tuple(h.counts),
                    h.count,
                    h.total,
                    h.min,
                    h.max,
                ),
            )
            for k, h in registry.histograms.items()
        )
    span_states = sorted(
        (s.start_ns, s.dur_ns, s.category, s.name, tuple(s.attrs)) for s in spans
    )
    return TelemetrySnapshot(
        pids=(pid,),
        counters=tuple(counters),
        gauges=((pid, tuple(gauges)),) if gauges else (),
        histograms=tuple(histograms),
        spans=tuple(
            (start, dur, category, name, attrs + (("pid", str(pid)),))
            for start, dur, category, name, attrs in span_states
        ),
        flight_bundles=tuple(sorted(flight_bundles)),
    )


def _merge_hist(name: str, a: HistState, b: HistState) -> HistState:
    bounds_a, counts_a, count_a, sum_a, min_a, max_a = a
    bounds_b, counts_b, count_b, sum_b, min_b, max_b = b
    if bounds_a != bounds_b:
        raise ValueError(
            f"histogram {name}: cannot merge misaligned buckets "
            f"({len(bounds_b)} bounds vs {len(bounds_a)})"
        )
    lo = min_a if min_b is None else (min_b if min_a is None else min(min_a, min_b))
    hi = max_a if max_b is None else (max_b if max_a is None else max(max_a, max_b))
    return (
        bounds_a,
        tuple(x + y for x, y in zip(counts_a, counts_b)),
        count_a + count_b,
        sum_a + sum_b,
        lo,
        hi,
    )


def merge(a: TelemetrySnapshot, b: TelemetrySnapshot) -> TelemetrySnapshot:
    """The snapshot monoid: associative, commutative, identity
    :data:`EMPTY` (property-tested in ``tests/obs/test_aggregate.py``)."""
    counters: dict[str, int] = dict(a.counters)
    for key, value in b.counters:
        counters[key] = counters.get(key, 0) + value

    gauges: dict[int, dict[str, int | float]] = {
        pid: dict(entries) for pid, entries in a.gauges
    }
    for pid, entries in b.gauges:
        mine = gauges.setdefault(pid, {})
        for key, value in entries:
            mine[key] = max(mine[key], value) if key in mine else value

    histograms: dict[str, HistState] = dict(a.histograms)
    for key, state in b.histograms:
        histograms[key] = (
            _merge_hist(key, histograms[key], state) if key in histograms else state
        )

    return TelemetrySnapshot(
        pids=tuple(sorted(set(a.pids) | set(b.pids))),
        counters=tuple(sorted(counters.items())),
        gauges=tuple(
            (pid, tuple(sorted(entries.items())))
            for pid, entries in sorted(gauges.items())
        ),
        histograms=tuple(sorted(histograms.items())),
        spans=tuple(sorted(a.spans + b.spans)),
        flight_bundles=tuple(sorted(set(a.flight_bundles) | set(b.flight_bundles))),
    )


def merge_all(snapshots: Iterable[TelemetrySnapshot]) -> TelemetrySnapshot:
    """Fold any number of snapshots (order cannot matter)."""
    out = EMPTY
    for snap in snapshots:
        out = merge(out, snap)
    return out
