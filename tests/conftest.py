"""Shared fixtures: the paper's systems and common helpers."""

from __future__ import annotations

import pytest

from repro.core.task import Task, TaskSet
from repro.units import ms
from repro.workloads.scenarios import (
    lehoczky_example,
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
    paper_table2,
)


@pytest.fixture
def table2() -> TaskSet:
    """The paper's tested system (Table 2), synchronous release."""
    return paper_table2()


@pytest.fixture
def figures_taskset() -> TaskSet:
    """Table 2 phased as in Figures 3-7 (tau3 offset 1000 ms)."""
    return paper_figures_taskset()


@pytest.fixture
def figures_fault():
    """The injected +40 ms overrun on tau1's job 5."""
    return paper_fault()


@pytest.fixture
def figures_horizon() -> int:
    return paper_horizon()


@pytest.fixture
def lehoczky() -> TaskSet:
    """The classic arbitrary-deadline example (WCRT at job q=4)."""
    return lehoczky_example()


@pytest.fixture
def two_tasks() -> TaskSet:
    """A small constrained-deadline system used across unit tests."""
    return TaskSet(
        [
            Task("hi", cost=ms(2), period=ms(10), priority=10),
            Task("lo", cost=ms(3), period=ms(14), deadline=ms(12), priority=5),
        ]
    )
