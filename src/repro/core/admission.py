"""Dynamic admission control — the paper's §7 future work.

"Our study considers a rather static system, in which all the tasks are
known before launching [...].  Our objective in the continuation of
this work will be to reach the same results in a more dynamic system
where tasks can be added or removed 'in real-time' by adapting the
behavior of our detectors."

:class:`AdmissionController` maintains a live task set and, on every
accepted change, recomputes the admission-control products the
detectors depend on (WCRTs, allowances, detector offsets for the
configured treatment) and reports which detectors moved — exactly the
"adapting the behaviour of our detectors" the paper sketches.

Changes are transactional: a rejected request leaves the controller
untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.context import AnalysisContext
from repro.core.detection import EXACT, Rounding
from repro.core.feasibility import FeasibilityReport
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan, plan_treatment

__all__ = ["AdmissionDecision", "AdmissionResult", "DetectorChange", "AdmissionController"]


class AdmissionDecision(enum.Enum):
    """Outcome of an add/remove request."""

    ACCEPTED = "accepted"
    REJECTED_LOAD = "rejected-load"  # U would exceed 1
    REJECTED_DEADLINE = "rejected-deadline"  # some WCRT would miss
    REJECTED_DUPLICATE = "rejected-duplicate"
    REJECTED_UNKNOWN = "rejected-unknown"  # removal of an absent task


@dataclass(frozen=True)
class DetectorChange:
    """A detector whose check offset moved because of the change."""

    task_name: str
    old_offset: int | None  # None = detector newly installed
    new_offset: int | None  # None = detector removed

    @property
    def kind(self) -> str:
        if self.old_offset is None:
            return "installed"
        if self.new_offset is None:
            return "removed"
        return "moved"


@dataclass(frozen=True)
class AdmissionResult:
    """What a request produced."""

    decision: AdmissionDecision
    report: FeasibilityReport | None = None
    plan: TreatmentPlan | None = None
    detector_changes: tuple[DetectorChange, ...] = ()

    @property
    def accepted(self) -> bool:
        return self.decision is AdmissionDecision.ACCEPTED


@dataclass
class AdmissionController:
    """Online admission control with detector adaptation.

    *treatment* is the fault-tolerance policy whose detector offsets
    the controller maintains; *rounding* is the platform timer quirk
    applied to them.
    """

    treatment: TreatmentKind = TreatmentKind.DETECT_ONLY
    rounding: Rounding = EXACT
    taskset: TaskSet = field(default_factory=lambda: TaskSet([]))
    plan: TreatmentPlan | None = None
    history: list[tuple[str, str, AdmissionDecision]] = field(default_factory=list)
    # Persistent fast path: WCRTs are memoized by their exact inputs, so
    # successive trials (which mostly share priority levels with the
    # current set) recompute only the levels a change can affect.
    _analysis: AnalysisContext = field(
        default_factory=lambda: AnalysisContext(TaskSet([])),
        repr=False,
        compare=False,
    )

    def request_add(self, task: Task) -> AdmissionResult:
        """Try to admit *task*; detectors are re-planned on success."""
        if task.name in self.taskset:
            return self._log("add", task.name, AdmissionResult(AdmissionDecision.REJECTED_DUPLICATE))
        trial = self.taskset.with_task(task)
        report = self._analysis.analyze_set(trial)
        if not report.feasible:
            decision = (
                AdmissionDecision.REJECTED_LOAD
                if trial.utilization > 1
                else AdmissionDecision.REJECTED_DEADLINE
            )
            return self._log("add", task.name, AdmissionResult(decision, report=report))
        return self._log("add", task.name, self._commit(trial, report))

    def request_remove(self, name: str) -> AdmissionResult:
        """Remove the named task; always feasible, detectors shrink
        back (remaining tasks may gain allowance)."""
        if name not in self.taskset:
            return self._log(
                "remove", name, AdmissionResult(AdmissionDecision.REJECTED_UNKNOWN)
            )
        trial = self.taskset.without(name)
        report = self._analysis.analyze_set(trial) if len(trial) else None
        return self._log("remove", name, self._commit(trial, report))

    def wcrt(self, name: str) -> int | None:
        """Current WCRT of an admitted task."""
        if self.plan is None:
            return None
        return self.plan.wcrt.get(name)

    def detector_offsets(self) -> dict[str, int]:
        """Current (rounded) detector check offsets."""
        if self.plan is None:
            return {}
        return {n: d.offset for n, d in self.plan.detectors.items()}

    # -- internals ---------------------------------------------------------------
    def _commit(
        self, new_set: TaskSet, report: FeasibilityReport | None
    ) -> AdmissionResult:
        old_offsets = self.detector_offsets()
        new_plan = (
            plan_treatment(
                new_set,
                self.treatment,
                self.rounding,
                context=AnalysisContext(new_set, memo=self._analysis._memo),
            )
            if len(new_set)
            else None
        )
        self.taskset = new_set
        self.plan = new_plan
        new_offsets = (
            {n: d.offset for n, d in new_plan.detectors.items()} if new_plan else {}
        )
        changes = _diff_detectors(old_offsets, new_offsets)
        return AdmissionResult(
            AdmissionDecision.ACCEPTED,
            report=report,
            plan=new_plan,
            detector_changes=changes,
        )

    def _log(self, op: str, name: str, result: AdmissionResult) -> AdmissionResult:
        self.history.append((op, name, result.decision))
        return result


def _diff_detectors(
    old: Mapping[str, int], new: Mapping[str, int]
) -> tuple[DetectorChange, ...]:
    changes = []
    for name in sorted(set(old) | set(new)):
        before, after = old.get(name), new.get(name)
        if before != after:
            changes.append(DetectorChange(name, before, after))
    return tuple(changes)
