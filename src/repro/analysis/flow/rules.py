"""RT1xx — cross-module flow rules.

Each rule consumes the :class:`~repro.analysis.flow.model.ProjectModel`
plus the propagated :class:`~repro.analysis.flow.taint.TaintState` and
emits ordinary :class:`~repro.analysis.diagnostics.Diagnostic` records,
so the text/JSON/SARIF renderers, ``# noqa`` suppression and the
baseline machinery treat per-file and whole-program findings uniformly.

=========  ==========================================================
``RT101``  determinism taint: a volatile value (wall clock, env var,
           host identity, salted ``hash``, global-RNG draw) reaches a
           fingerprint/cache-key sink (``ExperimentSpec``/
           ``spec_hash``, ``build_manifest``/``manifest_fingerprint``,
           ``ResultCache`` keys) without passing through
           ``repro.rng.derive_rng`` or ``strip_volatile``
``RT102``  time-type escape: an integer-ns quantity minted by
           :mod:`repro.units` flows — through a call that leaves its
           module — into float arithmetic that RT001's per-file name
           heuristic cannot see
``RT103``  RNG escape: an rng object, or a closure capturing one, is
           submitted across a process boundary (``PoolExecutor.run``,
           ``multiprocessing.Pool.map`` …), forking the stream state
``RT104``  hot-path purity (warning): a function reachable from the
           engine run loop or the warm-start analysis context mutates
           shared task/system state in place
=========  ==========================================================

Soundness: resolution is name-based (DESIGN.md §3.7) — calls on values
of unknown type do not create graph edges, so RT104's reachable set is
an under-approximation, while taint joins are over-approximations.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Type

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.model import FunctionInfo, ProjectModel
from repro.analysis.flow.taint import RNG, TIME_NS, VOLATILE, TaintState, propagate

__all__ = [
    "FlowRule",
    "FLOW_RULES",
    "flow_rule_codes",
    "run_flow_rules",
    "DeterminismTaint",
    "TimeTypeEscape",
    "RngProcessEscape",
    "HotPathMutation",
]


class FlowRule:
    """Base class: one whole-program rule, one stable ``RT1xx`` code."""

    code: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self, model: ProjectModel, state: TaintState):
        self.model = model
        self.state = state
        self.diagnostics: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        raise NotImplementedError

    def report(
        self, func: FunctionInfo, key: tuple[int, int], message: str, *, hint: str = ""
    ) -> None:
        summary = self.model.modules.get(func.module)
        line, column = key
        if self.model.suppressed(func.module, line, self.code):
            return
        self.diagnostics.append(
            Diagnostic(
                code=self.code,
                severity=self.severity,
                message=message,
                path=summary.path if summary is not None else func.module,
                line=line,
                column=column + 1,
                hint=hint,
            )
        )


_VOLATILE_HINT = (
    "derive stable inputs via repro.rng.derive_rng / stable keys, or drop "
    "volatile fields with repro.exec.manifest.strip_volatile before hashing"
)

#: Fingerprint / cache-key sinks (dotted-suffix matched).
FINGERPRINT_SINKS = (
    "manifest_fingerprint",
    "build_manifest",
    "ExperimentSpec",
    "ResultCache.key",
    "ResultCache.get",
    "ResultCache.put",
)

#: Method names that are sinks even when the receiver type is unknown.
FINGERPRINT_SINK_ATTRS = frozenset({"spec_hash"})


class DeterminismTaint(FlowRule):
    """RT101: volatile values reaching fingerprint/cache-key sinks."""

    code = "RT101"
    name = "determinism-taint"
    description = (
        "A value derived from wall clocks, environment variables, host "
        "identity, salted hash() or global-RNG draws reaches an "
        "ExperimentSpec / manifest fingerprint / ResultCache key without "
        "passing through repro.rng.derive_rng or strip_volatile — the "
        "same spec then hashes differently on every run."
    )

    def run(self) -> list[Diagnostic]:
        for func in self.model.functions.values():
            for site in func.calls:
                if not (
                    site.matches(FINGERPRINT_SINKS)
                    or site.attr in FINGERPRINT_SINK_ATTRS
                ):
                    continue
                for tv in site.all_args():
                    kinds = self.state.kinds_of(self.model, func, tv)
                    if VOLATILE in kinds:
                        self.report(
                            func,
                            site.key,
                            f"volatile value reaches determinism sink "
                            f"{site.display}() in {func.fqn}()",
                            hint=_VOLATILE_HINT,
                        )
                        break
        return self.diagnostics


class TimeTypeEscape(FlowRule):
    """RT102: integer-ns values escaping into float math cross-module."""

    code = "RT102"
    name = "time-type-escape"
    description = (
        "An integer-nanosecond quantity minted by repro.units flows "
        "through a call into another module and lands in float "
        "arithmetic there — outside the reach of RT001's per-file "
        "time-word heuristic, so the rounding drift would ship silently."
    )

    def run(self) -> list[Diagnostic]:
        for func in self.model.functions.values():
            for site in func.float_ops:
                if site.local_time_valued:
                    continue  # RT001 territory: visible per-file
                kinds = self.state.nonlocal_kinds(self.model, func, site.operand)
                if TIME_NS not in kinds:
                    continue
                if site.op == "div" and site.other is not None:
                    other = self.state.kinds_of(self.model, func, site.other)
                    if TIME_NS in other:
                        continue  # time/time — a dimensionless ratio
                self.report(
                    func,
                    site.key,
                    f"integer-ns value from another module floats in "
                    f"{site.display!r} ({func.fqn})",
                    hint="keep cross-module durations integral (// or "
                    "repro.units helpers); convert only at the "
                    "presentation boundary",
                )
        return self.diagnostics


#: Process-boundary submission sinks (dotted-suffix matched).
SUBMIT_SINKS = (
    "PoolExecutor.run",
    "Pool.map",
    "Pool.imap",
    "Pool.imap_unordered",
    "Pool.starmap",
    "Pool.apply",
    "Pool.apply_async",
    "ProcessPoolExecutor.submit",
    "ProcessPoolExecutor.map",
)


class RngProcessEscape(FlowRule):
    """RT103: rng state captured by work crossing a process boundary."""

    code = "RT103"
    name = "rng-process-escape"
    description = (
        "An rng object — or a closure/partial capturing one — is "
        "submitted to a process pool; the worker pickles the generator "
        "state, the parent and child streams silently fork, and replay "
        "depends on scheduling."
    )

    def run(self) -> list[Diagnostic]:
        for func in self.model.functions.values():
            for site in func.calls:
                if not site.matches(SUBMIT_SINKS):
                    continue
                for tv in site.all_args():
                    direct = self.state.kinds_of(self.model, func, tv)
                    captured = self.state.closure_kinds(self.model, func, tv)
                    if RNG in direct:
                        what = "rng object"
                    elif RNG in captured:
                        what = "closure capturing rng state"
                    else:
                        continue
                    self.report(
                        func,
                        site.key,
                        f"{what} submitted across a process boundary via "
                        f"{site.display}() in {func.fqn}()",
                        hint="send the seed (int) instead and rebuild the "
                        "stream in the worker with repro.rng.derive_rng",
                    )
                    break
        return self.diagnostics


#: Default hot roots: the fused engine run loop and the warm-start
#: analysis recurrences — code whose correctness proofs assume the
#: task/system model is immutable while they run.
HOT_ROOT_PATTERNS = (
    "*.sim.engine.Engine.run",
    "*.sim.engine.Engine.step",
    "*.core.context.AnalysisContext.*",
    "*.core.context.AnalysisView.*",
)

#: Vocabulary naming shared task/system model state.
_SHARED_WORDS = frozenset({"task", "tasks", "taskset", "system", "systems"})


class HotPathMutation(FlowRule):
    """RT104: reachable-from-hot-path mutation of task/system state."""

    code = "RT104"
    name = "hot-path-mutation"
    description = (
        "A function reachable from the engine run loop or the "
        "warm-start analysis context mutates shared task/system state "
        "in place; the warm-start equivalence proof and the fused event "
        "loop both assume that model is frozen while they run."
    )
    severity = Severity.WARNING

    def __init__(
        self,
        model: ProjectModel,
        state: TaintState,
        *,
        hot_roots: Sequence[str] | None = None,
    ):
        super().__init__(model, state)
        self.hot_roots = tuple(hot_roots) if hot_roots is not None else HOT_ROOT_PATTERNS

    def run(self) -> list[Diagnostic]:
        reachable = self.model.reachable_from(self.hot_roots)
        for fqn in sorted(reachable):
            func = self.model.functions[fqn]
            for mut in func.mutations:
                if (
                    mut.root == "self"
                    and mut.kind == "assign"
                    and mut.target.count(".") == 1
                ):
                    # Rebinding an own slot (``self.x = ...`` in __init__
                    # or a lazy cache) — not a shared-object mutation.
                    continue
                words = set(mut.target.lower().replace(".", "_").split("_"))
                if not (words & _SHARED_WORDS):
                    continue
                self.report(
                    func,
                    mut.key,
                    f"{func.fqn}() is hot-path reachable and mutates "
                    f"shared state via {mut.target!r} ({mut.kind})",
                    hint="snapshot or rebuild instead of mutating; route "
                    "sanctioned moves through the partition/admission "
                    "APIs",
                )
        return self.diagnostics


FLOW_RULES: tuple[Type[FlowRule], ...] = (
    DeterminismTaint,
    TimeTypeEscape,
    RngProcessEscape,
    HotPathMutation,
)


def flow_rule_codes() -> frozenset[str]:
    return frozenset(rule.code for rule in FLOW_RULES)


def run_flow_rules(
    model: ProjectModel,
    *,
    codes: Iterable[str] | None = None,
    hot_roots: Sequence[str] | None = None,
    state: TaintState | None = None,
) -> list[Diagnostic]:
    """Propagate taint over *model* and run the RT1xx rules.

    Unparseable modules surface as RT000 diagnostics (same code the
    per-file linter uses) rather than being silently skipped.
    """
    from repro.analysis.diagnostics import sort_key
    from repro.analysis.lint import PARSE_ERROR_CODE

    wanted = {c.upper() for c in codes} if codes is not None else None
    out: list[Diagnostic] = []
    for summary in model.modules.values():
        if summary.parse_error is not None:
            out.append(
                Diagnostic(
                    code=PARSE_ERROR_CODE,
                    severity=Severity.ERROR,
                    message=summary.parse_error,
                    path=summary.path,
                )
            )
    if state is None:
        state = propagate(model)
    for rule_cls in FLOW_RULES:
        if wanted is not None and rule_cls.code not in wanted:
            continue
        if rule_cls is HotPathMutation:
            rule: FlowRule = HotPathMutation(model, state, hot_roots=hot_roots)
        else:
            rule = rule_cls(model, state)
        out.extend(rule.run())
    if wanted is not None:
        out = [d for d in out if d.code in wanted]
    return sorted(out, key=sort_key)
