"""Differential oracle: the simulator against the exact analysis.

For hypothesis-drawn task systems — uniprocessor and partitioned — the
two halves of the reproduction must agree (DESIGN.md §3.6):

* **WCRT bound**: every observed job response time is at most the
  analytic worst case (``AnalysisContext.analyze_set``), whenever the
  analysis declares the set feasible;
* **verdict**: ``is_feasible`` is equivalent to "no deadline miss
  observed from the synchronous critical instant" — asserted as a
  two-way equivalence when the *sound horizon* (hyperperiod + largest
  deadline, which provably exhibits a miss for any analytically
  infeasible constrained-deadline set) fits under the cap, and as the
  feasible ⇒ no-miss direction only when the horizon had to be capped;
* **stepper**: the vectorized population stepper is bit-identical to
  the exact engine on everything the classifier admits — including
  random fault injection and the detect-only / immediate-stop /
  equitable-allowance treatments;
* **(m, K)**: whenever the weakly-hard analysis admits a system with
  per-task (m, K) constraints, the miss-or-skip pattern observed under
  the SKIP_JOB treatment satisfies every task's constraint, executed
  jobs never miss, and their responses stay within the weakly-hard
  WCRTs.

Every example is seeded through :func:`repro.rng.derive_rng`, so a
failure is replayable from its drawn integers alone.  Failing draws are
saved as JSON repro files under ``tests/oracle/corpus/`` and replayed
*first* (``test_corpus_replay`` is defined at the top of the module,
one parametrized id per corpus file), so a once-found counterexample
keeps guarding the suite even after hypothesis's own example database
is gone.  Each draw reports which oracle direction it actually covered
via :func:`hypothesis.event` — run with
``--hypothesis-show-statistics`` (CI does) to see the per-direction
coverage counts instead of a silent one-way fallback.
"""

from __future__ import annotations

import json
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import assume, event, given

from repro.core.context import AnalysisContext
from repro.core.faults import RandomFaults
from repro.core.partition import Heuristic, PartitionError, partition_tasks
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.core.weakly_hard import MKConstraint, first_violation
from repro.rng import derive_rng, stable_hash
from repro.sim.batch import (
    classify,
    schedule_fingerprint,
    sim_job_records,
    simulate_batch,
)
from repro.sim.mp import simulate_partitioned
from repro.sim.simulation import simulate
from repro.units import ms
from repro.workloads.generator import GeneratorConfig, random_taskset

CORPUS = Path(__file__).with_name("corpus")
#: Horizon cap — one example must stay cheap even when the drawn
#: periods produce an awkward hyperperiod.
CAP = ms(500)
#: Keep the corpus bounded even if a bad change fails many draws.
MAX_CORPUS_FILES = 32

#: One analysis context for the whole suite: the memo is keyed by exact
#: mathematical inputs, so sharing it across examples only saves work.
_CTX = AnalysisContext(TaskSet(()))

_HEURISTICS = [h.value for h in Heuristic]


def _generate(seed: int, n: int, u_ppm: int, d_ppm: int, salt: str) -> TaskSet:
    """The deterministic task system a drawn tuple names."""
    rng = derive_rng(seed, "oracle", salt, n, u_ppm, d_ppm)
    config = GeneratorConfig(
        n=n,
        utilization=u_ppm / 1_000_000,
        period_lo=ms(10),
        period_hi=ms(40),
        period_granularity=ms(5),
        deadline_factor=d_ppm / 1_000_000,
    )
    return random_taskset(config, rng=rng)


def _horizons(ts: TaskSet) -> tuple[int, bool]:
    """(simulation horizon, whether it is *sound*).

    The sound horizon is one hyperperiod plus the largest deadline: for
    a constrained-deadline set released synchronously, any analytic
    infeasibility manifests as an observed miss within it (first-job /
    LCM-demand argument), so feasibility and absence of misses are
    equivalent over that window.  When the cap truncates it, only the
    feasible ⇒ no-miss direction is checked.
    """
    sound = ts.hyperperiod() + max(t.deadline for t in ts)
    return min(sound, CAP), sound <= CAP


def _check_shard(ts: TaskSet, result, horizon: int, sound: bool) -> None:
    """The oracle invariants for one processor's task set + sim result."""
    report = _CTX.analyze_set(ts)
    if report.feasible:
        event("shard: feasible => wcrt-bound + no-miss checked")
        for task in ts:
            wcrt = report.wcrt(task.name)
            assert wcrt is not None
            for job in result.jobs_of(task.name):
                if job.response_time is None:
                    continue  # unfinished at horizon
                assert job.response_time <= wcrt, (
                    f"{task.name}#{job.index}: observed response "
                    f"{job.response_time} exceeds analytic WCRT {wcrt}"
                )
        assert not result.missed(), (
            f"analysis says feasible but {result.missed()[0].name} missed"
        )
    elif sound and ts.hyperperiod() + max(t.deadline for t in ts) <= horizon:
        event("shard: infeasible => observed-miss checked")
        assert result.missed(), (
            "analysis says infeasible but no deadline miss was observed "
            "over a sound horizon"
        )
    else:
        # Previously a *silent* one-way fallback — now every draw that
        # lands here says so, and ``--hypothesis-show-statistics`` turns
        # the events into per-direction coverage counts.
        event("shard: horizon capped — infeasible=>miss direction skipped")


def _check_uni(seed: int, n: int, u_ppm: int, d_ppm: int) -> None:
    ts = _generate(seed, n, u_ppm, d_ppm, "uni")
    horizon, sound = _horizons(ts)
    result = simulate(ts, horizon=horizon)
    _check_shard(ts, result, horizon, sound)


def _check_mp(seed: int, n: int, u_ppm: int, d_ppm: int, processors: int, heuristic: str) -> None:
    ts = _generate(seed, n, u_ppm, d_ppm, "mp")
    try:
        partition = partition_tasks(ts, processors, Heuristic(heuristic))
    except PartitionError:
        return  # nothing to differentiate — no placement exists
    horizon, sound = _horizons(ts)
    result = simulate_partitioned(
        ts, processors=processors, heuristic=Heuristic(heuristic), horizon=horizon
    )
    for p in range(processors):
        subset = partition.subset(p)
        if len(subset):
            _check_shard(subset, result.per_processor[p], horizon, sound)


def _check_stepper(
    seed: int, n: int, u_ppm: int, rate_ppm: int, treatment: str
) -> None:
    """Differential stepper oracle: a drawn system + fault stream +
    treatment must produce bit-identical job records on the vectorized
    stepper and the exact engine whenever the classifier admits it."""
    ts = _generate(seed, n, u_ppm, 900_000, "stepper")
    horizon = min(3 * max(t.period for t in ts), CAP)
    faults = None
    if rate_ppm:
        faults = RandomFaults(
            rate=rate_ppm / 1_000_000,
            max_extra=max(1, min(t.period for t in ts) // 2),
            seed=seed,
        )
    kind = TreatmentKind(treatment) if treatment else None
    if classify(ts, faults=faults, treatment=kind, horizon=horizon) is not None:
        return  # exact-engine territory — nothing to differentiate
    plan = None
    if kind is not None:
        try:
            planned = plan_treatment(ts, kind)
        except ValueError:
            return  # admission-rejected identically on both routes
        if kind.installs_detectors:
            plan = planned
    (b,) = simulate_batch([ts], [horizon], faults=[faults], plans=[plan])
    from repro.exec.sim import run_simulation

    result = run_simulation(ts, horizon=horizon, faults=faults, treatment=kind)
    assert b.records == sim_job_records(result), (
        "vectorized stepper diverged from the exact engine"
    )
    assert schedule_fingerprint(b) == schedule_fingerprint(result)


def _check_mk(seed: int, n: int, u_ppm: int, d_ppm: int) -> None:
    """(m, K) differential oracle: weakly-hard admission against the
    observed miss-or-skip pattern under the SKIP_JOB treatment.

    Every task gets a derived (m, K) constraint (m = 0 keeps hard
    semantics through the weakly-hard path).  Whenever the analysis
    admits the set, the simulated deeply-red schedule must (a) satisfy
    every task's constraint over the whole run, (b) never miss an
    *executed* job's deadline, and (c) keep executed responses within
    the weakly-hard WCRTs.  The constraints are re-derived from the
    drawn integers, so a corpus repro file needs only the four draws.
    """
    base = _generate(seed, n, u_ppm, d_ppm, "mk")
    rng = derive_rng(seed, "oracle", "mk-constraints", n, u_ppm, d_ppm)
    constraints = {}
    for task in base:
        k = rng.randint(1, 4)
        constraints[task.name] = MKConstraint(rng.randint(0, k), k)
    ts = base.with_mk(constraints)
    report = _CTX.weakly_hard_analyze_set(ts)
    if not report.feasible:
        event("mk: weakly-hard infeasible — admission-rejected draw")
        return
    event("mk: feasible => pattern + wcrt checked")
    horizon, _ = _horizons(ts)
    result = simulate(ts, horizon=horizon, treatment=TreatmentKind.SKIP_JOB)
    for task in ts:
        mk = task.mk
        assert mk is not None
        pattern = result.miss_pattern(task.name)
        violation = first_violation(pattern, mk)
        assert violation is None, (
            f"{task.name}: admitted under ({mk.m}, {mk.k}) but the observed "
            f"pattern violates it at job {violation}: {pattern}"
        )
        wcrt = report.wcrt(task.name)
        assert wcrt is not None
        for job in result.jobs_of(task.name):
            if job.was_skipped or job.response_time is None:
                continue
            assert not job.deadline_missed, (
                f"{task.name}#{job.index}: executed job missed its deadline "
                "despite weakly-hard admission"
            )
            assert job.response_time <= wcrt, (
                f"{task.name}#{job.index}: observed response "
                f"{job.response_time} exceeds weakly-hard WCRT {wcrt}"
            )


_CHECKS = {
    "uni": _check_uni,
    "mp": _check_mp,
    "stepper": _check_stepper,
    "mk": _check_mk,
}


def _save_repro(kind: str, params: dict) -> None:
    """Persist a failing draw as a corpus repro file (idempotent per
    draw; capped so a broken build cannot flood the tree)."""
    CORPUS.mkdir(exist_ok=True)
    existing = list(CORPUS.glob("*.json"))
    key = f"{stable_hash(kind, *sorted(params.items())):016x}"
    path = CORPUS / f"{kind}-{key}.json"
    if path.exists() or len(existing) >= MAX_CORPUS_FILES:
        return
    path.write_text(json.dumps({"kind": kind, **params}, sort_keys=True) + "\n")


def _capture_flight(kind: str, params: dict, detail: str) -> None:
    """If an ambient flight recorder is armed, dump the diverging
    system as a replayable bundle (uniprocessor only — the exec/sim
    bridge the replayer uses has no partitioned path)."""
    from repro.exec.sim import run_simulation
    from repro.obs import AnomalyReport, runtime as obs_runtime
    from repro.sim.batch import sim_job_records

    cfg = obs_runtime.current()
    if kind != "uni" or cfg is None or cfg.flight is None:
        return
    ts = _generate(params["seed"], params["n"], params["u_ppm"], params["d_ppm"], kind)
    horizon, _ = _horizons(ts)
    records = sim_job_records(run_simulation(ts, horizon=horizon))
    cfg.flight.capture(
        AnomalyReport(
            kind="oracle-divergence",
            detail=detail,
            taskset=ts,
            horizon=horizon,
            expected_fingerprint=f"{stable_hash(records):08x}",
            context=tuple(sorted((k, str(v)) for k, v in params.items())),
        )
    )


def _run_and_record(kind: str, **params) -> None:
    try:
        _CHECKS[kind](**params)
    except AssertionError as exc:
        _save_repro(kind, params)
        _capture_flight(kind, params, str(exc).splitlines()[0] if str(exc) else "")
        raise


# -- replayed FIRST: once-found counterexamples stay regression tests ---------
@pytest.mark.parametrize(
    "path", sorted(CORPUS.glob("*.json")), ids=lambda p: p.stem
)
def test_corpus_replay(path):
    """Replay one saved counterexample before the random sweep — each
    corpus file is its own test id, so a regressing repro names itself
    in the failure report instead of hiding inside a shared loop."""
    record = json.loads(path.read_text())
    kind = record.pop("kind")
    _CHECKS[kind](**record)


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 5),
    u_ppm=st.integers(300_000, 1_200_000),
    d_ppm=st.sampled_from([800_000, 900_000, 1_000_000]),
)
def test_uniprocessor_sim_never_beats_analysis(seed, n, u_ppm, d_ppm):
    _run_and_record("uni", seed=seed, n=n, u_ppm=u_ppm, d_ppm=d_ppm)


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 5),
    u_ppm=st.integers(300_000, 1_000_000),
    rate_ppm=st.sampled_from([0, 300_000, 700_000]),
    treatment=st.sampled_from(
        ["", "detect-only", "immediate-stop", "equitable-allowance"]
    ),
)
def test_batched_stepper_matches_exact_engine(seed, n, u_ppm, rate_ppm, treatment):
    _run_and_record(
        "stepper", seed=seed, n=n, u_ppm=u_ppm, rate_ppm=rate_ppm, treatment=treatment
    )


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 6),
    u_ppm=st.integers(400_000, 1_600_000),
    d_ppm=st.sampled_from([800_000, 900_000, 1_000_000]),
    heuristic=st.sampled_from(_HEURISTICS),
)
def test_partitioned_sim_never_beats_analysis(seed, n, u_ppm, d_ppm, heuristic):
    assume(n >= 2)
    _run_and_record(
        "mp", seed=seed, n=n, u_ppm=u_ppm, d_ppm=d_ppm, processors=2, heuristic=heuristic
    )


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 5),
    u_ppm=st.integers(600_000, 1_400_000),
    d_ppm=st.sampled_from([900_000, 1_000_000]),
)
def test_weakly_hard_admission_never_beats_simulation(seed, n, u_ppm, d_ppm):
    _run_and_record("mk", seed=seed, n=n, u_ppm=u_ppm, d_ppm=d_ppm)
