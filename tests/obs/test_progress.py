"""Crash-readable progress streams and resume-aware summaries."""

import io
import json

from repro.obs.progress import (
    ProgressWriter,
    iter_progress,
    render_progress,
    summarize_progress,
)


def write_events(path, events):
    with open(path, "a") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


class TestWriter:
    def test_events_carry_monotonic_offsets(self, tmp_path):
        path = tmp_path / "p.jsonl"
        writer = ProgressWriter(path)
        writer.emit("run_started", run="x", total_specs=2)
        writer.emit("spec_done", name="a", source="computed")
        writer.close()
        events = list(iter_progress(path))
        assert [e["event"] for e in events] == ["run_started", "spec_done"]
        assert events[0]["t_ns"] <= events[1]["t_ns"]
        assert events[0]["total_specs"] == 2

    def test_echo_stream(self, tmp_path):
        echo = io.StringIO()
        writer = ProgressWriter(tmp_path / "p.jsonl", echo=echo)
        writer.emit("spec_done", name="a", source="computed")
        writer.close()
        assert "spec_done" in echo.getvalue()

    def test_appends_across_writers(self, tmp_path):
        path = tmp_path / "p.jsonl"
        for _ in range(2):
            writer = ProgressWriter(path)
            writer.emit("run_started", run="x")
            writer.close()
        assert len(list(iter_progress(path))) == 2


class TestTornLines:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_events(path, [{"event": "run_started", "t_ns": 0, "total_specs": 3}])
        with open(path, "a") as fh:
            fh.write('{"event": "spec_done", "t_ns": 5')  # crash mid-write
        events = list(iter_progress(path))
        assert [e["event"] for e in events] == ["run_started"]
        assert summarize_progress(path).total_specs == 3


class TestSummary:
    def test_counts_and_rates(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_events(
            path,
            [
                {"event": "run_started", "t_ns": 0, "run": "s", "total_specs": 4,
                 "total_points": 40},
                {"event": "spec_done", "t_ns": 1_000_000_000, "name": "a",
                 "source": "computed", "points": 10},
                {"event": "spec_done", "t_ns": 2_000_000_000, "name": "b",
                 "source": "cache", "points": 10},
            ],
        )
        summary = summarize_progress(path)
        assert summary.specs_done == 2
        assert summary.computed == 1
        assert summary.cached == 1
        assert summary.points_done == 20
        assert summary.total_points == 40
        assert not summary.finished
        # paced by *computed* specs: 1 computed in 2s -> 2 left take 4s
        assert summary.eta_ns() == 4_000_000_000

    def test_resume_segments_accumulate_elapsed(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_events(
            path,
            [
                {"event": "run_started", "t_ns": 0, "run": "s", "total_specs": 4},
                {"event": "spec_done", "t_ns": 3_000_000_000, "name": "a",
                 "source": "computed"},
                # killed; resumed — a fresh writer origin
                {"event": "run_started", "t_ns": 0, "run": "s", "total_specs": 4},
                {"event": "spec_done", "t_ns": 1_000_000_000, "name": "a",
                 "source": "cache"},
                {"event": "spec_done", "t_ns": 2_000_000_000, "name": "b",
                 "source": "computed"},
                {"event": "run_finished", "t_ns": 2_500_000_000, "run": "s",
                 "fingerprint": "abc123"},
            ],
        )
        summary = summarize_progress(path)
        assert summary.runs == 2
        # the resumed segment's counts, not the sum of both segments
        assert summary.specs_done == 2
        assert summary.elapsed_ns == 3_000_000_000 + 2_500_000_000
        assert summary.finished
        assert summary.fingerprint == "abc123"

    def test_render(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_events(
            path,
            [
                {"event": "run_started", "t_ns": 0, "run": "s", "total_specs": 1},
                {"event": "spec_done", "t_ns": 1_000_000_000, "name": "a",
                 "source": "computed"},
                {"event": "run_finished", "t_ns": 1_100_000_000, "run": "s"},
            ],
        )
        out = io.StringIO()
        render_progress(path, out)
        text = out.getvalue()
        assert "finished" in text
        assert "1/1" in text

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.touch()
        summary = summarize_progress(path)
        assert summary.specs_done == 0
        assert not summary.finished
