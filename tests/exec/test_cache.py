"""Unit tests for the content-addressed result cache."""

import pytest

from repro.exec.cache import ResultCache, code_version
from repro.exec.spec import ExperimentSpec


def spec(name="s", **overrides):
    return ExperimentSpec.make(name=name, builder="b", **overrides)


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_hex8(self):
        int(code_version(), 16)
        assert len(code_version()) == 8


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        assert cache.get(s) is None
        cache.put(s, {"answer": 42})
        assert cache.get(s) == {"answer": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_key_covers_spec_hash_and_version(self, tmp_path):
        cache = ResultCache(tmp_path, version="aaaa")
        s = spec()
        assert cache.key(s) == f"{s.spec_hash()}-aaaa"

    def test_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(horizon=100), "old")
        assert cache.get(spec(horizon=200)) is None

    def test_code_version_change_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version="aaaa")
        old.put(spec(), "stale")
        fresh = ResultCache(tmp_path, version="bbbb")
        assert fresh.get(spec()) is None  # same spec, new code -> recompute

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, "value")
        cache.path(s).write_bytes(b"not a pickle")
        assert cache.get(s) is None

    def test_lru_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        specs = [spec(name=f"s{i}") for i in range(3)]
        for i, s in enumerate(specs):
            cache.put(s, i)
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec(), 1)
        assert len(cache) == 1
