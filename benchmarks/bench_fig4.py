"""Figure 4: execution with detection, without treatments.

Shape reproduced: behaviour identical to Figure 3 (tau3 still misses),
the fault is *detected*, and on the jRate VM profile the detectors fire
with the §6.2 rounding delays 30-29=1, 60-58=2, 90-87=3 ms.
"""

from repro.experiments.paper import figure3, figure4
from repro.sim.trace import EventKind
from repro.sim.vm import JRATE_VM
from repro.units import ms


def test_figure4_detect_only(benchmark):
    result = benchmark(figure4)
    assert all(c.holds for c in result.claims()), [
        c.description for c in result.claims() if not c.holds
    ]
    # Same failure pattern as Figure 3.
    assert result.metrics.failed_tasks == figure3().metrics.failed_tasks


def test_figure4_detector_delays(benchmark):
    result = benchmark(figure4, JRATE_VM)
    plan = result.result.runtime.plan
    assert {n: d.delay for n, d in plan.detectors.items()} == {
        "tau1": ms(1),
        "tau2": ms(2),
        "tau3": ms(3),
    }
    # tau1's faulty job is caught at release + rounded WCRT = 1030 ms.
    detections = [
        e
        for e in result.result.trace.of_kind(EventKind.FAULT_DETECTED)
        if (e.task, e.job) == ("tau1", 5)
    ]
    assert detections and detections[0].time == ms(1030)
