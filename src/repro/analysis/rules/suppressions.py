"""RT099 — ``# noqa`` suppressions must not rot.

A suppression is an exception the reviewer signed off on *for a
specific finding*.  When the code it excused is later refactored away,
the stale ``# noqa`` stays behind and silently swallows the **next**
violation introduced on that line — the exact "silent discipline
violation" failure mode this checker exists to prevent.

RT099 runs after every other rule (codes sort last) and compares the
suppressions scanned from the source against the ones rules actually
*used* this run:

* ``# noqa: RT001, RT002`` where only RT001 fired → RT002 reported
  stale;
* a blanket ``# noqa`` that silenced nothing → reported, with a nudge
  toward code-specific form;
* codes belonging to other tools (``N802``, ``F401``, ``E731`` …) are
  ignored — this checker only audits its own vocabulary.

Staleness is only computed on full runs (no ``--select`` filter): with
a rule subset disabled, an unused suppression proves nothing.  RT099
findings are warnings and are deliberately not themselves
``# noqa``-suppressible.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lint import PARSE_ERROR_CODE, Rule, register

__all__ = ["StaleSuppression"]


@register
class StaleSuppression(Rule):
    """RT099: a ``# noqa`` entry that suppressed no finding."""

    code = "RT099"
    name = "stale-suppression"
    description = (
        "# noqa / # noqa: RTxxx comments whose codes silenced no finding "
        "on a full run are stale and would hide the next real violation; "
        "remove them (or narrow a blanket # noqa to specific codes)."
    )
    severity = Severity.WARNING

    def run(self) -> list[Diagnostic]:
        if not self.ctx.full_run:
            return self.diagnostics
        from repro.analysis.lint import all_rules

        ours = {r.code for r in all_rules()} | {PARSE_ERROR_CODE}
        ours.discard(self.code)
        for line in sorted(self.ctx.suppressions):
            codes = self.ctx.suppressions[line]
            used = self.ctx.used_suppressions.get(line, set())
            if codes is None:
                if not used:
                    self._report(
                        line,
                        "blanket # noqa suppressed no finding",
                        hint="remove it, or use code-specific "
                        "# noqa: RTxxx so future violations still fire",
                    )
                continue
            stale = sorted((codes & ours) - used)
            if stale:
                self._report(
                    line,
                    f"# noqa: {', '.join(stale)} suppressed no "
                    f"{'finding' if len(stale) == 1 else 'findings'}",
                    hint="remove the stale code(s) from the suppression",
                )
        return self.diagnostics

    def _report(self, line: int, message: str, *, hint: str) -> None:
        # Deliberately bypasses the suppression check: a stale-noqa
        # warning silenced by another noqa would defeat the audit.
        self.diagnostics.append(
            Diagnostic(
                code=self.code,
                severity=self.severity,
                message=message,
                path=self.ctx.path,
                line=line,
                column=1,
                hint=hint,
            )
        )
