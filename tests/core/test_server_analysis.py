"""Unit tests for aperiodic-server analysis."""

import pytest

from repro.core.feasibility import analyze, is_feasible
from repro.core.servers import (
    ServerSpec,
    deferrable_feasible,
    deferrable_response_times,
    polling_response_bound,
    polling_server_taskset,
    server_sizing,
)
from repro.core.task import Task, TaskSet


def periodic() -> TaskSet:
    return TaskSet(
        [
            Task("hi", cost=2, period=10, priority=10),
            Task("lo", cost=6, period=30, deadline=28, priority=2),
        ]
    )


SERVER = ServerSpec(name="srv", capacity=3, period=15, priority=5)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSpec("s", capacity=0, period=10, priority=1)
        with pytest.raises(ValueError):
            ServerSpec("s", capacity=11, period=10, priority=1)

    def test_deadline_defaults_to_period(self):
        assert SERVER.deadline == 15

    def test_as_task(self):
        task = SERVER.as_task()
        assert (task.cost, task.period, task.priority) == (3, 15, 5)

    def test_utilization(self):
        assert SERVER.utilization == pytest.approx(0.2)


class TestPollingAnalysis:
    def test_periodic_tasks_analysed_with_server(self):
        full = polling_server_taskset(periodic(), SERVER)
        report = analyze(full)
        assert report.feasible
        # lo suffers hi + server interference.
        assert report.wcrt("lo") == 6 + 2 * 2 + 3  # window 13: two hi jobs, one srv
        assert report.wcrt("srv") == 3 + 2  # one hi job

    def test_response_bound_single_chunk(self):
        bound = polling_response_bound(3, SERVER, periodic())
        # One chunk: wait a period for the poll, then the server's WCRT.
        assert bound == 15 + 5

    def test_response_bound_multiple_chunks(self):
        bound = polling_response_bound(7, SERVER, periodic())
        # ceil(7/3) = 3 chunks.
        assert bound == 15 + 2 * 15 + 5

    def test_response_bound_invalid_backlog(self):
        with pytest.raises(ValueError):
            polling_response_bound(0, SERVER, periodic())

    def test_response_bound_none_when_server_unschedulable(self):
        crowded = TaskSet([Task("hog", cost=9, period=10, priority=99)])
        server = ServerSpec("srv", capacity=3, period=15, deadline=4, priority=5)
        assert polling_response_bound(3, server, crowded) is None


class TestDeferrableAnalysis:
    def test_jitter_penalty_on_lower_tasks(self):
        ps = analyze(polling_server_taskset(periodic(), SERVER))
        ds = deferrable_response_times(periodic(), SERVER)
        # The DS back-to-back effect can only worsen lower tasks.
        assert ds["lo"] >= ps.wcrt("lo")
        # Higher-priority tasks are untouched.
        assert ds["hi"] == ps.wcrt("hi")

    def test_feasibility_can_flip_vs_polling(self):
        # A system schedulable with a PS but not with a DS of the same
        # size: lo's slack is smaller than the DS jitter penalty.
        tight = TaskSet(
            [
                Task("hi", cost=2, period=10, priority=10),
                Task("lo", cost=6, period=30, deadline=15, priority=2),
            ]
        )
        assert is_feasible(polling_server_taskset(tight, SERVER))
        assert not deferrable_feasible(tight, SERVER)

    def test_feasible_case(self):
        assert deferrable_feasible(periodic(), SERVER)


class TestServerSizing:
    def test_sized_capacity_is_maximal(self):
        spec = server_sizing(periodic(), period=15, priority=5)
        assert spec is not None
        assert is_feasible(polling_server_taskset(periodic(), spec))
        bigger = ServerSpec("server", capacity=spec.capacity + 1, period=15, priority=5)
        assert not is_feasible(polling_server_taskset(periodic(), bigger))

    def test_none_when_no_room(self):
        crowded = TaskSet(
            [
                Task("a", cost=5, period=10, priority=10),
                Task("b", cost=10, period=20, priority=2),
            ]
        )
        assert server_sizing(crowded, period=15, priority=5) is None

    def test_priority_matters(self):
        low = server_sizing(periodic(), period=15, priority=1)
        high = server_sizing(periodic(), period=15, priority=99)
        assert low is not None and high is not None
        # Lowest priority: the server's own 15 ns deadline caps it at 5
        # (5 + two hi jobs + one lo job = 15).  Top priority: hi's
        # deadline caps it at 8 (2 + 8 = 10).
        assert low.capacity == 5
        assert high.capacity == 8
