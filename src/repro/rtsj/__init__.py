"""RTSJ (`javax.realtime`) emulation over the simulator.

API shape mirrors the spec (camelCase methods kept for fidelity with
the paper's code), including the paper's ``javax.realtime.extended``
package: :class:`RealtimeThreadExtended` and
:class:`FeasibilityAnalysis`.
"""

from repro.rtsj.extended import FeasibilityAnalysis, RealtimeThreadExtended
from repro.rtsj.memory import (
    AllocationContext,
    ImmortalMemory,
    LTMemory,
    MemoryAccessError,
    MemoryArea,
    ScopedMemory,
)
from repro.rtsj.params import (
    AperiodicParameters,
    PeriodicParameters,
    PriorityParameters,
    ProcessingGroupParameters,
    ReleaseParameters,
    SchedulingParameters,
    SporadicParameters,
)
from repro.rtsj.scheduler import (
    ExtendedPriorityScheduler,
    JRatePriorityScheduler,
    MultiprocessorPriorityScheduler,
    PriorityScheduler,
    RIPriorityScheduler,
    Scheduler,
)
from repro.rtsj.system import RealtimeSystem
from repro.rtsj.thread import RealtimeThread
from repro.rtsj.time import AbsoluteTime, HighResolutionTime, RelativeTime
from repro.rtsj.timer import AsyncEvent, AsyncEventHandler, OneShotTimer, PeriodicTimer

__all__ = [
    "HighResolutionTime",
    "RelativeTime",
    "AbsoluteTime",
    "SchedulingParameters",
    "PriorityParameters",
    "ReleaseParameters",
    "PeriodicParameters",
    "AperiodicParameters",
    "SporadicParameters",
    "Scheduler",
    "PriorityScheduler",
    "RIPriorityScheduler",
    "JRatePriorityScheduler",
    "ExtendedPriorityScheduler",
    "MultiprocessorPriorityScheduler",
    "ProcessingGroupParameters",
    "RealtimeThread",
    "RealtimeSystem",
    "AsyncEvent",
    "AsyncEventHandler",
    "OneShotTimer",
    "PeriodicTimer",
    "RealtimeThreadExtended",
    "FeasibilityAnalysis",
    "MemoryArea",
    "ImmortalMemory",
    "ScopedMemory",
    "LTMemory",
    "AllocationContext",
    "MemoryAccessError",
]
