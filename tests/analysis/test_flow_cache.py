"""Incremental summary cache: content addressing and hit accounting."""

import pickle

from repro.analysis.flow import FlowCache, analyze
from repro.analysis.flow.cache import FORMAT_VERSION


FILES = {
    "alpha.py": "def a():\n    return 1\n",
    "beta.py": "def b():\n    return 2\n",
    "gamma.py": "def c():\n    return 3\n",
}


def test_cold_then_warm_then_one_touched(write_package, tmp_path):
    root = write_package(FILES)
    cache_dir = tmp_path / "cache"

    c1 = FlowCache(cache_dir)
    d1, m1 = analyze([root], cache=c1)
    n = len(m1.modules)  # the three fixtures plus __init__
    assert (c1.stats.hits, c1.stats.misses) == (0, n)

    c2 = FlowCache(cache_dir)
    d2, m2 = analyze([root], cache=c2)
    assert (c2.stats.hits, c2.stats.misses) == (n, 0)
    assert [str(d) for d in d2] == [str(d) for d in d1]

    # Touch exactly one file: exactly one re-analysis.
    target = root / "beta.py"
    target.write_text(target.read_text() + "\n# a comment\n")
    c3 = FlowCache(cache_dir)
    d3, m3 = analyze([root], cache=c3)
    assert (c3.stats.hits, c3.stats.misses) == (n - 1, 1)
    assert c3.stats.stores == 1


def test_rewriting_same_content_stays_cached(write_package, tmp_path):
    root = write_package(FILES)
    cache_dir = tmp_path / "cache"
    analyze([root], cache=FlowCache(cache_dir))

    # mtime changes, content doesn't: still a full-hit run.
    target = root / "alpha.py"
    target.write_text(target.read_text())
    c = FlowCache(cache_dir)
    analyze([root], cache=c)
    assert c.stats.misses == 0


def test_version_skew_invalidates_everything(write_package, tmp_path):
    root = write_package(FILES)
    cache_dir = tmp_path / "cache"
    c1 = FlowCache(cache_dir)
    analyze([root], cache=c1)

    store = cache_dir / "summaries.pkl"
    payload = pickle.loads(store.read_bytes())
    assert payload["version"] == FORMAT_VERSION
    payload["version"] = FORMAT_VERSION - 1
    store.write_bytes(pickle.dumps(payload))

    c2 = FlowCache(cache_dir)
    analyze([root], cache=c2)
    assert c2.stats.hits == 0


def test_corrupt_store_degrades_to_empty(write_package, tmp_path):
    root = write_package(FILES)
    cache_dir = tmp_path / "cache"
    analyze([root], cache=FlowCache(cache_dir))
    (cache_dir / "summaries.pkl").write_bytes(b"not a pickle")

    c = FlowCache(cache_dir)
    diags, model = analyze([root], cache=c)
    assert c.stats.hits == 0
    assert len(model.modules) == 4


def test_cached_run_reproduces_findings(write_package, tmp_path):
    files = {
        "mint.py": "from repro.units import ms\n\n\ndef grant():\n    return ms(5)\n",
        "use.py": "from pkg.mint import grant\n\n\ndef mean(n):\n    return grant() / n\n",
    }
    root = write_package(files)
    cache_dir = tmp_path / "cache"
    d1, _ = analyze([root], cache=FlowCache(cache_dir))
    c2 = FlowCache(cache_dir)
    d2, _ = analyze([root], cache=c2)
    assert c2.stats.misses == 0
    assert [str(d) for d in d1] == [str(d) for d in d2]
    assert [d.code for d in d2] == ["RT102"]
