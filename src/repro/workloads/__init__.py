"""Workloads: the paper's concrete systems, a scenario-file parser
(measurement tool #1) and random task-set generators for ablations."""

from repro.workloads.generator import (
    GeneratorConfig,
    log_uniform_periods,
    random_taskset,
    uunifast,
)
from repro.workloads.parser import (
    Scenario,
    ScenarioError,
    format_scenario,
    load_scenario,
    parse_scenario,
)
from repro.workloads.scenarios import (
    lehoczky_example,
    paper_fault,
    paper_fault_extra_ms,
    paper_figures_taskset,
    paper_horizon,
    paper_table1,
    paper_table2,
)

__all__ = [
    "paper_table2",
    "paper_figures_taskset",
    "paper_fault",
    "paper_fault_extra_ms",
    "paper_horizon",
    "paper_table1",
    "lehoczky_example",
    "uunifast",
    "log_uniform_periods",
    "random_taskset",
    "GeneratorConfig",
    "Scenario",
    "ScenarioError",
    "parse_scenario",
    "load_scenario",
    "format_scenario",
]
