"""Shared fixture helpers for the analysis test suite."""

import textwrap

import pytest


@pytest.fixture
def write_package(tmp_path):
    """Materialize ``{relative_path: source}`` as a package under
    ``tmp_path`` and return its root directory.

    ``__init__.py`` files are created automatically for every directory
    so dotted module names resolve the way the flow layer expects.
    """

    def _write(files, root="pkg"):
        base = tmp_path / root
        for rel, source in files.items():
            p = base / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            d = p.parent
            while d != tmp_path:
                init = d / "__init__.py"
                if not init.exists():
                    init.write_text("")
                d = d.parent
            p.write_text(textwrap.dedent(source))
        return base

    return _write
