"""End-to-end reproducibility tests over the full experiment registry.

Three guarantees the executor stack makes, asserted for real:

* the registry's volatile-stripped manifest matches the committed
  golden (``golden_manifest.json``) — every spec, claim verdict and
  artifact hash is pinned;
* a second run against a warm cache is served almost entirely from
  disk (>= 90% hit rate);
* parallel execution produces byte-identical results to serial,
  witnessed by equal manifest fingerprints.

To regenerate the golden after an intentional result change::

    PYTHONPATH=src python -c "
    import json
    from repro.exec.executor import LocalExecutor
    from repro.exec.manifest import build_manifest, strip_volatile
    from repro.experiments.registry import all_specs, build_exhibit
    m, _ = build_manifest(LocalExecutor().run(all_specs(), build_exhibit))
    open('tests/experiments/golden_manifest.json', 'w').write(
        json.dumps(strip_volatile(m), indent=2, sort_keys=True) + '\n')
    "
"""

import json
from pathlib import Path

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import LocalExecutor, PoolExecutor
from repro.exec.manifest import build_manifest, manifest_fingerprint, strip_volatile
from repro.experiments.registry import all_specs, build_exhibit

GOLDEN_PATH = Path(__file__).with_name("golden_manifest.json")


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    """One serial registry run with a fresh cache, shared by the module."""
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    executor = LocalExecutor(ResultCache(cache_dir))
    results = executor.run(all_specs(), build_exhibit)
    return executor, results, cache_dir


class TestGoldenManifest:
    def test_matches_committed_golden(self, serial_run):
        _, results, _ = serial_run
        manifest, _ = build_manifest(results)
        golden = json.loads(GOLDEN_PATH.read_text())
        assert strip_volatile(manifest) == golden, (
            "registry results drifted from golden_manifest.json; if the "
            "change is intentional, regenerate it (see module docstring)"
        )

    def test_every_claim_holds(self, serial_run):
        _, results, _ = serial_run
        for r in results:
            for claim in r.value.claims():
                assert claim.holds, f"{r.spec.name}: {claim.description}"

    def test_telemetry_present_but_volatile(self, serial_run):
        executor, results, _ = serial_run
        manifest, _ = build_manifest(results, executor=executor)
        telemetry = manifest["telemetry"]
        assert {s["name"] for s in telemetry["specs"]} == {
            s.name for s in all_specs()
        }
        assert telemetry["cache"]["stores"] == len(all_specs())
        assert "telemetry" not in strip_volatile(manifest)


class TestCacheReuse:
    def test_second_run_is_cache_served(self, serial_run):
        _, _, cache_dir = serial_run
        rerun = LocalExecutor(ResultCache(cache_dir))
        results = rerun.run(all_specs(), build_exhibit)
        assert rerun.stats.hit_rate >= 0.9
        assert all(r.from_cache for r in results)

    def test_cached_results_fingerprint_identically(self, serial_run):
        _, results, cache_dir = serial_run
        rerun = LocalExecutor(ResultCache(cache_dir))
        cached = rerun.run(all_specs(), build_exhibit)
        a, _ = build_manifest(results)
        b, _ = build_manifest(cached)
        assert manifest_fingerprint(a) == manifest_fingerprint(b)


class TestParallelParity:
    def test_pool_matches_serial_fingerprint(self, serial_run):
        _, serial_results, _ = serial_run
        pool_results = PoolExecutor(2).run(all_specs(), build_exhibit)
        a, serial_artifacts = build_manifest(serial_results)
        b, pool_artifacts = build_manifest(pool_results)
        assert manifest_fingerprint(a) == manifest_fingerprint(b)
        assert pool_artifacts == serial_artifacts
