"""RT003 — every random draw must be seeded and replayable.

The paper's experiments are tables of exact numbers; a reproduction can
only be checked against them if a scenario plus a seed replays
bit-exactly.  Three stdlib habits break that:

* module-level ``random.random()`` / ``random.randint()`` … share one
  process-global, time-seeded ``Random`` — results differ run to run
  and interleave across call sites;
* ``random.Random()`` with no argument seeds from the OS;
* seeding from ``hash(...)`` looks deterministic but ``str``/``bytes``
  hashes are salted per process (PEP 456), so the "seed" changes every
  run unless ``PYTHONHASHSEED`` is pinned.

The sanctioned route is :mod:`repro.rng`: ``stable_hash`` for
process-independent key hashing and ``derive_rng`` for per-key seeded
streams, or an explicitly seeded ``random.Random`` passed down by the
caller.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import (
    Rule,
    attr_call,
    contains_call_to,
    from_imports,
    module_aliases,
    register,
)

__all__ = ["NondeterministicRandomness"]

#: Module-level functions on ``random`` that use the global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "expovariate", "gauss", "normalvariate",
        "lognormvariate", "vonmisesvariate", "paretovariate", "betavariate",
        "weibullvariate", "triangular", "getrandbits", "randbytes", "seed",
    }
)

#: ``numpy.random`` entry points that *are* explicitly seedable.
_NUMPY_SEEDED = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})

_HINT = (
    "route randomness through an injectable seeded random.Random "
    "(see repro.rng.derive_rng / stable_hash)"
)


@register
class NondeterministicRandomness(Rule):
    """RT003: randomness not routed through a seeded ``random.Random``."""

    code = "RT003"
    name = "nondeterministic-randomness"
    description = (
        "Module-level random functions, unseeded random.Random(), "
        "from-imports of global RNG functions, numpy.random module-level "
        "draws, and hash()-derived seeds are not replayable across "
        "processes."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._random_aliases = module_aliases(ctx.tree, "random")
        self._numpy_aliases = module_aliases(ctx.tree, "numpy")
        #: ``from numpy.random import default_rng [as X]`` bindings.
        self._default_rng_names = {
            local
            for local, orig in from_imports(ctx.tree, "numpy.random").items()
            if orig == "default_rng"
        }

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            bad = sorted(
                item.name for item in node.names if item.name in _GLOBAL_RNG_FUNCS
            )
            if bad:
                self.report(
                    node,
                    f"from random import {', '.join(bad)} binds the "
                    f"process-global RNG",
                    hint=_HINT,
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        base_attr = attr_call(node)
        if base_attr is not None:
            base, attr = base_attr
            if base in self._random_aliases:
                if attr in _GLOBAL_RNG_FUNCS:
                    self.report(
                        node,
                        f"{base}.{attr}() draws from the process-global RNG",
                        hint=_HINT,
                    )
                elif attr == "Random":
                    self._check_random_ctor(node, f"{base}.Random")
        if isinstance(node.func, ast.Name) and node.func.id == "Random":
            self._check_random_ctor(node, "Random")
        self._check_numpy(node)
        self.generic_visit(node)

    def _check_random_ctor(self, node: ast.Call, shown: str) -> None:
        if not node.args and not node.keywords:
            self.report(
                node,
                f"{shown}() without a seed is seeded from the OS",
                hint=_HINT,
            )
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            hashed = contains_call_to(arg, frozenset({"hash"}))
            if hashed is not None:
                self.report(
                    node,
                    f"{shown}(...) seeded via builtins.hash(), which is "
                    f"salted per process (PEP 456)",
                    hint="use repro.rng.stable_hash / derive_rng for "
                    "process-independent key hashing",
                )
                return

    def _check_numpy(self, node: ast.Call) -> None:
        # numpy.random.<func>() — module-level global-state draws, plus
        # default_rng() without an explicit seed (OS-entropy seeded).
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self._numpy_aliases
        ):
            if func.attr not in _NUMPY_SEEDED:
                self.report(
                    node,
                    f"numpy.random.{func.attr}() uses numpy's global RNG state",
                    hint="use numpy.random.default_rng(seed) and pass the "
                    "generator down",
                )
            elif func.attr == "default_rng" and not node.args and not node.keywords:
                self._report_unseeded_default_rng(node, "numpy.random.default_rng")
        elif (
            isinstance(func, ast.Name)
            and func.id in self._default_rng_names
            and not node.args
            and not node.keywords
        ):
            self._report_unseeded_default_rng(node, func.id)

    def _report_unseeded_default_rng(self, node: ast.Call, shown: str) -> None:
        self.report(
            node,
            f"{shown}() without an explicit seed is seeded from the OS",
            hint="pass a seed derived via repro.rng.stable_hash and hand "
            "the generator down",
        )
