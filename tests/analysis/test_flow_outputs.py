"""SARIF rendering, baseline ratchet, and autofixes."""

import json

import pytest

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow import (
    diff_baseline,
    fingerprint,
    fix_source,
    load_baseline,
    render_sarif,
    save_baseline,
)


def diag(code="RT101", message="m", path="src/x.py", line=3, column=2, **kw):
    severity = kw.pop("severity", Severity.ERROR)
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        path=path,
        line=line,
        column=column,
        **kw,
    )


class TestSarif:
    def test_structure(self):
        doc = json.loads(render_sarif([diag(), diag(code="RT001", line=9)]))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error", "warning")
        assert len(run["results"]) == 2
        for res in run["results"]:
            # ruleIndex must point at the ruleId's descriptor.
            assert rule_ids[res["ruleIndex"]] == res["ruleId"]
            assert res["level"] == "error"
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == "src/x.py"
            assert loc["region"]["startLine"] >= 1

    def test_all_registered_rules_have_descriptors(self):
        doc = json.loads(render_sarif([]))
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"RT001", "RT099", "RT101", "RT102", "RT103", "RT104"} <= ids

    def test_file_level_finding_omits_region(self):
        doc = json.loads(render_sarif([diag(code="RT000", line=0, column=0)]))
        (res,) = doc["runs"][0]["results"]
        assert "region" not in res["locations"][0]["physicalLocation"]

    def test_warning_level_mapped(self):
        doc = json.loads(
            render_sarif([diag(code="RT104", severity=Severity.WARNING)])
        )
        assert doc["runs"][0]["results"][0]["level"] == "warning"

    def test_validates_against_sarif_core_schema(self):
        # The required-property core of the SARIF 2.1.0 schema (the
        # full OASIS document isn't vendored; this captures every
        # constraint GitHub code scanning rejects uploads over).
        jsonschema = pytest.importorskip("jsonschema")
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                        "properties": {
                                            "rules": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "required": ["id"],
                                                },
                                            }
                                        },
                                    }
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["message"],
                                    "properties": {
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "level": {
                                            "enum": [
                                                "none",
                                                "note",
                                                "warning",
                                                "error",
                                            ]
                                        },
                                        "locations": {
                                            "type": "array",
                                            "items": {
                                                "type": "object",
                                                "properties": {
                                                    "physicalLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "region": {
                                                                "type": "object",
                                                                "properties": {
                                                                    "startLine": {
                                                                        "type": "integer",
                                                                        "minimum": 1,
                                                                    },
                                                                    "startColumn": {
                                                                        "type": "integer",
                                                                        "minimum": 1,
                                                                    },
                                                                },
                                                            }
                                                        },
                                                    }
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        doc = json.loads(
            render_sarif(
                [
                    diag(),
                    diag(code="RT104", severity=Severity.WARNING),
                    diag(code="RT000", line=0, column=0),
                ]
            )
        )
        jsonschema.validate(doc, schema)


class TestBaseline:
    def test_fingerprint_ignores_line_numbers(self):
        assert fingerprint(diag(line=3)) == fingerprint(diag(line=300))
        assert fingerprint(diag()) != fingerprint(diag(message="other"))
        assert fingerprint(diag()) != fingerprint(diag(code="RT102"))

    def test_round_trip_and_ratchet(self, tmp_path):
        bl_path = tmp_path / "baseline.json"
        legacy = diag(message="legacy finding")
        save_baseline(bl_path, [legacy])

        # Same finding at a new line: still baselined.
        moved = diag(message="legacy finding", line=99)
        fresh = diag(message="new finding")
        diff = diff_baseline([moved, fresh], load_baseline(bl_path))
        assert [d.message for d in diff.new] == ["new finding"]
        assert [d.message for d in diff.legacy] == ["legacy finding"]
        assert diff.resolved == 0
        assert not diff.ok

    def test_resolved_entries_counted(self, tmp_path):
        bl_path = tmp_path / "baseline.json"
        save_baseline(bl_path, [diag(), diag(message="gone")])
        diff = diff_baseline([diag()], load_baseline(bl_path))
        assert diff.ok
        assert diff.resolved == 1

    def test_duplicate_findings_match_as_multiset(self, tmp_path):
        bl_path = tmp_path / "baseline.json"
        save_baseline(bl_path, [diag()])
        # Two identical findings, one baselined slot: one is new.
        diff = diff_baseline([diag(), diag()], load_baseline(bl_path))
        assert len(diff.legacy) == 1
        assert len(diff.new) == 1

    def test_missing_baseline_means_everything_new(self, tmp_path):
        diff = diff_baseline([diag()], load_baseline(tmp_path / "none.json"))
        assert len(diff.new) == 1 and not diff.ok


class TestAutofix:
    def test_hash_seeded_random_rewritten_with_import(self):
        src = (
            "import random\n"
            "\n"
            "\n"
            "def make(name):\n"
            "    return random.Random(hash(('exp', name)))\n"
        )
        fixed, fixes = fix_source(src)
        assert "derive_rng(('exp', name))" in fixed
        assert "from repro.rng import derive_rng" in fixed
        assert "hash(" not in fixed
        assert len(fixes) == 2
        compile(fixed, "<fixed>", "exec")

    def test_existing_import_not_duplicated(self):
        src = (
            "from random import Random\n"
            "from repro.rng import derive_rng\n"
            "\n"
            "\n"
            "def make(n):\n"
            "    return Random(hash(n))\n"
        )
        fixed, _ = fix_source(src)
        assert fixed.count("from repro.rng import derive_rng") == 1
        assert "derive_rng(n)" in fixed

    def test_seeded_random_without_hash_untouched(self):
        src = "import random\n\n\ndef make(seed):\n    return random.Random(seed)\n"
        fixed, fixes = fix_source(src)
        assert fixed == src and fixes == []

    def test_stale_noqa_code_dropped_live_kept(self):
        src = (
            "import time\n"
            "\n"
            "\n"
            "def snap(stamp=None):\n"
            "    return stamp or time.time()  # noqa: RT002, RT003\n"
        )
        fixed, fixes = fix_source(src)
        assert "# noqa: RT002" in fixed
        assert "RT003" not in fixed
        assert len(fixes) == 1

    def test_blanket_noqa_that_suppresses_nothing_removed(self):
        src = "x = 1  # noqa\n"
        fixed, _ = fix_source(src)
        assert "noqa" not in fixed

    def test_fix_is_idempotent(self):
        src = (
            "import random\n"
            "\n"
            "\n"
            "def make(name):\n"
            "    return random.Random(hash(name))\n"
        )
        once, _ = fix_source(src)
        twice, again = fix_source(once)
        assert twice == once and again == []
