"""Time units and formatting.

All simulator and analysis code works in **integer nanoseconds** to keep
arithmetic exact (the paper's tooling measures with RDTSC at nanosecond
precision; floats would accumulate rounding error over long traces).
These helpers convert between human units and nanoseconds.
"""

from __future__ import annotations

from fractions import Fraction

#: One nanosecond (the base unit).
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
S = 1_000_000_000


def ns(value: float | int) -> int:
    """Return *value* nanoseconds as an integer tick count."""
    return _to_ticks(value, NS)


def us(value: float | int) -> int:
    """Return *value* microseconds in nanoseconds."""
    return _to_ticks(value, US)


def ms(value: float | int) -> int:
    """Return *value* milliseconds in nanoseconds."""
    return _to_ticks(value, MS)


def seconds(value: float | int) -> int:
    """Return *value* seconds in nanoseconds."""
    return _to_ticks(value, S)


def _to_ticks(value: float | int, scale: int) -> int:
    """Convert ``value * scale`` to an exact integer tick count.

    Uses :class:`fractions.Fraction` so that e.g. ``ms(0.1)`` is exact;
    raises :class:`ValueError` when the result is not an integer number
    of nanoseconds (sub-nanosecond quantities are not representable).
    """
    ticks = Fraction(str(value)) * scale if isinstance(value, float) else Fraction(value) * scale
    if ticks.denominator != 1:
        raise ValueError(f"{value} x {scale}ns is not an integer number of nanoseconds")
    return int(ticks)


def parse_duration(token: str, scale: int) -> int:
    """Parse a textual duration *token* at *scale* ns per unit, exactly.

    The token goes through :class:`~fractions.Fraction` — never through
    ``float`` — so ``parse_duration("0.1", MS)`` is exactly ``100_000``
    and values like ``"1/3"`` work when the scale divides out.  Raises
    :class:`ValueError` for malformed tokens and for quantities that are
    not an integer number of nanoseconds.
    """
    try:
        value = Fraction(token)
    except (ValueError, ZeroDivisionError) as exc:
        raise ValueError(f"malformed duration {token!r}") from exc
    ticks = value * scale
    if ticks.denominator != 1:
        raise ValueError(f"{token} x {scale}ns is not an integer number of nanoseconds")
    return int(ticks)


def to_ms(ticks: int) -> float:
    """Convert nanosecond *ticks* to (possibly fractional) milliseconds."""
    return ticks / MS


def to_us(ticks: int) -> float:
    """Convert nanosecond *ticks* to (possibly fractional) microseconds."""
    return ticks / US


def fmt_ms(ticks: int) -> str:
    """Format *ticks* as a compact millisecond string (``'29ms'``, ``'1.5ms'``)."""
    whole, rem = divmod(ticks, MS)
    if rem == 0:
        return f"{whole}ms"
    return f"{ticks / MS:g}ms"


def fmt_time(ticks: int) -> str:
    """Format *ticks* with an auto-selected unit (ns, us, ms or s)."""
    if ticks == 0:
        return "0"
    for scale, suffix in ((S, "s"), (MS, "ms"), (US, "us")):
        if ticks % scale == 0:
            return f"{ticks // scale}{suffix}"
        if abs(ticks) >= scale:
            return f"{ticks / scale:g}{suffix}"
    return f"{ticks}ns"
