"""Unit tests for the allowance computations (paper §4.2, §4.3)."""

import pytest

from repro.core.allowance import (
    ResidualAllowanceManager,
    additive_adjusted_wcrt,
    adjusted_wcrt,
    compute_equitable,
    equitable_allowance,
    max_such_that,
    system_adjusted_wcrt,
    system_allowance,
    task_allowance,
)
from repro.core.feasibility import is_feasible
from repro.core.task import Task, TaskSet
from repro.units import ms


class TestMaxSuchThat:
    def test_threshold_found(self):
        assert max_such_that(lambda x: x <= 1234, 10_000) == 1234

    def test_zero_threshold(self):
        assert max_such_that(lambda x: x == 0, 100) == 0

    def test_hi_itself_feasible(self):
        assert max_such_that(lambda x: True, 77) == 77

    def test_predicate_false_at_zero_raises(self):
        with pytest.raises(ValueError):
            max_such_that(lambda x: False, 10)

    def test_negative_hi_raises(self):
        with pytest.raises(ValueError):
            max_such_that(lambda x: True, -1)

    @pytest.mark.parametrize("threshold", [0, 1, 2, 3, 7, 63, 64, 65, 999, 1000])
    def test_exact_on_many_thresholds(self, threshold):
        assert max_such_that(lambda x: x <= threshold, 1000) == threshold

    @pytest.mark.parametrize("hi", [1, 2, 3, 100, 1_000_000])
    def test_boundary_thresholds(self, hi):
        # The galloping probe must stay exact at the edges of [0, hi]:
        # threshold at 0 (first step already fails), at hi (never
        # fails), and at hi - 1 (fails only at the very top).
        assert max_such_that(lambda x: x <= 0, hi) == 0
        assert max_such_that(lambda x: x <= hi, hi) == hi
        assert max_such_that(lambda x: x <= hi - 1, hi) == hi - 1

    def test_zero_hi_single_probe(self):
        probes = []

        def ok(x):
            probes.append(x)
            return True

        assert max_such_that(ok, 0) == 0
        assert probes == [0]

    def test_galloping_probe_count_is_logarithmic(self):
        # Doubling steps then bisection: O(log threshold) probes, not
        # O(log hi) — small allowances stay cheap under a huge ceiling.
        probes = []

        def ok(x):
            probes.append(x)
            return x <= 5

        assert max_such_that(ok, 10**12) == 5
        assert len(probes) <= 8

    def test_probes_never_leave_range(self):
        seen = []

        def ok(x):
            seen.append(x)
            return x <= 700

        hi = 1000
        assert max_such_that(ok, hi) == 700
        assert all(0 <= x <= hi for x in seen)


class TestEquitableAllowance:
    def test_paper_value(self, table2):
        assert equitable_allowance(table2) == ms(11)

    def test_maximality(self, table2):
        a = equitable_allowance(table2)
        assert is_feasible(table2.inflated(a))
        assert not is_feasible(table2.inflated(a + 1))

    def test_zero_for_tight_system(self):
        # lo's deadline exactly equals its WCRT: no slack at all.
        ts = TaskSet(
            [
                Task("hi", cost=5, period=10, priority=2),
                Task("lo", cost=5, period=20, deadline=10, priority=1),
            ]
        )
        assert equitable_allowance(ts) == 0

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            equitable_allowance(TaskSet([]))

    def test_infeasible_input_rejected(self):
        ts = TaskSet(
            [
                Task("hi", cost=5, period=10, priority=2),
                Task("lo", cost=5, period=20, deadline=9, priority=1),
            ]
        )
        with pytest.raises(ValueError):
            equitable_allowance(ts)

    def test_single_task(self):
        ts = TaskSet([Task("only", cost=3, period=10, priority=1)])
        assert equitable_allowance(ts) == 7


class TestAdjustedWcrt:
    def test_paper_table3(self, table2):
        adj = adjusted_wcrt(table2, ms(11))
        assert adj == {"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}

    def test_additive_matches_exact_on_paper_system(self, table2):
        assert adjusted_wcrt(table2, ms(11)) == additive_adjusted_wcrt(table2, ms(11))

    def test_zero_allowance_is_plain_wcrt(self, table2):
        adj = adjusted_wcrt(table2, 0)
        assert adj == {"tau1": ms(29), "tau2": ms(58), "tau3": ms(87)}

    def test_too_large_allowance_raises(self, table2):
        with pytest.raises(ValueError):
            adjusted_wcrt(table2, ms(12))

    def test_additive_can_exceed_exact_with_multiple_jobs(self):
        # A busy window containing several jobs of the higher task makes
        # the additive form count the allowance once per *task*, while
        # the exact recomputation counts it once per *job* — the two
        # differ, and the exact value dominates.
        ts = TaskSet(
            [
                Task("hi", cost=2, period=5, priority=2),
                Task("lo", cost=5, period=50, deadline=40, priority=1),
            ]
        )
        a = equitable_allowance(ts)
        exact = adjusted_wcrt(ts, a)
        additive = additive_adjusted_wcrt(ts, a)
        assert exact["lo"] != additive["lo"]


class TestTaskAllowance:
    def test_paper_values_all_33(self, table2):
        assert system_allowance(table2) == {
            "tau1": ms(33),
            "tau2": ms(33),
            "tau3": ms(33),
        }

    def test_maximality_per_task(self, table2):
        for name in ("tau1", "tau2", "tau3"):
            a = task_allowance(table2, name)
            assert is_feasible(
                table2.with_costs({name: table2[name].cost + a})
            )
            assert not is_feasible(
                table2.with_costs({name: table2[name].cost + a + 1})
            )

    def test_consumed_reduces_allowance(self, table2):
        # Paper: "subtracting the more priority tasks overrun".
        assert task_allowance(table2, "tau2", {"tau1": ms(20)}) == ms(13)

    def test_consumed_by_target_ignored(self, table2):
        assert task_allowance(table2, "tau1", {"tau1": ms(99)}) == ms(33)

    def test_zero_when_base_infeasible(self, table2):
        # tau1 already consumed more than the whole system slack.
        assert task_allowance(table2, "tau2", {"tau1": ms(40)}) == 0

    def test_at_least_equitable(self, table2):
        # A single task can always take at least the equitable share.
        eq = equitable_allowance(table2)
        for t in table2:
            assert task_allowance(table2, t.name) >= eq


class TestSystemAdjustedWcrt:
    def test_paper_thresholds(self, table2):
        adj = system_adjusted_wcrt(table2)
        assert adj == {
            "tau1": ms(29 + 33),
            "tau2": ms(58 + 33),
            "tau3": ms(87 + 33),
        }

    def test_thresholds_within_deadlines(self, table2):
        adj = system_adjusted_wcrt(table2)
        for t in table2:
            assert adj[t.name] <= t.deadline

    def test_dominates_plain_wcrt(self, table2):
        from repro.core.feasibility import wc_response_time

        adj = system_adjusted_wcrt(table2)
        for t in table2:
            assert adj[t.name] >= wc_response_time(t, table2)


class TestComputeEquitable:
    def test_bundle(self, table2):
        bundle = compute_equitable(table2)
        assert bundle.value == ms(11)
        assert bundle.stop_after["tau3"] == ms(120)


class TestResidualAllowanceManager:
    def test_first_grant_is_full(self, table2):
        mgr = ResidualAllowanceManager(table2)
        assert mgr.grant("tau1") == ms(33)

    def test_grant_shrinks_after_overrun(self, table2):
        mgr = ResidualAllowanceManager(table2)
        mgr.record_overrun("tau1", ms(20))
        assert mgr.grant("tau2") == ms(13)

    def test_paper_subtraction_formula_agrees(self, table2):
        mgr = ResidualAllowanceManager(table2)
        mgr.record_overrun("tau1", ms(20))
        assert mgr.paper_subtraction_grant("tau2") == mgr.grant("tau2") == ms(13)

    def test_lower_priority_overrun_does_not_subtract(self, table2):
        mgr = ResidualAllowanceManager(table2)
        mgr.record_overrun("tau3", ms(10))
        # The paper's formula only subtracts higher-priority overruns.
        assert mgr.paper_subtraction_grant("tau1") == ms(33)

    def test_reset(self, table2):
        mgr = ResidualAllowanceManager(table2)
        mgr.record_overrun("tau1", ms(30))
        mgr.reset()
        assert mgr.grant("tau2") == ms(33)

    def test_negative_overrun_rejected(self, table2):
        mgr = ResidualAllowanceManager(table2)
        with pytest.raises(ValueError):
            mgr.record_overrun("tau1", -1)

    def test_accumulates(self, table2):
        mgr = ResidualAllowanceManager(table2)
        mgr.record_overrun("tau1", ms(10))
        mgr.record_overrun("tau1", ms(10))
        assert mgr.grant("tau2") == ms(13)
