"""Warm-started analysis fast path — :class:`AnalysisContext`.

The paper's treatments all reduce to *repeated* fixed-point
response-time analysis: every allowance / sensitivity value is a binary
search whose predicate re-runs the Lehoczky recurrence of Figure 2 over
a cost-perturbed copy of the task set.  Running each probe cold is the
dominant cost of the analysis layer (see
``benchmarks/bench_analysis_fastpath.py``).  An :class:`AnalysisContext`
owns one task set and makes those probes incremental, **bit-for-bit
exact** with the cold path in :mod:`repro.core.feasibility`:

* **warm-started recurrences** — the interference recurrence
  ``R = base + sum_j ceil(R / T_j) * C_j`` has a right-hand side that is
  monotone non-decreasing in ``R`` *and* in every cost, so its least
  fixed point is non-decreasing in costs and iterating from any value at
  or below it converges to exactly it (DESIGN.md §3.5).  The fixed point
  of a *lower-cost* probe is therefore a valid starting iterate for any
  *higher-cost* probe.  Better: alongside each fixed point ``R`` the
  context stores the interference multiplicities ``k_j = ceil(R/T_j)``,
  their level job count ``S = (q+1) + sum_j k_j`` and the nearest
  ceiling boundary ``m = min_j k_j*T_j``.  One evaluation of the
  recurrence at ``R`` is then pure arithmetic on stored integers —
  ``f'(R) = R + S*delta`` for a uniform inflation ``delta`` — and
  whenever that lands at or below ``m`` no ``ceil`` changed, so it *is*
  the new least fixed point: the whole probe costs O(1) per job, no
  divisions;
* **early-exit verdicts** — a feasibility probe only needs a boolean.
  Iterates grow monotonically toward the fixed point, so the moment an
  iterate exceeds ``q*T_i + D_i`` the task provably misses its deadline
  and the probe is infeasible; tasks are checked most-fragile-first
  (smallest base slack) so infeasible probes abort almost immediately;
* **an exact-input memo** — worst-case response times are keyed by the
  mathematical inputs that determine them (the task's cost/period and
  its interferers' costs/periods), so membership changes — the repeated
  ``addToFeasibility`` calls of the RTSJ layer and the admission
  controller — recompute only the priority levels the change can affect.

Views come in *cost-monotone families*: within one family, a larger
parameter must mean pointwise larger-or-equal costs (that is what makes
the warm start valid across binary-search probes).  The two families
used by the paper's searches are built in —
:meth:`AnalysisContext.with_inflated_costs` (equitable allowance,
uniform ``+delta``) and :meth:`AnalysisContext.with_task_cost` (solo
allowance, one task's cost replaced); :meth:`AnalysisContext.monotone_view`
admits caller-defined families (the sensitivity layer's multiplicative
scaling).
"""

from __future__ import annotations

from math import gcd
from operator import mul
from typing import Mapping

from repro.core.feasibility import (
    MAX_JOBS_PER_BUSY_PERIOD,
    FeasibilityReport,
    TaskReport,
    WeaklyHardReport,
    WeaklyHardTaskReport,
    load_test,
    wc_response_time,
    weakly_hard_response_time,
)
from repro.core.task import Task, TaskSet

__all__ = ["AnalysisContext", "AnalysisView"]

#: Verdict-mode marker: the task provably misses its deadline; the exact
#: WCRT was not computed (the iteration aborted early).
_ABORTED = object()
_MISSING = object()

# Cost-delta classifications for the O(1) warm path (see _delta_info).
_D_ZERO = 0  # identical costs: stored fixed points are the answer
_D_UNIFORM = 1  # every cost larger by the same delta (inflate family)
_D_SINGLE = 2  # exactly one cost differs (solo-overrun family)
_D_GENERAL = 3  # arbitrary pointwise-larger costs (user families)


class AnalysisContext:
    """Incremental analysis over one task set and its cost perturbations.

    The context caches three things, all exact:

    * per-view worst-case response times and feasibility verdicts;
    * converged per-job fixed-point records ``(R, S, m, K)``, indexed by
      (family, parameter), used to warm-start — usually in O(1) — any
      higher-parameter probe of the same family;
    * a memo of WCRTs keyed by their exact mathematical inputs, shared
      by :meth:`analyze_set` across membership changes.

    Structure (names, periods, deadlines, priorities) is fixed; only
    costs vary across views.
    """

    def __init__(self, taskset: TaskSet, *, memo: dict | None = None):
        self.taskset = taskset
        tasks = taskset.tasks
        self._n = len(tasks)
        self._names = tuple(t.name for t in tasks)
        self._rank_of = {t.name: i for i, t in enumerate(tasks)}
        self._periods = tuple(t.period for t in tasks)
        self._deadlines = tuple(t.deadline for t in tasks)
        self._base_costs = tuple(t.cost for t in tasks)
        # Tasks are sorted by decreasing priority, so the level-i set
        # (priority >= P_i) is the prefix ending at i's priority group.
        level_end: list[int] = []
        prios = [t.priority for t in tasks]
        i = 0
        while i < self._n:
            j = i
            while j + 1 < self._n and prios[j + 1] == prios[i]:
                j += 1
            level_end.extend([j] * (j - i + 1))
            i = j + 1
        self._level_end = tuple(level_end)
        self._interferers = tuple(
            tuple(j for j in range(level_end[i] + 1) if j != i)
            for i in range(self._n)
        )
        self._interferer_periods = tuple(
            tuple(self._periods[j] for j in idx) for idx in self._interferers
        )
        #: (family, param) -> (costs, {rank: [(R, S, m, K) per job]})
        self._fixpoints: dict[tuple, tuple[tuple[int, ...], dict[int, list]]] = {}
        #: family -> sorted params that have stored fixed points
        self._family_params: dict[tuple, list[int]] = {}
        #: family -> largest param whose level loads are all proven <= 1
        #: (level load is pointwise monotone in costs, hence in param)
        self._levels_ok: dict[tuple, int] = {}
        self._views: dict[tuple, "AnalysisView"] = {}
        #: exact-input memo: (C, T, ((C_j, T_j), ...)) -> wcrt | None
        self._memo: dict[tuple, int | None] = memo if memo is not None else {}
        self._order: tuple[int, ...] | None = None
        #: rank -> (nb, db, nh, dh): base interferer utilization nb/db
        #: and ceiling-density sum(1/T_j) = nh/dh, both gcd-reduced
        self._iutil_base: dict[int, tuple[int, int, int, int]] = {}

    # -- views -----------------------------------------------------------------
    def base(self) -> "AnalysisView":
        """The unperturbed task set (warm-start floor for every family)."""
        return self._view(("base",), 0, self._base_costs)

    def with_inflated_costs(self, delta: int) -> "AnalysisView":
        """Every cost inflated by *delta* ns — the §4.2 search family."""
        if delta < 0:
            raise ValueError("delta must be >= 0")
        return self._view(
            ("inflate",), delta, tuple(c + delta for c in self._base_costs)
        )

    def with_task_cost(self, name: str, cost: int) -> "AnalysisView":
        """One task's cost replaced — the §4.3 solo-overrun family."""
        rank = self._rank_of[name]
        if cost <= 0:
            raise ValueError(f"{name}: cost must be > 0, got {cost}")
        costs = list(self._base_costs)
        costs[rank] = cost
        return self._view(("cost", name), cost, tuple(costs))

    def monotone_view(
        self, family: str, param: int, costs: Mapping[str, int]
    ) -> "AnalysisView":
        """A caller-defined cost-monotone family.

        Contract: within one *family* string, ``p1 <= p2`` must imply
        ``costs(p1) <= costs(p2)`` pointwise — that is what makes
        warm-starting a higher-parameter probe from a lower one valid.
        Tasks absent from *costs* keep their base cost.
        """
        vec = tuple(
            costs.get(self._names[i], self._base_costs[i]) for i in range(self._n)
        )
        return self._view(("user", family), param, vec)

    def _view(self, family: tuple, param: int, costs: tuple[int, ...]) -> "AnalysisView":
        key = (family, param)
        view = self._views.get(key)
        if view is not None and view.costs == costs:
            return view
        for i, c in enumerate(costs):
            if c <= 0:
                raise ValueError(f"{self._names[i]}: cost must be > 0, got {c}")
            if c > self._deadlines[i] and c > self._periods[i]:
                # Mirror Task.__post_init__: such a probe could never be
                # constructed cold either.
                raise ValueError(
                    f"{self._names[i]}: cost {c} exceeds both deadline and period"
                )
        view = AnalysisView(self, family, param, costs)
        self._views[key] = view
        return view

    # -- context-level conveniences -----------------------------------------------
    def analyze(self) -> FeasibilityReport:
        """Full report for the owned set (cold-path identical)."""
        return self.base().analyze()

    def is_feasible(self) -> bool:
        return self.base().feasible

    def wcrt(self, name: str) -> int | None:
        return self.base().wcrt(name)

    # -- parametric threshold sweeps (the §4 allowance searches) -------------------
    def max_inflation(self, hi: int) -> int:
        """Largest ``a`` in ``[0, hi]`` with every cost inflated by ``a``
        still feasible — the §4.2 search, computed as an exact
        parametric sweep instead of a binary search.

        Within one ceiling region every fixed point is affine in ``a``
        (``R(a+e) = R(a) + S*e`` while no ``ceil`` changes), so the
        sweep advances ``a`` by the largest provably safe step in pure
        arithmetic and only pays an exact recompute at each ceiling /
        busy-period-closure crossing.  Total work is proportional to the
        ceilings crossed *once*, not once per probe.  The base set must
        be feasible.
        """
        return self._threshold_sweep(("inflate",), None, 0, hi)

    def max_task_cost_delta(self, name: str, hi: int) -> int:
        """Largest ``x`` in ``[0, hi]`` with the named task's cost
        raised by ``x`` still feasible — the §4.3 solo-overrun search,
        swept parametrically like :meth:`max_inflation`."""
        rank = self._rank_of[name]
        return self._threshold_sweep(("cost", name), rank, self._base_costs[rank], hi)

    def _level_cap(self, target: int | None) -> int:
        """Largest parameter delta keeping every level load <= 1.

        Level loads are prefix sums, so the full-set load dominates: the
        cap solves ``L0 + delta*H <= 1`` exactly (uniform inflation,
        ``H = sum 1/T_j``) or ``L0 + x/T_target <= 1`` (solo overrun).
        """
        num0, den0 = self.base()._levels()[self._n - 1]
        if num0 >= den0:
            return 0
        if target is not None:
            return (den0 - num0) * self._periods[target] // den0
        num_h, den_h = 0, 1
        for t in self._periods:
            num_h = num_h * t + den_h
            den_h *= t
        g = gcd(num_h, den_h)
        return (den0 - num0) * (den_h // g) // (den0 * (num_h // g))

    def _threshold_sweep(
        self, family: tuple, target: int | None, base_param: int, hi: int
    ) -> int:
        """Shared search core: largest delta in ``[0, hi]`` keeping the
        family's view feasible.  Precondition: feasible at delta 0.

        Feasibility decomposes per rank — each rank's WCRT is monotone
        in the family parameter, so the global threshold is the minimum
        of per-rank thresholds.  Ranks are visited most-fragile-first
        with a running minimum *best*: a rank whose verdict at *best*
        already passes costs exactly one single-rank probe; only ranks
        that lower the minimum pay a bisection of single-rank probes.
        This replaces n-rank probes per global search step with
        one-rank probes, and the warm-started recurrences make each of
        those nearly free.
        """
        if hi <= 0:
            return 0
        cap = self._level_cap(target)
        if hi > cap:
            hi = cap  # beyond the cap some level load exceeds 1
            if hi <= 0:
                return 0
        # Every parameter visited stays at or below the cap, so level
        # loads never need recomputing anywhere in this family.
        if base_param + hi > self._levels_ok.get(family, -1):
            self._levels_ok[family] = base_param + hi
        level_end = self._level_end
        best = hi
        for rank in self._probe_order():
            if target is not None and target != rank and target > level_end[rank]:
                continue  # the perturbed task never interferes here
            if self._rank_ok_at(family, target, base_param, best, rank):
                continue
            lo, hi_open = 0, best  # rank passes at lo, fails at hi_open
            while lo + 1 < hi_open:
                mid = (lo + hi_open) // 2
                if self._rank_ok_at(family, target, base_param, mid, rank):
                    lo = mid
                else:
                    hi_open = mid
            best = lo
            if best == 0:
                break
        return best

    def _view_at(
        self, family: tuple, target: int | None, base_param: int, delta: int
    ) -> "AnalysisView":
        if target is None:
            return self.with_inflated_costs(delta)
        return self.with_task_cost(self._names[target], base_param + delta)

    def _rank_ok_at(
        self, family: tuple, target: int | None, base_param: int, delta: int, rank: int
    ) -> bool:
        """Does *rank* meet its deadline at this family parameter?"""
        view = self._view_at(family, target, base_param, delta)
        res = view._results.get(rank, _MISSING)
        if res is _MISSING:
            res = view._compute_rank(rank, bounded=True)
            view._results[rank] = res
        return not (
            res is _ABORTED or res is None or res > self._deadlines[rank]  # type: ignore[operator]
        )

    # -- exact-input memo (membership-change fast path) ----------------------------
    def wcrt_of(self, task: Task, taskset: TaskSet) -> int | None:
        """Memoized :func:`~repro.core.feasibility.wc_response_time`.

        Keyed by the exact inputs that determine the WCRT — the task's
        (cost, period) and its interferers' (cost, period) pairs — so
        repeated analyses of overlapping sets (``addToFeasibility`` /
        admission-control trials) recompute only what changed.
        """
        hp = taskset.higher_or_equal_priority(task)
        key = (task.cost, task.period, tuple((t.cost, t.period) for t in hp))
        hit = self._memo.get(key, _MISSING)
        if hit is not _MISSING:
            return hit  # type: ignore[return-value]
        value = wc_response_time(task, taskset)
        self._memo[key] = value
        return value

    def analyze_set(self, taskset: TaskSet) -> FeasibilityReport:
        """Cold-identical :func:`~repro.core.feasibility.analyze`, with
        per-task results served from the exact-input memo."""
        per_task = {t.name: TaskReport(t, self.wcrt_of(t, taskset)) for t in taskset}
        return FeasibilityReport(
            taskset=taskset, load=load_test(taskset), per_task=per_task
        )

    def is_feasible_set(self, taskset: TaskSet) -> bool:
        return self.analyze_set(taskset).feasible

    # -- weakly-hard (m, K) analysis (memoized, warm-context compatible) -----
    def weakly_hard_wcrt_of(
        self,
        task: Task,
        taskset: TaskSet,
        degraded: Mapping[str, int] | None = None,
    ) -> int | None:
        """Memoized :func:`~repro.core.feasibility.weakly_hard_response_time`.

        Same exact-input discipline as :meth:`wcrt_of`, with the (m, K)
        constraints and degraded costs joining the key — the hard and
        weakly-hard memo entries of one level never collide because the
        key shapes differ.
        """
        hp = taskset.higher_or_equal_priority(task)

        def cell(t: Task) -> tuple:
            mk = t.mk
            cd = 0 if degraded is None else degraded.get(t.name, 0)
            return (t.cost, t.period, None if mk is None else (mk.m, mk.k), cd)

        key = ("mk", cell(task), tuple(cell(t) for t in hp))
        hit = self._memo.get(key, _MISSING)
        if hit is not _MISSING:
            return hit  # type: ignore[return-value]
        value = weakly_hard_response_time(task, taskset, degraded=degraded)
        self._memo[key] = value
        return value

    def weakly_hard_analyze_set(
        self,
        taskset: TaskSet,
        degraded: Mapping[str, int] | None = None,
    ) -> WeaklyHardReport:
        """Cold-identical :func:`~repro.core.feasibility.weakly_hard_analyze`,
        with per-task results served from the exact-input memo."""
        per_task = {
            t.name: WeaklyHardTaskReport(
                t, self.weakly_hard_wcrt_of(t, taskset, degraded)
            )
            for t in taskset
        }
        return WeaklyHardReport(taskset=taskset, per_task=per_task, degraded=degraded)

    # -- internals -----------------------------------------------------------------
    def _iutil_base_rank(self, rank: int) -> tuple[int, int, int, int]:
        """Base-cost interferer utilization ``sum C_j/T_j = nb/db`` and
        ceiling density ``sum 1/T_j = nh/dh`` at *rank*, gcd-reduced.

        Computed once per rank and shared by every view: a view's exact
        interferer utilization is this plus a closed-form family delta
        (``+ delta*nh/dh`` for uniform inflation, ``+ x/T_target`` for a
        solo overrun), so probe views never pay a level-fraction pass.
        """
        cached = self._iutil_base.get(rank)
        if cached is None:
            nb, db, nh, dh = 0, 1, 0, 1
            base_costs = self._base_costs
            periods = self._periods
            for j in self._interferers[rank]:
                t = periods[j]
                nb = nb * t + base_costs[j] * db
                db *= t
                g = gcd(nb, db)
                nb //= g
                db //= g
                nh = nh * t + dh
                dh *= t
                g = gcd(nh, dh)
                nh //= g
                dh //= g
            self._iutil_base[rank] = cached = (nb, db, nh, dh)
        return cached

    def _probe_order(self) -> tuple[int, ...]:
        """Ranks ordered most-fragile-first (smallest base slack), so
        verdict probes fail fast.  Any order yields the same verdict."""
        if self._order is None:
            base = self.base()
            base.feasible  # noqa: B018 - populates base._results
            deadlines = self._deadlines

            def key(i: int) -> tuple[int, int, int]:
                res = base._results.get(i, _MISSING)
                if res is _ABORTED or res is None:
                    return (0, 0, i)
                if res is _MISSING:
                    return (2, 0, i)
                return (1, deadlines[i] - res, i)

            self._order = tuple(sorted(range(self._n), key=key))
        return self._order

    def _register_param(self, family: tuple, param: int) -> None:
        params = self._family_params.setdefault(family, [])
        if param not in params:
            params.append(param)
            params.sort()

    def _warm_sources(
        self, family: tuple, param: int, costs: tuple[int, ...]
    ) -> list[tuple[dict[int, list], tuple]]:
        """Warm-start candidates, best first: the largest already-solved
        probe of the same family at a parameter <= *param*, then the
        base table whenever base costs are pointwise <= *costs*.

        Each candidate is ``(rank table, delta info)`` where the delta
        info classifies ``costs - source costs`` for the O(1) fast path
        (see :meth:`AnalysisView._compute_rank`).
        """
        out: list[tuple[dict[int, list], tuple]] = []
        params = self._family_params.get(family)
        if params:
            best = None
            for p in params:  # ascending, typically short
                if p <= param:
                    best = p
                else:
                    break
            if best is not None:
                entry = self._fixpoints.get((family, best))
                if entry is not None:
                    out.append((entry[1], _delta_info(entry[0], costs)))
        if family != ("base",):
            entry = self._fixpoints.get((("base",), 0))
            if entry is not None:
                base_costs = self._base_costs
                if all(base_costs[i] <= costs[i] for i in range(self._n)):
                    out.append((entry[1], _delta_info(base_costs, costs)))
        return out


def _delta_info(src: tuple[int, ...], dst: tuple[int, ...]) -> tuple:
    """Classify the pointwise cost increase ``dst - src``."""
    if src == dst:
        return (_D_ZERO,)
    d = [dst[i] - src[i] for i in range(len(src))]
    nonzero = [i for i, v in enumerate(d) if v]
    first = d[nonzero[0]]
    if len(nonzero) == len(d) and all(v == first for v in d):
        return (_D_UNIFORM, first)
    if len(nonzero) == 1:
        return (_D_SINGLE, nonzero[0], first)
    return (_D_GENERAL, tuple(d), tuple(nonzero))


class AnalysisView:
    """One cost assignment over the context's task structure.

    ``feasible`` is the early-exit boolean used by search predicates;
    :meth:`analyze` / :meth:`wcrt` are the full, cold-identical results.
    Create views through the :class:`AnalysisContext` factory methods —
    they register the view with its warm-start family.
    """

    __slots__ = (
        "_ctx",
        "family",
        "param",
        "costs",
        "_results",
        "_feasible",
        "_report",
        "_taskset",
        "_level_fracs",
        "_warm",
        "_iutil",
    )

    def __init__(
        self, ctx: AnalysisContext, family: tuple, param: int, costs: tuple[int, ...]
    ):
        self._ctx = ctx
        self.family = family
        self.param = param
        self.costs = costs
        #: rank -> exact wcrt (int) | None (unbounded) | _ABORTED marker
        self._results: dict[int, object] = {}
        self._feasible: bool | None = None
        self._report: FeasibilityReport | None = None
        self._taskset: TaskSet | None = None
        self._level_fracs: tuple[tuple[int, int], ...] | None = None
        #: warm-start candidates, resolved lazily on first use
        self._warm: list[tuple[dict[int, list], tuple]] | None = None
        #: rank -> (dI, dI - nI) for the utilization lower bound, where
        #: nI/dI is this view's exact interferer utilization at the rank
        self._iutil: dict[int, tuple[int, int]] = {}

    # -- public results ------------------------------------------------------------
    @property
    def feasible(self) -> bool:
        """Exactly ``analyze().feasible``, computed with early exits."""
        if self._feasible is None:
            self._feasible = self._compute_feasible()
        return self._feasible

    def wcrt(self, name: str) -> int | None:
        """Exact WCRT of the named task under this view's costs."""
        return self._wcrt_rank(self._ctx._rank_of[name])

    def analyze(self) -> FeasibilityReport:
        """Full report — identical to cold ``analyze(self.to_taskset())``."""
        if self._report is None:
            ts = self.to_taskset()
            per_task = {
                t.name: TaskReport(t, self._wcrt_rank(i))
                for i, t in enumerate(ts.tasks)
            }
            self._report = FeasibilityReport(
                taskset=ts, load=load_test(ts), per_task=per_task
            )
        return self._report

    def to_taskset(self) -> TaskSet:
        """The concrete task set this view analyses (built lazily)."""
        if self._taskset is None:
            ctx = self._ctx
            if self.costs == ctx._base_costs:
                self._taskset = ctx.taskset
            else:
                self._taskset = ctx.taskset.with_costs(
                    dict(zip(ctx._names, self.costs))
                )
        return self._taskset

    # -- internals -----------------------------------------------------------------
    def _compute_feasible(self) -> bool:
        ctx = self._ctx
        deadlines = ctx._deadlines
        periods = ctx._periods
        order = (
            range(ctx._n) if self.family == ("base",) else ctx._probe_order()
        )
        results = self._results
        if self._warm is None:
            self._warm = ctx._warm_sources(self.family, self.param, self.costs)
        warm = self._warm
        # The whole-view level gate: one dict probe when a same-family
        # probe at a >= parameter already proved every level load <= 1.
        levels_ok = ctx._levels_ok.get(self.family, -1) >= self.param
        if not levels_ok and all(n <= d for n, d in self._levels()):
            ctx._levels_ok[self.family] = max(
                ctx._levels_ok.get(self.family, -1), self.param
            )
            levels_ok = True
        store = None
        for rank in order:
            res = results.get(rank, _MISSING)
            if res is not _MISSING:
                if res is _ABORTED or res is None or res > deadlines[rank]:  # type: ignore[operator]
                    return False
                continue
            if levels_ok and warm:
                # Inline single-job fast verdict: most tasks converge in
                # one job, and when no ceiling boundary is crossed the
                # new fixed point is stored-R plus pure arithmetic (see
                # _compute_rank).  This keeps the common per-rank cost
                # to a few integer ops, no function call.
                recs = None
                for table, dinfo in warm:
                    recs = table.get(rank)
                    if recs is not None:
                        break
                if recs is not None:
                    R, S, m, K = recs[0]
                    kind = dinfo[0]
                    if kind == _D_UNIFORM:
                        r1 = R + S * dinfo[1]
                    elif kind == _D_ZERO:
                        r1 = R
                    elif kind == _D_SINGLE:
                        t_idx = dinfo[1]
                        if t_idx == rank:
                            r1 = R + dinfo[2]
                        elif t_idx <= ctx._level_end[rank]:
                            r1 = R + K[t_idx - (t_idx > rank)] * dinfo[2]
                        else:
                            r1 = R
                    else:
                        r1 = None  # general delta: take the full path
                    if r1 is not None and (m == 0 or r1 <= m):
                        # r1 is the exact least fixed point of job 0.
                        if r1 > deadlines[rank]:
                            results[rank] = _ABORTED
                            return False
                        if r1 <= periods[rank]:  # busy period closes
                            results[rank] = r1
                            if store is None:
                                store = self._store_table()
                            if rank not in store:
                                store[rank] = [
                                    recs[0] if r1 == R else (r1, S, m, K)
                                ]
                            continue
            res = self._compute_rank(rank, bounded=True)
            results[rank] = res
            if res is _ABORTED or res is None or res > deadlines[rank]:  # type: ignore[operator]
                return False
        return True

    def _store_table(self) -> dict[int, list]:
        """This view's fixed-point table, created on first store."""
        ctx = self._ctx
        key = (self.family, self.param)
        entry = ctx._fixpoints.get(key)
        if entry is None:
            entry = (self.costs, {})
            ctx._fixpoints[key] = entry
            ctx._register_param(self.family, self.param)
        return entry[1]

    def _wcrt_rank(self, rank: int) -> int | None:
        res = self._results.get(rank, _MISSING)
        if res is _MISSING or res is _ABORTED:
            res = self._compute_rank(rank, bounded=False)
            self._results[rank] = res
        return res  # type: ignore[return-value]

    def _levels(self) -> tuple[tuple[int, int], ...]:
        """Per-rank exact level-load fractions (gcd-reduced)."""
        if self._level_fracs is None:
            ctx = self._ctx
            periods = ctx._periods
            costs = self.costs
            prefix: list[tuple[int, int]] = []
            num, den = 0, 1
            for i in range(ctx._n):
                num = num * periods[i] + costs[i] * den
                den *= periods[i]
                g = gcd(num, den)
                num //= g
                den //= g
                prefix.append((num, den))
            self._level_fracs = tuple(
                prefix[ctx._level_end[i]] for i in range(ctx._n)
            )
        return self._level_fracs

    def _level_gate(self, rank: int) -> bool:
        """True when this rank's exact level load is <= 1 (the Figure 2
        precondition for the busy period to close).  Skipped wholesale
        when a same-or-higher parameter of this family already proved
        every level load <= 1 — load is pointwise monotone in costs."""
        ctx = self._ctx
        ok_upto = ctx._levels_ok.get(self.family, -1)
        if self.param <= ok_upto:
            return True
        levels = self._levels()
        if all(n <= d for n, d in levels):
            if self.param > ok_upto:
                ctx._levels_ok[self.family] = self.param
            return True
        lnum, lden = levels[rank]
        return lnum <= lden

    def _compute_rank(self, rank: int, *, bounded: bool):
        """WCRT of ``tasks[rank]`` under ``self.costs`` — the Figure 2
        busy-period iteration, warm-started.

        Returns the exact WCRT (int), ``None`` for an unbounded task, or
        — only when *bounded* — the ``_ABORTED`` marker as soon as the
        task provably misses its deadline (iterates grow monotonically
        toward the fixed point, so an iterate past ``q*T + D`` is
        proof).

        For every converged job the record ``(R, S, m, K)`` is stored
        for later probes: ``K[j] = ceil(R/T_j)`` per interferer,
        ``S = (q+1) + sum(K)``, ``m = min_j K[j]*T_j`` (0 when there are
        no interferers).  Evaluating the recurrence of a higher-cost
        probe at ``R`` is then pure arithmetic — ``f'(R) = R + add``
        with ``add`` built from ``S``/``K`` and the cost delta — and if
        ``f'(R) <= m`` no ceiling moved, so ``f'(R)`` is already the new
        least fixed point: O(1) per job, no divisions.
        """
        ctx = self._ctx
        costs = self.costs
        if not self._level_gate(rank):
            return None  # level load > 1: busy period never closes
        T = ctx._periods[rank]
        C = costs[rank]
        D = ctx._deadlines[rank]
        idx = ctx._interferers[rank]
        iperiods = ctx._interferer_periods[rank]
        lend = ctx._level_end[rank]
        key: tuple | None = None
        if not bounded:
            # The exact-input memo only pays off for full results shared
            # across membership changes; search probes (bounded mode)
            # have distinct cost vectors and skip the key entirely.
            key = (C, T, tuple((costs[j], t) for j, t in zip(idx, iperiods)))
            memo_hit = ctx._memo.get(key, _MISSING)
            if memo_hit is not _MISSING:
                return memo_hit
        if self._warm is None:
            self._warm = ctx._warm_sources(self.family, self.param, costs)
        recs = None
        dinfo: tuple = ()
        for table, info in self._warm:
            rl = table.get(rank)
            if rl is not None:
                recs = rl
                dinfo = info
                break
        n_recs = len(recs) if recs is not None else 0
        out: list[tuple] = []
        icosts: list[int] | None = None
        r_max = 0
        r_prev = 0
        try:
            # No divergence guard is needed: level load <= 1 makes the
            # interferer utilization strictly < 1 (the task's own C/T is
            # positive), so every job's least fixed point is finite and
            # the monotone iteration below reaches it in finitely many
            # strictly-increasing integer steps — exactly where the cold
            # path's bounded iteration lands.
            for q in range(MAX_JOBS_PER_BUSY_PERIOD):
                base = C * (q + 1)
                bound = q * T + D if bounded else None
                rec = None
                start = base if base > r_prev else r_prev
                if q < n_recs:
                    R, S, m, K = recs[q]  # type: ignore[index]
                    kind = dinfo[0]
                    if kind == _D_UNIFORM:
                        add = S * dinfo[1]
                    elif kind == _D_ZERO:
                        add = 0
                    elif kind == _D_SINGLE:
                        t_idx = dinfo[1]
                        if t_idx == rank:
                            add = (q + 1) * dinfo[2]
                        elif t_idx <= lend:
                            add = K[t_idx - (t_idx > rank)] * dinfo[2]
                        else:
                            add = 0
                    else:  # _D_GENERAL
                        dvec, nonzero = dinfo[1], dinfo[2]
                        add = (q + 1) * dvec[rank]
                        for j in nonzero:
                            if j != rank and j <= lend:
                                add += K[j - (j > rank)] * dvec[j]
                    # One recurrence step from the stored fixed point,
                    # computed symbolically: f'(R) = R + add.
                    r1 = R + add
                    if bound is not None and r1 > bound:
                        return _ABORTED  # r1 <= new fixed point: proof
                    if m == 0 or r1 <= m:
                        # No ceiling boundary crossed: r1 is the exact
                        # new least fixed point and K, S, m still hold.
                        r = r1
                        rec = (r1, S, m, K) if add else recs[q]  # type: ignore[index]
                    else:
                        start = r1  # still <= the new fixed point
                if rec is None:
                    if icosts is None:
                        icosts = [costs[j] for j in idx]
                    if idx:
                        ut = self._iutil.get(rank)
                        if ut is None:
                            # Exact interferer utilization nI/dI: base
                            # fractions cached on the context plus this
                            # view's closed-form family delta.  The
                            # level gate ensured level load <= 1, and
                            # nI/dI = level - C/T, so dI - nI > 0.
                            fam = self.family[0]
                            if fam == "inflate" or fam == "base":
                                nb, db, nh, dh = ctx._iutil_base_rank(rank)
                                d = self.param  # 0 for the base view
                                num = nb * dh + d * nh * db
                                den = db * dh
                            elif fam == "cost":
                                nb, db, nh, dh = ctx._iutil_base_rank(rank)
                                t_idx = ctx._rank_of[self.family[1]]
                                if t_idx != rank and t_idx <= lend:
                                    x = self.param - ctx._base_costs[t_idx]
                                    t_t = ctx._periods[t_idx]
                                    num = nb * t_t + x * db
                                    den = db * t_t
                                else:
                                    num, den = nb, db
                            else:  # user families: derive from levels
                                lnum, lden = self._levels()[rank]
                                num = lnum * T - C * lden
                                den = lden * T
                            ut = (den, den - num)
                            self._iutil[rank] = ut
                        # lfp >= base + nI/dI * lfp, hence the exact
                        # integer lower bound below is a sound start:
                        # iterating from any value <= the least fixed
                        # point converges to it (DESIGN.md §3.5).
                        dI, diff = ut
                        lb = -(-base * dI // diff)
                        if lb > start:
                            start = lb
                    r = start
                    while True:
                        K = [-(-r // t) for t in iperiods]
                        demand = base + sum(map(mul, K, icosts))
                        if demand == r:
                            break
                        r = demand
                        if bound is not None and r > bound:
                            return _ABORTED
                    S = q + 1 + sum(K)
                    m = min(map(mul, K, iperiods)) if K else 0
                    rec = (r, S, m, tuple(K))
                out.append(rec)
                resp = r - q * T
                if resp > r_max:
                    r_max = resp
                if bound is not None and resp > D:
                    return _ABORTED
                if r <= (q + 1) * T:
                    if key is not None:
                        ctx._memo[key] = r_max
                    return r_max
                r_prev = r
            return None  # analysis budget exhausted: conservative, like cold
        finally:
            if out:
                table = self._store_table()
                prev = table.get(rank)
                if prev is None or len(out) > len(prev):
                    table[rank] = out
