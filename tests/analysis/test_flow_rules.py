"""RT1xx whole-program rules: positives, suppression, cross-module-only.

Every positive fixture here is *invisible* to the per-file linter —
each test asserts that too, because that is the entire point of the
flow layer: the violation only exists once the call graph connects two
modules.
"""

from repro.analysis.flow import analyze, build_model, run_flow_rules
from repro.analysis.lint import lint_source


def flow(write_package, files, **kwargs):
    root = write_package(files)
    model = build_model([root])
    return run_flow_rules(model, **kwargs)


def assert_per_file_silent(files, *names):
    """The per-file linter must see nothing in the named fixtures."""
    import textwrap

    for name in names:
        source = textwrap.dedent(files[name])
        diags = [d for d in lint_source(source, name) if d.code != "RT099"]
        assert diags == [], (name, diags)


# ---------------------------------------------------------------------------
# RT101 — determinism taint into fingerprint/cache-key sinks
# ---------------------------------------------------------------------------

RT101_FILES = {
    "sources.py": """
        import os
        import time


        def run_tag():
            return f"{os.getenv('USER')}-{time.time_ns()}"


        def stable_tag():
            return "fixed"


        def blessed_seed():
            from repro.rng import derive_rng

            return derive_rng(0, os.getpid())
    """,
    "sinks.py": """
        from repro.exec.cache import ResultCache

        from pkg.sources import run_tag, stable_tag


        def bad_key(cache: ResultCache):
            return cache.key("exp", run_tag())


        def good_key(cache: ResultCache):
            return cache.key("exp", stable_tag())
    """,
}


class TestRT101:
    def test_cross_module_volatile_reaches_sink(self, write_package):
        diags = flow(write_package, RT101_FILES, codes=["RT101"])
        assert [d.code for d in diags] == ["RT101"]
        assert "bad_key" in diags[0].message
        assert diags[0].path.endswith("sinks.py")

    def test_per_file_linter_cannot_see_it(self):
        assert_per_file_silent(RT101_FILES, "sinks.py")

    def test_noqa_suppresses(self, write_package):
        files = dict(RT101_FILES)
        files["sinks.py"] = files["sinks.py"].replace(
            'cache.key("exp", run_tag())',
            'cache.key("exp", run_tag())  # noqa: RT101',
        )
        assert flow(write_package, files, codes=["RT101"]) == []

    def test_sanitized_flow_is_clean(self, write_package):
        files = dict(RT101_FILES)
        files["sinks.py"] = files["sinks.py"].replace(
            "run_tag()", "blessed()"
        ).replace(
            "from pkg.sources import run_tag, stable_tag",
            "from pkg.sources import blessed_seed as blessed, stable_tag",
        )
        assert flow(write_package, files, codes=["RT101"]) == []


# ---------------------------------------------------------------------------
# RT102 — integer-ns escaping into float arithmetic cross-module
# ---------------------------------------------------------------------------

RT102_FILES = {
    "mint.py": """
        from repro.units import ms


        def grant():
            return ms(5)
    """,
    "consume.py": """
        from pkg.mint import grant


        def bad_mean(n):
            return grant() / n


        def good_share(n):
            return grant() // n


        def good_ratio():
            return grant() / grant()
    """,
}


class TestRT102:
    def test_cross_module_float_escape(self, write_package):
        diags = flow(write_package, RT102_FILES, codes=["RT102"])
        assert [d.code for d in diags] == ["RT102"]
        assert "bad_mean" in diags[0].message
        assert diags[0].path.endswith("consume.py")

    def test_per_file_linter_cannot_see_it(self):
        # 'grant' carries no time-word, so RT001 has nothing to anchor on.
        assert_per_file_silent(RT102_FILES, "consume.py")

    def test_noqa_suppresses(self, write_package):
        files = dict(RT102_FILES)
        files["consume.py"] = files["consume.py"].replace(
            "return grant() / n", "return grant() / n  # noqa: RT102"
        )
        assert flow(write_package, files, codes=["RT102"]) == []

    def test_same_module_is_rt001_territory(self, write_package):
        # The same float division with the mint in the SAME module is
        # the per-file rule's job; the flow layer must stay silent.
        files = {
            "local.py": """
                from repro.units import ms


                def local_mean(n):
                    duration = ms(5)
                    return duration / n
            """
        }
        assert flow(write_package, files, codes=["RT102"]) == []


# ---------------------------------------------------------------------------
# RT103 — rng objects / rng-capturing closures crossing process boundaries
# ---------------------------------------------------------------------------

RT103_FILES = {
    "work.py": """
        def work(rng, n):
            return rng.random() * n
    """,
    "driver.py": """
        import random
        from functools import partial

        from repro.exec.executor import make_executor

        from pkg.work import work


        def bad_direct(items):
            rng = random.Random(7)
            ex = make_executor()
            return ex.run(work, [(rng, i) for i in items])


        def bad_closure(items):
            rng = random.Random(7)
            ex = make_executor()
            return ex.run(partial(work, rng), items)


        def good_seed_plumbing(items):
            ex = make_executor()
            return ex.run(work, items)
    """,
}


class TestRT103:
    def test_direct_and_closure_escapes(self, write_package):
        diags = flow(write_package, RT103_FILES, codes=["RT103"])
        messages = [d.message for d in diags]
        assert len(diags) == 2
        assert any("closure capturing rng state" in m for m in messages)
        assert all("bad_" in m for m in messages)

    def test_per_file_linter_cannot_see_it(self):
        assert_per_file_silent(RT103_FILES, "driver.py")

    def test_noqa_suppresses(self, write_package):
        files = dict(RT103_FILES)
        files["driver.py"] = files["driver.py"].replace(
            "return ex.run(work, [(rng, i) for i in items])",
            "return ex.run(work, [(rng, i) for i in items])  # noqa: RT103",
        ).replace(
            "return ex.run(partial(work, rng), items)",
            "return ex.run(partial(work, rng), items)  # noqa: RT103",
        )
        assert flow(write_package, files, codes=["RT103"]) == []


# ---------------------------------------------------------------------------
# RT104 — hot-path-reachable mutation of shared task/system state
# ---------------------------------------------------------------------------

RT104_FILES = {
    "engine.py": """
        from pkg.mutate import tick


        class Engine:
            def run(self, system):
                return tick(system)
    """,
    "mutate.py": """
        def tick(system):
            system.tasks.append("late-admitted")
            return len(system.tasks)


        def rebuild(system):
            # Not reachable from the engine loop: allowed.
            system.tasks.clear()
    """,
}


class TestRT104:
    def test_reachable_mutation_flagged(self, write_package):
        diags = flow(
            write_package,
            RT104_FILES,
            codes=["RT104"],
            hot_roots=["*.engine.Engine.run"],
        )
        assert [d.code for d in diags] == ["RT104"]
        assert "tick" in diags[0].message
        assert diags[0].severity.value == "warning"

    def test_unreachable_mutation_not_flagged(self, write_package):
        diags = flow(
            write_package,
            RT104_FILES,
            codes=["RT104"],
            hot_roots=["*.engine.Engine.run"],
        )
        assert all("rebuild" not in d.message for d in diags)

    def test_own_slot_rebinding_is_exempt(self, write_package):
        files = {
            "engine.py": """
                class Engine:
                    def __init__(self, taskset):
                        self.taskset = taskset

                    def run(self):
                        return self.prepare()

                    def prepare(self):
                        self._tasks = list(self.taskset)
                        return self._tasks
            """
        }
        diags = flow(
            write_package, files, codes=["RT104"], hot_roots=["*.Engine.run"]
        )
        assert diags == []


# ---------------------------------------------------------------------------
# Driver-level behaviour
# ---------------------------------------------------------------------------


class TestDriver:
    def test_all_four_rules_fire_in_one_run(self, write_package):
        files = {**RT101_FILES, **RT102_FILES, **RT103_FILES, **RT104_FILES}
        root = write_package(files)
        diags, _ = analyze(
            [root], hot_roots=["pkg.engine.Engine.run"]
        )
        assert {d.code for d in diags} == {"RT101", "RT102", "RT103", "RT104"}

    def test_parse_error_surfaces_as_rt000(self, write_package):
        root = write_package({"broken.py": "def broken(:\n    pass\n"})
        diags, _ = analyze([root])
        assert [d.code for d in diags] == ["RT000"]

    def test_diagnostics_are_sorted(self, write_package):
        files = {**RT101_FILES, **RT103_FILES}
        root = write_package(files)
        diags, _ = analyze([root])
        keys = [(d.path, d.line, d.column, d.code) for d in diags]
        assert keys == sorted(keys)
