"""Regression: the weakly-hard (m, K) treatments (DESIGN.md §3.11).

Traced over full hyperperiods of the paper's Table 2 system, like the
§4.2 detector-offset regression next door:

* ``MISS_BUDGET`` escalates to the §4.1 immediate stop *exactly* when
  the window budget is exhausted — a flagged job is tolerated while at
  most ``m`` of the last ``K`` jobs were flagged, and two faulty jobs
  a full window apart never escalate while two inside one window do;
* ``SKIP_JOB`` drops exactly the sanctioned deeply-red slots and never
  causes collateral misses — neither on a fault-free run nor on the
  §4.2-style scenario with the paper's +40 ms overrun injected;
* ``DEGRADE`` releases the sanctioned slots with the plan's reduced
  cost instead of dropping them.
"""

from __future__ import annotations

import pytest

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.core.weakly_hard import MKConstraint, satisfies
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind
from repro.units import ms

MK = MKConstraint(1, 3)


@pytest.fixture
def mk_table2(table2):
    """Table 2 with (1, 3) on every task."""
    return table2.with_mk({t.name: MK for t in table2})


def _fault(jobs, extra=ms(40)):
    return FaultInjector([CostOverrun("tau1", j, extra) for j in jobs])


class TestMissBudgetEscalation:
    def _run(self, ts, jobs):
        return simulate(
            ts,
            horizon=ts.hyperperiod(),
            faults=_fault(jobs),
            treatment=TreatmentKind.MISS_BUDGET,
        )

    def test_single_fault_is_tolerated_unstopped(self, mk_table2):
        result = self._run(mk_table2, [0])
        assert result.runtime is not None
        assert result.runtime.detections, "the overrun must still be detected"
        assert not result.stopped(), "one miss within the budget must run on"
        assert not result.trace.of_kind(EventKind.ESCALATE)
        # The tolerated job completes with its full faulty demand.
        job = result.job("tau1", 0)
        assert job.executed == job.demand == ms(29 + 40)

    def test_second_fault_in_window_escalates(self, mk_table2):
        result = self._run(mk_table2, [0, 1])
        escalations = result.trace.of_kind(EventKind.ESCALATE)
        assert [(e.task, e.job) for e in escalations] == [("tau1", 1)]
        assert [(j.name, j.index) for j in result.stopped()] == [("tau1", 1)]
        # The escalated stop happens at the detection instant: the
        # nominal-WCRT detector offset after the release (paper §4.1).
        (event,) = escalations
        release = mk_table2["tau1"].release_time(1)
        assert event.time == release + ms(29)
        assert result.runtime.escalations == [("tau1", 1, event.time)]

    def test_faults_a_full_window_apart_never_escalate(self, mk_table2):
        # Jobs 0 and 3 are K = 3 releases apart: each window of 3
        # consecutive jobs holds at most one flag, so the budget is
        # never exhausted.
        result = self._run(mk_table2, [0, 3])
        assert not result.trace.of_kind(EventKind.ESCALATE)
        assert not result.stopped()
        assert len(result.runtime.flagged["tau1"]) == 2

    def test_faults_inside_one_window_escalate(self, mk_table2):
        # Jobs 0 and 2 share the window (job 0..2): the second flag
        # exceeds m = 1 and must escalate — the exact budget boundary.
        result = self._run(mk_table2, [0, 2])
        escalations = result.trace.of_kind(EventKind.ESCALATE)
        assert [(e.task, e.job) for e in escalations] == [("tau1", 2)]

    def test_unconstrained_task_escalates_immediately(self, table2):
        # Only tau2 carries a budget: tau1 keeps hard semantics, so its
        # very first flagged job escalates (the m = 0 boundary) exactly
        # like the §4.1 immediate stop.
        ts = table2.with_mk({"tau2": MK})
        result = self._run(ts, [0])
        escalations = result.trace.of_kind(EventKind.ESCALATE)
        assert [(e.task, e.job) for e in escalations] == [("tau1", 0)]
        stop = simulate(
            table2,
            horizon=table2.hyperperiod(),
            faults=_fault([0]),
            treatment=TreatmentKind.IMMEDIATE_STOP,
        )
        assert [(j.name, j.index) for j in result.stopped()] == [
            (j.name, j.index) for j in stop.stopped()
        ]


class TestSkipJob:
    def test_fault_free_run_skips_exactly_the_sanctioned_slots(self, mk_table2):
        result = simulate(
            mk_table2, horizon=mk_table2.hyperperiod(), treatment=TreatmentKind.SKIP_JOB
        )
        assert not result.missed(), "a weakly-hard-admitted set never misses"
        for task in mk_table2:
            for job in result.jobs_of(task.name):
                assert job.was_skipped == MK.skips(job.index)
            assert satisfies(result.miss_pattern(task.name), MK)
        skips = result.trace.of_kind(EventKind.JOB_SKIP)
        assert skips and all(e.job % MK.k == MK.k - 1 for e in skips)

    def test_no_detector_armed_for_skipped_slots(self, mk_table2):
        result = simulate(
            mk_table2, horizon=mk_table2.hyperperiod(), treatment=TreatmentKind.SKIP_JOB
        )
        for e in result.trace.of_kind(EventKind.DETECTOR_FIRE):
            assert not MK.skips(e.job)

    def test_faulty_executed_job_is_stopped_without_collateral(self, mk_table2):
        # §4.2-style scenario: the paper's +40 ms overrun, aimed at an
        # *executed* slot (job 4; job 5 is a sanctioned skip).  The
        # overrun is stopped at the weakly-hard threshold and the other
        # tasks keep every deadline — zero collateral misses.
        result = simulate(
            mk_table2,
            horizon=mk_table2.hyperperiod(),
            faults=_fault([4]),
            treatment=TreatmentKind.SKIP_JOB,
        )
        assert [(j.name, j.index) for j in result.stopped()] == [("tau1", 4)]
        assert not result.missed("tau2") and not result.missed("tau3")
        assert not result.missed("tau1")

    def test_fault_on_a_skipped_slot_is_inert(self, mk_table2):
        # Job 5 of tau1 is a sanctioned skip: a fault targeting it
        # never executes, detects or stops anything.
        result = simulate(
            mk_table2,
            horizon=mk_table2.hyperperiod(),
            faults=_fault([5]),
            treatment=TreatmentKind.SKIP_JOB,
        )
        assert result.job("tau1", 5).was_skipped
        assert not result.stopped() and not result.missed()
        assert result.runtime is not None and not result.runtime.detections


class TestDegrade:
    def test_sanctioned_slots_release_with_reduced_cost(self, mk_table2):
        plan = plan_treatment(mk_table2, TreatmentKind.DEGRADE)
        result = simulate(
            mk_table2, horizon=mk_table2.hyperperiod(), treatment=plan
        )
        assert not result.missed()
        for task in mk_table2:
            for job in result.jobs_of(task.name):
                assert job.degraded == MK.skips(job.index)
                assert not job.was_skipped
                if job.degraded:
                    assert job.demand == plan.degraded_cost(task.name)
                    assert job.demand == max(1, task.cost // 2)


class TestAdmission:
    def test_skip_job_admits_a_hard_infeasible_set(self):
        # U = 1.3 > 1: hard admission rejects outright, but skipping
        # every other job of the two heavy tasks (1, 2) makes room and
        # the fault-free run indeed never misses a checked deadline.
        from repro.core.feasibility import is_feasible, is_weakly_hard_feasible
        from repro.core.task import Task, TaskSet

        overloaded = TaskSet(
            [
                Task("x", cost=ms(50), period=ms(100), priority=3, mk=MKConstraint(1, 2)),
                Task("y", cost=ms(50), period=ms(100), priority=2, mk=MKConstraint(1, 2)),
                Task("z", cost=ms(30), period=ms(300), priority=1),
            ]
        )
        assert not is_feasible(overloaded)
        assert is_weakly_hard_feasible(overloaded)
        plan = plan_treatment(overloaded, TreatmentKind.SKIP_JOB)
        result = simulate(
            overloaded, horizon=2 * overloaded.hyperperiod(), treatment=plan
        )
        assert not result.missed()
        for task in overloaded:
            if task.mk is not None:
                assert satisfies(result.miss_pattern(task.name), task.mk)
        with pytest.raises(ValueError):
            plan_treatment(overloaded, TreatmentKind.IMMEDIATE_STOP)
