"""Shared resources and blocking times — §7 future work.

"We have considered neither the issues related to precedence
constraints nor the ones deriving from the share of resources among the
various tasks of the system.  In the latter case, it would be advisable
to study the influence of tolerance on the determination of the
blocking time (b_i)."

This module provides the classic uniprocessor machinery the paper
points at:

* critical sections over named resources;
* blocking bounds ``b_i`` under the **priority ceiling protocol** (at
  most one lower-priority critical section with ceiling >= P_i) and
  under **priority inheritance** (at most one critical section per
  lower-priority task, over resources shared with level >= i);
* response-time analysis extended with the blocking term,
  ``R = C + b + interference``;
* the "influence of tolerance on b_i" study: allowance computation over
  the blocking-aware analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.allowance import max_such_that
from repro.core.task import Task, TaskSet

__all__ = [
    "CriticalSection",
    "validate_sections",
    "priority_ceilings",
    "blocking_times_pcp",
    "blocking_times_pip",
    "response_time_with_blocking",
    "is_feasible_with_blocking",
    "equitable_allowance_with_blocking",
]


@dataclass(frozen=True)
class CriticalSection:
    """Task *task_name* holds *resource* for up to *duration* ns."""

    task_name: str
    resource: str
    duration: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("critical section duration must be > 0")


def validate_sections(
    taskset: TaskSet, sections: Iterable[CriticalSection]
) -> list[CriticalSection]:
    """Check every section references a known task and fits its cost."""
    out = []
    for cs in sections:
        if cs.task_name not in taskset:
            raise ValueError(f"critical section on unknown task {cs.task_name!r}")
        if cs.duration > taskset[cs.task_name].cost:
            raise ValueError(
                f"{cs.task_name}: critical section longer than the task cost"
            )
        out.append(cs)
    return out


def priority_ceilings(
    taskset: TaskSet, sections: Iterable[CriticalSection]
) -> dict[str, int]:
    """PCP ceilings: the highest priority among users of each resource."""
    ceilings: dict[str, int] = {}
    for cs in sections:
        prio = taskset[cs.task_name].priority
        ceilings[cs.resource] = max(ceilings.get(cs.resource, prio), prio)
    return ceilings


def blocking_times_pcp(
    taskset: TaskSet, sections: Sequence[CriticalSection]
) -> dict[str, int]:
    """Blocking bound ``b_i`` under the priority ceiling protocol.

    A task can be blocked by at most *one* critical section, belonging
    to a lower-priority task, over a resource whose ceiling is at least
    its own priority.
    """
    sections = validate_sections(taskset, sections)
    ceilings = priority_ceilings(taskset, sections)
    out: dict[str, int] = {}
    for task in taskset:
        candidates = [
            cs.duration
            for cs in sections
            if taskset[cs.task_name].priority < task.priority
            and ceilings[cs.resource] >= task.priority
        ]
        out[task.name] = max(candidates, default=0)
    return out


def blocking_times_pip(
    taskset: TaskSet, sections: Sequence[CriticalSection]
) -> dict[str, int]:
    """Blocking bound ``b_i`` under priority inheritance.

    Each lower-priority task may block task i at most once (its longest
    relevant critical section); relevant means the resource is also
    used by some task of priority >= P_i.
    """
    sections = validate_sections(taskset, sections)
    out: dict[str, int] = {}
    for task in taskset:
        relevant_resources = {
            cs.resource
            for cs in sections
            if taskset[cs.task_name].priority >= task.priority
        }
        total = 0
        for lower in taskset.lower_priority(task):
            candidates = [
                cs.duration
                for cs in sections
                if cs.task_name == lower.name and cs.resource in relevant_resources
            ]
            total += max(candidates, default=0)
        out[task.name] = total
    return out


def response_time_with_blocking(
    task: Task, taskset: TaskSet, blocking: Mapping[str, int]
) -> int | None:
    """Constrained-deadline RTA with a blocking term:

    ``R = C_i + b_i + sum_j ceil(R / T_j) * C_j``.

    Valid for ``D_i <= T_i`` (the standard PCP/PIP analysis setting).
    Returns None when the fixed point diverges.
    """
    if not task.constrained:
        raise ValueError("blocking-aware RTA requires D <= T")
    hp = taskset.higher_or_equal_priority(task)
    b = blocking.get(task.name, 0)
    # Divergence iff the interference utilization reaches 1 (the
    # blocking term is a constant); otherwise ceil(x) <= x + 1 bounds
    # the fixed point at (C + b + sum C_j) / (1 - U_hp), exactly.
    num, den = 0, 1
    total_cost = 0
    for t in hp:
        num = num * t.period + t.cost * den
        den *= t.period
        total_cost += t.cost
    if num >= den:
        return None
    limit = (task.cost + b + total_cost) * den // (den - num) + 1
    r = task.cost + b
    while True:
        demand = task.cost + b + sum(-(-r // t.period) * t.cost for t in hp)
        if demand == r:
            return r
        if demand > limit:  # unreachable by the bound; defensive only
            return None
        r = demand


def is_feasible_with_blocking(
    taskset: TaskSet, blocking: Mapping[str, int]
) -> bool:
    """Admission control including blocking terms."""
    for task in taskset:
        r = response_time_with_blocking(task, taskset, blocking)
        if r is None or r > task.deadline:
            return False
    return True


def equitable_allowance_with_blocking(
    taskset: TaskSet, sections: Sequence[CriticalSection]
) -> int:
    """The §4.2 allowance under PCP blocking — the paper's "influence
    of tolerance on the determination of the blocking time" study.

    Critical-section durations are held constant while costs inflate
    (an overrun happens in the non-critical part of the code; a fault
    *inside* a critical section would require aborting the section,
    which the paper's stop mechanism cannot do safely).
    """
    if not is_feasible_with_blocking(taskset, blocking_times_pcp(taskset, sections)):
        raise ValueError("system infeasible with blocking; no allowance")
    hi = min(t.deadline - t.cost for t in taskset)

    def pred(a: int) -> bool:
        inflated = taskset.inflated(a)
        blocking = blocking_times_pcp(inflated, list(sections))
        return is_feasible_with_blocking(inflated, blocking)

    return max_such_that(pred, max(hi, 0))
