"""Scaling of the Figure 2 algorithm and the allowance searches.

The paper notes its algorithms are "expensive in time" and affordable
only because the system is static (§7).  These benchmarks measure that
cost as the task count grows, so the dynamic-admission extension can be
judged against real numbers.
"""

import pytest

from repro.core.allowance import equitable_allowance
from repro.core.feasibility import analyze, wc_response_time
from repro.core.feasibility import is_feasible
from repro.workloads.generator import GeneratorConfig, random_taskset


def make_system(n: int):
    seed = 0
    while True:
        ts = random_taskset(
            GeneratorConfig(
                n=n,
                utilization=0.7,
                period_lo=10_000,
                period_hi=10_000_000,
                period_granularity=1_000,
                seed=seed,
            )
        )
        if is_feasible(ts):
            return ts
        seed += 1


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_full_analysis_scaling(benchmark, n):
    ts = make_system(n)
    report = benchmark(analyze, ts)
    assert report.feasible


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_lowest_priority_wcrt_scaling(benchmark, n):
    ts = make_system(n)
    lowest = ts.tasks[-1]
    wcrt = benchmark(wc_response_time, lowest, ts)
    assert wcrt is not None and wcrt <= lowest.deadline


@pytest.mark.parametrize("n", [5, 10, 20])
def test_allowance_search_scaling(benchmark, n):
    ts = make_system(n)
    allowance = benchmark(equitable_allowance, ts)
    assert allowance >= 0
