"""File-backed trace sinks and trace-file conversion.

The paper's tooling (§5) buffers nanosecond timestamps in memory and
dumps them to log files a chart tool reads.  This module is the durable
equivalent for the simulator's event stream:

* :class:`JsonlSink` — streaming append of one JSON object per event.
  Bounded memory (events hit the OS file buffer as they happen), and
  lossless: :func:`read_jsonl` reconstructs the exact
  :class:`~repro.sim.trace.TraceEvent` sequence, which the round-trip
  tests assert on fault-injection scenarios.
* :class:`ChromeTraceSink` — streams Chrome/Perfetto ``trace_event``
  JSON, so any run opens directly in ``chrome://tracing`` or
  https://ui.perfetto.dev: per-task tracks with execution slices
  (START/RESUME .. PREEMPT/COMPLETE/STOP) and instant markers for
  releases, deadline misses and detector activity.
* :func:`to_chrome` / :func:`convert_jsonl_to_chrome` — offline
  conversion of a recorded JSONL trace (``python -m repro.obs convert``).

Timestamps inside the repo stay integer nanoseconds; the Chrome format
requires microseconds, so the boundary conversion is the one sanctioned
float division (marked ``noqa: RT001`` like the ``repro.units``
boundary).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Iterator

from repro.sim.trace import (
    EventKind,
    MemorySink,
    NullSink,
    TeeSink,
    Trace,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "MemorySink",
    "NullSink",
    "TeeSink",
    "JsonlSink",
    "ChromeTraceSink",
    "read_jsonl",
    "iter_jsonl",
    "write_jsonl",
    "to_chrome",
    "convert_jsonl_to_chrome",
    "resolve_sink",
    "trace_with_sink",
]

#: Event kinds rendered as Chrome duration slices (paired open/close).
_SLICE_OPEN = frozenset({EventKind.START, EventKind.RESUME})
_SLICE_CLOSE = frozenset({EventKind.PREEMPT, EventKind.COMPLETE, EventKind.STOP})
#: Event kinds rendered as instant markers on the task's track.
_INSTANT = frozenset(
    {
        EventKind.RELEASE,
        EventKind.DEADLINE_MISS,
        EventKind.JOB_SKIP,
        EventKind.ESCALATE,
        EventKind.DETECTOR_FIRE,
        EventKind.FAULT_DETECTED,
        EventKind.LOCK,
        EventKind.UNLOCK,
        EventKind.BLOCKED,
        EventKind.UNBLOCKED,
        EventKind.IDLE,
    }
)


def _us(time_ns: int) -> float:
    """Nanoseconds -> the microsecond floats the Chrome format requires."""
    return time_ns / 1000  # noqa: RT001 - sanctioned chrome-trace output boundary


class JsonlSink:
    """Append one compact JSON object per event to *path*.

    Memory use is O(1): nothing is retained after the write.  The file
    is line-buffered, so it is valid JSONL at every instant and a
    crashed run still leaves a readable prefix.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", buffering=1)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def iter_jsonl(path: str | Path) -> Iterator[TraceEvent]:
    """Stream events back from a :class:`JsonlSink` file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """The full event list of a JSONL trace file (lossless inverse of
    :class:`JsonlSink`)."""
    return list(iter_jsonl(path))


def write_jsonl(path: str | Path, events: Iterable[TraceEvent]) -> int:
    """Write *events* as a JSONL trace file; returns the event count."""
    sink = JsonlSink(path)
    try:
        for event in events:
            sink.emit(event)
    finally:
        sink.close()
    return sink.emitted


class _ChromeMapper:
    """Stateful TraceEvent -> chrome ``trace_event`` dict mapping.

    Execution slices are reconstructed by pairing each task's
    START/RESUME with the following PREEMPT/COMPLETE/STOP, exactly as
    :meth:`repro.sim.trace.Trace.execution_intervals` does; all other
    simulator events become instant markers.  Exec-layer ``SPAN``
    events (duration in ``info``) map to complete slices on a
    dedicated track.
    """

    def __init__(self) -> None:
        self._open: dict[str, tuple[int, int]] = {}  # task -> (start_ns, job)
        self._tids: dict[str, int] = {}

    def _tid(self, track: str) -> int:
        if track not in self._tids:
            self._tids[track] = len(self._tids) + 1
        return self._tids[track]

    def map(self, event: TraceEvent) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        task = event.task or "<cpu>"
        if event.kind is EventKind.SPAN:
            out.append(
                {
                    "name": task,
                    "cat": "exec",
                    "ph": "X",
                    "ts": _us(event.time),
                    "dur": _us(event.info),
                    "pid": 1,
                    "tid": self._tid("exec"),
                }
            )
            return out
        if event.kind in _SLICE_OPEN:
            self._open[task] = (event.time, event.job)
            return out
        if event.kind in _SLICE_CLOSE:
            opened = self._open.pop(task, None)
            if opened is not None and event.time > opened[0]:
                out.append(
                    {
                        "name": f"{task}#{opened[1]}" if opened[1] >= 0 else task,
                        "cat": "job",
                        "ph": "X",
                        "ts": _us(opened[0]),
                        "dur": _us(event.time - opened[0]),
                        "pid": 1,
                        "tid": self._tid(task),
                    }
                )
            if event.kind is not EventKind.PREEMPT:
                out.append(self._instant(event, task))
            return out
        if event.kind in _INSTANT:
            out.append(self._instant(event, task))
        return out

    def _instant(self, event: TraceEvent, task: str) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": event.kind.value,
            "cat": "sim",
            "ph": "i",
            "s": "t",
            "ts": _us(event.time),
            "pid": 1,
            "tid": self._tid(task),
        }
        if event.job >= 0:
            entry["args"] = {"job": event.job, "info": event.info}
        return entry

    def thread_metadata(self) -> list[dict[str, Any]]:
        """``thread_name`` metadata so tracks carry task names."""
        return [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in sorted(self._tids.items(), key=lambda kv: kv[1])
        ]


def to_chrome(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """The ``chrome://tracing`` document for *events*."""
    mapper = _ChromeMapper()
    trace_events: list[dict[str, Any]] = []
    for event in events:
        trace_events.extend(mapper.map(event))
    return {
        "traceEvents": mapper.thread_metadata() + trace_events,
        "displayTimeUnit": "ms",
    }


def convert_jsonl_to_chrome(src: str | Path, dst: str | Path) -> int:
    """Convert a JSONL trace file into a chrome-loadable JSON file;
    returns the number of chrome events written."""
    document = to_chrome(iter_jsonl(src))
    out = Path(dst)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=1) + "\n")
    return len(document["traceEvents"])


class ChromeTraceSink:
    """Stream chrome ``trace_event`` JSON directly while simulating.

    Equivalent to recording JSONL and converting afterwards, without
    the intermediate file; events are written as they close, so memory
    stays bounded by the number of concurrently open slices.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w")
        self._fh.write('{"displayTimeUnit": "ms", "traceEvents": [\n')
        self._mapper = _ChromeMapper()
        self._first = True
        self.emitted = 0

    def _write(self, entry: dict[str, Any]) -> None:
        assert self._fh is not None
        if not self._first:
            self._fh.write(",\n")
        json.dump(entry, self._fh, separators=(",", ":"))
        self._first = False
        self.emitted += 1

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"ChromeTraceSink({self.path}) is closed")
        for entry in self._mapper.map(event):
            self._write(entry)

    def close(self) -> None:
        if self._fh is not None:
            for entry in self._mapper.thread_metadata():
                self._write(entry)
            self._fh.write("\n]}\n")
            self._fh.close()
            self._fh = None


def resolve_sink(target: TraceSink | str | Path | None) -> TraceSink | None:
    """Accept a sink object or a path (suffix picks the format:
    ``.json`` -> chrome, anything else -> JSONL)."""
    if target is None or isinstance(target, (MemorySink, NullSink, TeeSink, JsonlSink, ChromeTraceSink)):
        return target
    if isinstance(target, (str, Path)):
        path = Path(target)
        if path.suffix == ".json":
            return ChromeTraceSink(path)
        return JsonlSink(path)
    if isinstance(target, TraceSink):
        return target
    raise TypeError(f"cannot resolve trace sink from {target!r}")


def trace_with_sink(target: TraceSink | str | Path | None, *, retain: bool = True) -> Trace:
    """A :class:`Trace` wired to *target* (path or sink)."""
    return Trace(resolve_sink(target), retain=retain)
