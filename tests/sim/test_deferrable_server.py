"""Integration tests for the simulated deferrable server."""

from repro.core.feasibility import analyze
from repro.core.servers import (
    ServerSpec,
    deferrable_response_times,
    polling_server_taskset,
)
from repro.core.task import Task, TaskSet
from repro.sim.servers import (
    AperiodicRequest,
    simulate_with_deferrable_server,
    simulate_with_server,
)


def periodic() -> TaskSet:
    return TaskSet(
        [
            Task("ctrl", cost=2, period=10, priority=10),
            Task("log", cost=6, period=30, deadline=28, priority=2),
        ]
    )


SERVER = ServerSpec(name="srv", capacity=3, period=15, priority=5)


class TestBandwidthPreservation:
    def test_mid_period_arrival_served_immediately(self):
        req = [AperiodicRequest("r", arrival=4, demand=2)]
        _, ds = simulate_with_deferrable_server(periodic(), SERVER, req, horizon=100)
        # Budget is available at t=4; service starts right away.
        assert ds[0].response_time == 2

    def test_beats_polling_for_late_arrivals(self):
        def req():
            return [AperiodicRequest("r", arrival=4, demand=2)]

        _, ps = simulate_with_server(periodic(), SERVER, req(), horizon=100)
        _, ds = simulate_with_deferrable_server(periodic(), SERVER, req(), horizon=100)
        assert ds[0].response_time < ps[0].response_time

    def test_budget_exhaustion_defers_to_replenishment(self):
        reqs = [
            AperiodicRequest("a", arrival=0, demand=3),  # eats the budget
            AperiodicRequest("b", arrival=5, demand=2),  # must wait for t=15
        ]
        _, served = simulate_with_deferrable_server(periodic(), SERVER, reqs, horizon=100)
        a = next(r for r in served if r.name == "a")
        b = next(r for r in served if r.name == "b")
        assert a.completed_at < 15
        # b is served only after the t=15 replenishment.
        assert b.completed_at > 15

    def test_per_period_service_never_exceeds_capacity(self):
        reqs = [AperiodicRequest("flood", arrival=0, demand=40)]
        result, _ = simulate_with_deferrable_server(periodic(), SERVER, reqs, horizon=150)
        # Sum the server execution inside each replenishment window.
        intervals = result.trace.execution_intervals("srv")
        for k in range(0, 150 // SERVER.period):
            lo, hi = k * SERVER.period, (k + 1) * SERVER.period
            served = sum(
                min(e, hi) - max(b, lo) for (b, e, _j) in intervals if b < hi and e > lo
            )
            assert served <= SERVER.capacity

    def test_fifo_across_budget_chunks(self):
        reqs = [
            AperiodicRequest("first", arrival=0, demand=4),
            AperiodicRequest("second", arrival=1, demand=2),
        ]
        _, served = simulate_with_deferrable_server(periodic(), SERVER, reqs, horizon=100)
        first = next(r for r in served if r.name == "first")
        second = next(r for r in served if r.name == "second")
        assert first.completed_at < second.completed_at


class TestPeriodicSafetyUnderDs:
    def test_periodic_tasks_within_deferrable_bounds(self):
        # Saturating aperiodic load: lower tasks feel the back-to-back
        # effect but must stay within the DS (jitter-based) bounds.
        reqs = [AperiodicRequest(f"r{i}", arrival=i * 2, demand=3) for i in range(40)]
        result, _ = simulate_with_deferrable_server(periodic(), SERVER, reqs, horizon=400)
        bounds = deferrable_response_times(periodic(), SERVER)
        assert result.missed() == []
        for t in periodic():
            observed = result.max_response_time(t.name)
            assert observed is not None and observed <= bounds[t.name]

    def test_ds_interference_can_exceed_ps_analysis(self):
        # The same run may push 'log' past the *polling* WCRT while
        # staying within the deferrable bound — evidence the DS jitter
        # term is necessary, not pessimism.
        reqs = [AperiodicRequest(f"r{i}", arrival=i, demand=3) for i in range(60)]
        result, _ = simulate_with_deferrable_server(periodic(), SERVER, reqs, horizon=400)
        ps_report = analyze(polling_server_taskset(periodic(), SERVER))
        ds_bounds = deferrable_response_times(periodic(), SERVER)
        observed = result.max_response_time("log")
        assert observed <= ds_bounds["log"]
        # (The strict exceedance of the PS bound depends on alignment;
        # assert at least that the DS bound is the looser, needed one.)
        assert ds_bounds["log"] > ps_report.wcrt("log")
