"""Metrics registry and trace-fed observer.

``golden_metrics_figure5.json`` pins the deterministic sections
(counters + histograms) of the metrics produced by the paper's
Figure 5 scenario.  To regenerate after an intentional behaviour
change::

    PYTHONPATH=src python -c "
    import json
    from repro.exec.sim import simulate_spec
    from repro.experiments.registry import all_specs
    from repro.obs.metrics import MetricsObserver
    obs = MetricsObserver()
    spec = {s.name: s for s in all_specs()}['figure5']
    simulate_spec(spec, trace_out=obs)
    doc = obs.registry.as_dict()
    golden = {'counters': doc['counters'], 'histograms': doc['histograms']}
    open('tests/obs/golden_metrics_figure5.json', 'w').write(
        json.dumps(golden, indent=2, sort_keys=True) + '\n')
    "
"""

import json
from pathlib import Path

import pytest

from repro.core.treatments import TreatmentKind
from repro.exec.sim import simulate_spec
from repro.experiments.registry import all_specs
from repro.obs.metrics import (
    DEFAULT_BUCKETS_NS,
    Counter,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    write_metrics,
)
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind, TraceEvent
from repro.units import ms
from repro.workloads.scenarios import paper_fault, paper_figures_taskset

GOLDEN = Path(__file__).parent / "golden_metrics_figure5.json"


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bound(self):
        h = Histogram("h", bounds=(10, 100))
        for v in (0, 10, 11, 100, 101):
            h.observe(v)
        assert h.as_dict()["buckets"] == {"10": 2, "100": 2, "+inf": 1}
        assert h.count == 5
        assert h.total == 222
        assert h.min == 0
        assert h.max == 101

    def test_quantiles(self):
        h = Histogram("h", bounds=(10, 100))
        for v in (1, 2, 3, 50):
            h.observe(v)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 100
        assert Histogram("e").quantile(0.5) is None

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram("h", bounds=(10,))
        h.observe(500)
        assert h.quantile(1.0) == 500

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5, 5))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 5))

    def test_default_bounds_are_integer_ns(self):
        assert all(isinstance(b, int) for b in DEFAULT_BUCKETS_NS)
        assert list(DEFAULT_BUCKETS_NS) == sorted(set(DEFAULT_BUCKETS_NS))


class TestRegistry:
    def test_labels_render_sorted_and_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", task="tau1", vm="exact")
        b = reg.counter("hits", vm="exact", task="tau1")
        assert a is b
        assert a.name == "hits{task=tau1,vm=exact}"

    def test_as_dict_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        reg.histogram("h").observe(5)
        doc = reg.as_dict(extra={"cache": {"hits": 1}})
        assert doc["schema"] == 1
        assert doc["counters"] == {"c": 1}
        assert doc["gauges"] == {"g": 7}
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["cache"] == {"hits": 1}

    def test_write_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = write_metrics(tmp_path / "m.json", reg)
        assert json.loads(path.read_text())["counters"] == {"c": 1}


class TestMetricsObserver:
    def _observe_fault_run(self):
        obs = MetricsObserver()
        result = simulate(
            paper_figures_taskset(),
            horizon=ms(1600),
            faults=paper_fault(),
            treatment=TreatmentKind.IMMEDIATE_STOP,
            trace_out=obs,
        )
        return obs.registry.as_dict(), result

    def test_counters_match_trace(self):
        doc, result = self._observe_fault_run()
        completes = len(result.trace.of_kind(EventKind.COMPLETE))
        counted = sum(
            v for k, v in doc["counters"].items() if k.startswith("task_completions")
        )
        assert counted == completes > 0

    def test_response_time_histogram_counts_completions_only(self):
        doc, result = self._observe_fault_run()
        for task in ("tau1", "tau2", "tau3"):
            hist = doc["histograms"].get(f"task_response_time_ns{{task={task}}}")
            completes = len(
                [e for e in result.trace.of_kind(EventKind.COMPLETE) if e.task == task]
            )
            assert (hist["count"] if hist else 0) == completes

    def test_stopped_job_does_not_pollute_histogram(self):
        doc, result = self._observe_fault_run()
        assert result.trace.of_kind(EventKind.STOP)  # tau1#5 was stopped
        hist = doc["histograms"]["task_response_time_ns{task=tau1}"]
        # Response times never exceed tau1's deadline: the stopped job
        # (which ran past it) contributed no observation.
        assert hist["max"] <= ms(70)

    def test_overhead_pseudo_tasks_excluded(self):
        obs = MetricsObserver()
        obs.emit(TraceEvent(0, EventKind.RELEASE, "__overhead_tau1", job=0))
        assert obs.registry.as_dict()["counters"] == {}

    def test_detector_latency_histogram(self):
        doc, _ = self._observe_fault_run()
        assert any(
            k.startswith("task_detector_fire_latency_ns") for k in doc["histograms"]
        )


class TestGoldenFigure5:
    def test_figure5_metrics_match_golden(self):
        obs = MetricsObserver()
        spec = {s.name: s for s in all_specs()}["figure5"]
        simulate_spec(spec, trace_out=obs)
        doc = obs.registry.as_dict()
        produced = {"counters": doc["counters"], "histograms": doc["histograms"]}
        golden = json.loads(GOLDEN.read_text())
        assert produced == golden, (
            "figure5 metrics diverged from the golden; regenerate with the "
            "snippet in this module's docstring if the change is intentional"
        )
