"""Unit tests for the blocking-time analysis (§7 future work)."""

import pytest

from repro.core.blocking import (
    CriticalSection,
    blocking_times_pcp,
    blocking_times_pip,
    equitable_allowance_with_blocking,
    is_feasible_with_blocking,
    priority_ceilings,
    response_time_with_blocking,
)
from repro.core.task import Task, TaskSet


def triple() -> TaskSet:
    return TaskSet(
        [
            Task("hi", cost=10, period=100, deadline=50, priority=3),
            Task("mid", cost=20, period=200, deadline=150, priority=2),
            Task("lo", cost=30, period=400, deadline=350, priority=1),
        ]
    )


SECTIONS = [
    CriticalSection("hi", "r1", 2),
    CriticalSection("lo", "r1", 8),  # shared with hi: ceiling = 3
    CriticalSection("mid", "r2", 5),
    CriticalSection("lo", "r2", 6),  # shared with mid: ceiling = 2
]


class TestCriticalSections:
    def test_duration_positive(self):
        with pytest.raises(ValueError):
            CriticalSection("t", "r", 0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            blocking_times_pcp(triple(), [CriticalSection("ghost", "r", 1)])

    def test_section_longer_than_cost_rejected(self):
        with pytest.raises(ValueError, match="longer than"):
            blocking_times_pcp(triple(), [CriticalSection("hi", "r", 11)])


class TestCeilings:
    def test_ceiling_is_highest_user(self):
        ceilings = priority_ceilings(triple(), SECTIONS)
        assert ceilings == {"r1": 3, "r2": 2}


class TestPcpBlocking:
    def test_bounds(self):
        b = blocking_times_pcp(triple(), SECTIONS)
        # hi can be blocked by lo's r1 section (ceiling 3 >= 3): 8.
        assert b["hi"] == 8
        # mid: lo's sections on r1 (ceiling 3) and r2 (ceiling 2) both
        # qualify; PCP blocks with at most ONE: max(8, 6) = 8.
        assert b["mid"] == 8
        # lo: nothing of lower priority exists.
        assert b["lo"] == 0

    def test_no_sections_means_no_blocking(self):
        assert blocking_times_pcp(triple(), []) == {"hi": 0, "mid": 0, "lo": 0}


class TestPipBlocking:
    def test_bounds(self):
        b = blocking_times_pip(triple(), SECTIONS)
        # hi: only lo's r1 section is relevant (r2 not used at level>=3):
        assert b["hi"] == 8
        # mid: mid-relevant resources are r1 (hi uses it) and r2; lo can
        # block once with its longest such section: max(8, 6) = 8.
        assert b["mid"] == 8
        assert b["lo"] == 0

    def test_pip_sums_across_lower_tasks(self):
        ts = TaskSet(
            [
                Task("top", cost=10, period=100, deadline=90, priority=3),
                Task("a", cost=10, period=200, priority=2),
                Task("b", cost=10, period=200, priority=1),
            ]
        )
        sections = [
            CriticalSection("top", "r1", 1),
            CriticalSection("top", "r2", 1),
            CriticalSection("a", "r1", 4),
            CriticalSection("b", "r2", 5),
        ]
        pip = blocking_times_pip(ts, sections)
        pcp = blocking_times_pcp(ts, sections)
        assert pip["top"] == 9  # one per lower task: 4 + 5
        assert pcp["top"] == 5  # single longest


class TestBlockingRta:
    def test_blocking_adds_to_response(self):
        ts = triple()
        b = blocking_times_pcp(ts, SECTIONS)
        r_hi = response_time_with_blocking(ts["hi"], ts, b)
        assert r_hi == 10 + 8
        r_mid = response_time_with_blocking(ts["mid"], ts, b)
        assert r_mid == 20 + 8 + 10  # cost + blocking + hi interference

    def test_zero_blocking_matches_plain_rta(self):
        from repro.core.feasibility import response_time_constrained

        ts = triple()
        for t in ts:
            assert response_time_with_blocking(t, ts, {}) == response_time_constrained(t, ts)

    def test_requires_constrained_deadline(self):
        ts = TaskSet([Task("t", cost=1, period=10, deadline=25, priority=1)])
        with pytest.raises(ValueError, match="D <= T"):
            response_time_with_blocking(ts["t"], ts, {})

    def test_feasibility_with_blocking(self):
        ts = triple()
        b = blocking_times_pcp(ts, SECTIONS)
        assert is_feasible_with_blocking(ts, b)
        # Inflate blocking beyond hi's slack: infeasible.
        assert not is_feasible_with_blocking(ts, {"hi": 41})


class TestAllowanceWithBlocking:
    def test_blocking_shrinks_allowance(self):
        from repro.core.allowance import equitable_allowance

        ts = triple()
        with_b = equitable_allowance_with_blocking(ts, SECTIONS)
        without_b = equitable_allowance(ts)
        assert with_b <= without_b
        assert with_b > 0

    def test_allowance_maximal_under_blocking(self):
        ts = triple()
        a = equitable_allowance_with_blocking(ts, SECTIONS)
        inflated = ts.inflated(a + 1)
        b = blocking_times_pcp(inflated, SECTIONS)
        assert not is_feasible_with_blocking(inflated, b)

    def test_infeasible_input_rejected(self):
        ts = TaskSet(
            [
                Task("hi", cost=10, period=100, deadline=12, priority=2),
                Task("lo", cost=50, period=200, priority=1),
            ]
        )
        sections = [CriticalSection("lo", "r", 40), CriticalSection("hi", "r", 1)]
        with pytest.raises(ValueError):
            equitable_allowance_with_blocking(ts, sections)
