"""Multiprocessor exhibits: partitioning heuristics and migrate-on-fault.

Two exhibits extend the experiment registry past the paper's single
processor (DESIGN.md §3.6):

* ``mp_partition_heuristics`` — sweeps the four placement heuristics
  over a seeded pool of random systems whose total utilisation exceeds
  one processor, and differentially checks simulated response times
  against the per-processor analysis for the exactly-admitted
  partitions;
* ``mp_fault_migration`` — a deterministic two-processor scenario with
  a repeatedly faulty task, run with migrate-on-fault off and on, so
  the collateral damage the migration removes is pinned.

Exhibit results hold only plain tuples/ints/floats/strings so they
pickle across :class:`~repro.exec.executor.PoolExecutor` workers and
into the result cache.  All simulations flow through
:mod:`repro.exec.sim` (lint rule RT006); all assignment state flows
through :mod:`repro.core.partition` (lint rule RT009).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.context import AnalysisContext
from repro.core.faults import CostOverrun, FaultInjector
from repro.core.partition import Heuristic, PartitionError, partition_tasks
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind
from repro.exec.sim import run_mp_simulation
from repro.exec.spec import ExperimentSpec
from repro.experiments.paper import Claim
from repro.rng import derive_rng
from repro.units import ms, to_ms
from repro.viz.tables import format_table
from repro.workloads.generator import GeneratorConfig, random_taskset

__all__ = [
    "HeuristicRow",
    "MPPartitionResult",
    "MPMigrationResult",
    "mp_partition_heuristics_spec",
    "mp_fault_migration_spec",
    "build_mp_partitions",
    "build_mp_migration",
]

#: Heuristic sweep order (presentation order of the exhibit table).
_HEURISTICS = (
    Heuristic.FIRST_FIT,
    Heuristic.BEST_FIT,
    Heuristic.WORST_FIT,
    Heuristic.RESPONSE_TIME,
)


def _mp_pool(count: int, *, n: int, utilization: float, seed: int) -> list[TaskSet]:
    """Seeded random systems heavy enough to need several processors.

    Periods are drawn on a coarse 10 ms grid so hyperperiods stay small
    enough to simulate; total utilisation > 1 makes single-processor
    placement impossible and multi-processor placement non-trivial.
    """
    rng = derive_rng(seed, "mp-pool", count, n)
    cfg = GeneratorConfig(
        n=n,
        utilization=utilization,
        period_lo=ms(10),
        period_hi=ms(80),
        period_granularity=ms(10),
        deadline_factor=0.9,
    )
    return [random_taskset(cfg, rng=rng) for _ in range(count)]


@dataclass(frozen=True)
class HeuristicRow:
    """One heuristic's outcome over the pool."""

    heuristic: str
    placed: int  # systems where every task found a processor
    feasible: int  # placed systems whose subsets all pass exact analysis
    #: Mean over placed systems of the most-loaded processor's
    #: utilisation (lower = better balanced), in ppm for exactness.
    peak_load_ppm: int


@dataclass(frozen=True)
class MPPartitionResult:
    """The ``mp_partition_heuristics`` exhibit."""

    processors: int
    systems: int
    rows: tuple[HeuristicRow, ...]
    #: Differential check over simulated response-time partitions:
    #: (systems simulated, jobs checked, WCRT violations, deadline misses).
    sim_systems: int
    sim_jobs: int
    sim_wcrt_violations: int
    sim_deadline_misses: int

    def _by_name(self) -> dict[str, HeuristicRow]:
        return {r.heuristic: r for r in self.rows}

    def render(self) -> str:
        rows = [
            (r.heuristic, r.placed, r.feasible, f"{r.peak_load_ppm / 10_000:.2f}%")
            for r in self.rows
        ]
        table = format_table(
            ["heuristic", "placed", "feasible", "mean peak load"],
            rows,
            title=(
                f"Partitioning heuristics - {self.systems} systems over "
                f"{self.processors} processors"
            ),
        )
        tail = (
            f"\ndifferential check: {self.sim_jobs} jobs over "
            f"{self.sim_systems} simulated partitions, "
            f"{self.sim_wcrt_violations} WCRT violations, "
            f"{self.sim_deadline_misses} deadline misses"
        )
        return table + tail

    def claims(self) -> list[Claim]:
        by = self._by_name()
        exact = by["response-time"]
        load_based = [by[h.value] for h in _HEURISTICS if h is not Heuristic.RESPONSE_TIME]
        return [
            Claim(
                "response-time admission only builds feasible partitions",
                exact.feasible == exact.placed,
            ),
            Claim(
                "exact admission places at least as many systems as any "
                "load-based heuristic",
                all(exact.placed >= r.placed for r in load_based),
            ),
            Claim(
                "some load-based placement is analytically infeasible "
                "(U <= 1 per processor is not sufficient)",
                any(r.feasible < r.placed for r in load_based),
            ),
            Claim(
                "worst-fit balances load no worse than best-fit",
                by["worst-fit"].peak_load_ppm <= by["best-fit"].peak_load_ppm,
            ),
            Claim(
                "simulated response times never exceed the per-processor "
                "analytic WCRT",
                self.sim_jobs > 0 and self.sim_wcrt_violations == 0,
            ),
            Claim(
                "no deadline miss in any exactly-admitted partition",
                self.sim_deadline_misses == 0,
            ),
        ]


def mp_partition_heuristics_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="mp_partition_heuristics",
        builder="mp.partitions",
        seed=11,
        params={
            "processors": 2,
            "pool": 12,
            "n": 8,
            "utilization": 1.25,
            "sim_count": 3,
        },
    )


def build_mp_partitions(spec: ExperimentSpec) -> MPPartitionResult:
    processors = spec.param("processors", 2)
    pool = _mp_pool(
        spec.param("pool", 12),
        n=spec.param("n", 8),
        utilization=spec.param("utilization", 1.25),
        seed=spec.seed,
    )
    memo: dict = {}
    ctx = AnalysisContext(TaskSet(()), memo=memo)
    rows: list[HeuristicRow] = []
    exact_systems: list[TaskSet] = []
    for heuristic in _HEURISTICS:
        placed = feasible = 0
        peaks: list[Fraction] = []
        for system in pool:
            try:
                part = partition_tasks(system, processors, heuristic, memo=memo)
            except PartitionError:
                continue
            placed += 1
            peaks.append(max(part.utilizations()))
            reports = part.analyze(context=ctx)
            if all(r.feasible for r in reports.values()):
                feasible += 1
                if heuristic is Heuristic.RESPONSE_TIME:
                    exact_systems.append(system)
        mean_peak = sum(peaks) / len(peaks) if peaks else Fraction(0)
        rows.append(
            HeuristicRow(
                heuristic=heuristic.value,
                placed=placed,
                feasible=feasible,
                peak_load_ppm=int(mean_peak * 1_000_000),
            )
        )

    # Differential check: simulate a few exactly-admitted partitions
    # from the synchronous critical instant and compare every observed
    # response time with the per-processor analytic WCRT.
    sim_systems = sim_jobs = violations = misses = 0
    for system in exact_systems[: spec.param("sim_count", 3)]:
        horizon = min(system.hyperperiod(), ms(500))
        result = run_mp_simulation(
            system,
            processors=processors,
            heuristic=Heuristic.RESPONSE_TIME,
            horizon=horizon,
        )
        sim_systems += 1
        misses += len(result.missed())
        for shard in result.per_processor:
            report = ctx.analyze_set(shard.taskset)
            for job in shard.jobs.values():
                if job.response_time is None:
                    continue
                sim_jobs += 1
                wcrt = report.per_task[job.name].wcrt
                if wcrt is None or job.response_time > wcrt:
                    violations += 1
    return MPPartitionResult(
        processors=processors,
        systems=len(pool),
        rows=tuple(rows),
        sim_systems=sim_systems,
        sim_jobs=sim_jobs,
        sim_wcrt_violations=violations,
        sim_deadline_misses=misses,
    )


# -- migrate-on-fault ----------------------------------------------------------


def _migration_taskset() -> TaskSet:
    """Two processors' worth of tasks: the faulty high-priority task
    and its low-priority victim share processor 0; processor 1 holds
    one light task with enough slack to absorb the migrated faults."""
    return TaskSet(
        [
            Task("tau_f", cost=ms(10), period=ms(50), priority=20),
            Task("tau_v", cost=ms(30), period=ms(100), priority=10),
            Task("tau_s", cost=ms(10), period=ms(100), priority=15),
        ]
    )


_MIGRATION_PINNED = {"tau_f": 0, "tau_v": 0, "tau_s": 1}


@dataclass(frozen=True)
class MPMigrationResult:
    """The ``mp_fault_migration`` exhibit: one faulty-task scenario run
    without and with migrate-on-fault."""

    horizon_ms: int
    fault_extra_ms: int
    #: Without migration: collateral deadline misses of the victim.
    victim_misses_static: int
    #: With migration enabled.
    victim_misses_migrated: int
    spare_misses_migrated: int
    migrations: tuple[tuple[int, str, int, int], ...]  # (time, task, src, dst)
    faulty_final_processor: int
    #: Release-instant drift of migrated jobs (must be 0: migration
    #: preserves ``offset + index * period``).
    release_drift: int

    def render(self) -> str:
        rows = [
            ("static (no migration)", self.victim_misses_static, "-"),
            (
                "migrate-on-fault",
                self.victim_misses_migrated,
                len(self.migrations),
            ),
        ]
        table = format_table(
            ["policy", "victim misses", "migrations"],
            rows,
            title=(
                f"Migrate-on-fault - tau_f overruns +{self.fault_extra_ms} ms "
                f"over {self.horizon_ms} ms"
            ),
        )
        moves = ", ".join(
            f"{task}: cpu{src}->cpu{dst} @{to_ms(t)}ms"
            for t, task, src, dst in self.migrations
        )
        return table + (f"\nmigrations: {moves}" if moves else "")

    def claims(self) -> list[Claim]:
        return [
            Claim(
                "without migration the co-located victim suffers collateral "
                "deadline misses",
                self.victim_misses_static > 0,
            ),
            Claim(
                "the first fault triggers exactly one migration",
                len(self.migrations) == 1,
            ),
            Claim(
                "the faulty task ends up on the least-loaded processor",
                self.faulty_final_processor == 1,
            ),
            Claim(
                "migration removes every subsequent collateral miss",
                self.victim_misses_migrated < self.victim_misses_static
                and self.victim_misses_migrated <= 1,
            ),
            Claim(
                "the target processor's resident task stays miss-free",
                self.spare_misses_migrated == 0,
            ),
            Claim(
                "migrated releases keep their period boundaries",
                self.release_drift == 0,
            ),
        ]


def mp_fault_migration_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="mp_fault_migration",
        builder="mp.migration",
        horizon=ms(600),
        treatment="detect-only",
        params={
            "processors": 2,
            "fault_extra_ms": 60,
            "fault_every": 2,
            "fault_count": 6,
        },
    )


def build_mp_migration(spec: ExperimentSpec) -> MPMigrationResult:
    taskset = _migration_taskset()
    horizon = spec.horizon if spec.horizon is not None else ms(600)
    extra = ms(spec.param("fault_extra_ms", 60))
    step = spec.param("fault_every", 2)
    count = spec.param("fault_count", 6)
    faults = FaultInjector(
        [CostOverrun("tau_f", j, extra) for j in range(0, count * step, step)]
    )
    treatment = TreatmentKind(spec.treatment) if spec.treatment else TreatmentKind.DETECT_ONLY

    def run(migrate: bool):
        return run_mp_simulation(
            taskset,
            processors=spec.param("processors", 2),
            heuristic=Heuristic.RESPONSE_TIME,
            pinned=_MIGRATION_PINNED,
            horizon=horizon,
            faults=faults,
            treatment=treatment,
            migrate_on_fault=migrate,
        )

    static = run(migrate=False)
    migrated = run(migrate=True)

    tau_f = taskset["tau_f"]
    drift = sum(
        abs(job.release - tau_f.release_time(job.index))
        for job in migrated.jobs_of("tau_f")
    )
    return MPMigrationResult(
        horizon_ms=int(to_ms(horizon)),
        fault_extra_ms=int(to_ms(extra)),
        victim_misses_static=len(static.missed("tau_v")),
        victim_misses_migrated=len(migrated.missed("tau_v")),
        spare_misses_migrated=len(migrated.missed("tau_s")),
        migrations=tuple(
            (m.time, m.task, m.source, m.target) for m in migrated.migrations
        ),
        faulty_final_processor=migrated.partition.processor_of("tau_f"),
        release_drift=drift,
    )
