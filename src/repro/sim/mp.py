"""Partitioned multiprocessor simulation — :class:`MultiProcessorSystem`.

One :class:`~repro.sim.simulation.Simulation` shard per processor, each
with its own engine, processor, trace and (per-partition) treatment
plan, advanced over a **shared clock**: the driver repeatedly executes
the globally-earliest pending event (ties: lowest processor index), so
every shard observes a consistent global time order while staying a
plain uniprocessor simulation inside.

Per-partition fault treatments fall out of the uniprocessor machinery:
each shard's plan — equitable or system allowance included — is
computed over *its own subset only*, exactly as the paper computes them
for a single processor.

**Migrate-on-fault** (optional): when a detector detects a fault on a
task, the system asks the live :class:`~repro.core.partition.Partitioner`
for the least-loaded processor whose subset stays *exactly* feasible
with the task added.  If one exists, the task's **future releases** are
re-admitted there: the pending release on the source shard is
cancelled, the assignment moves through the sanctioned
:meth:`~repro.core.partition.Partitioner.reassign` API (rule ``RT009``),
and both shards re-plan their treatments over their new subsets —
detector offsets track the recomputed per-partition WCRTs, mirroring
the §7 dynamic-system behaviour of the admission controller.  The
in-flight faulty job (and any backlog) finishes on the source; release
instants are preserved across the move (``offset + index * period``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.core.faults import FaultModel
from repro.core.partition import Heuristic, PartitionResult, Partitioner, partition_tasks
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan, plan_treatment
from repro.sim.engine import EventHandle, Rank
from repro.sim.jobs import Job
from repro.sim.simulation import SimResult, Simulation
from repro.sim.vm import EXACT_VM, VMProfile

__all__ = ["Migration", "MPSimResult", "MultiProcessorSystem", "simulate_partitioned"]


@dataclass(frozen=True)
class Migration:
    """One migrate-on-fault decision, as recorded by the driver."""

    time: int
    task: str
    source: int
    target: int
    #: First job index released on the target (-1 when no future
    #: release remained inside the horizon — membership moved anyway).
    from_index: int


@dataclass
class MPSimResult:
    """Aggregate of one multiprocessor run.

    ``per_processor[p]`` is processor *p*'s own
    :class:`~repro.sim.simulation.SimResult` (trace, jobs, busy time);
    the helpers below aggregate across processors.  ``partition`` is the
    *final* assignment — after any migrations.
    """

    partition: PartitionResult
    per_processor: tuple[SimResult, ...]
    horizon: int
    migrations: tuple[Migration, ...] = ()

    @property
    def processors(self) -> int:
        return len(self.per_processor)

    @property
    def events_processed(self) -> int:
        return sum(r.events_processed for r in self.per_processor)

    @property
    def busy_time(self) -> int:
        return sum(r.busy_time for r in self.per_processor)

    def jobs_of(self, task: str) -> list[Job]:
        """Jobs of *task* across all processors, ordered by index."""
        out = [j for r in self.per_processor for j in r.jobs_of(task)]
        return sorted(out, key=lambda j: j.index)

    def missed(self, task: str | None = None) -> list[Job]:
        return [j for r in self.per_processor for j in r.missed(task)]

    def stopped(self, task: str | None = None) -> list[Job]:
        return [j for r in self.per_processor for j in r.stopped(task)]

    def max_response_time(self, task: str) -> int | None:
        rts = [j.response_time for j in self.jobs_of(task) if j.response_time is not None]
        return max(rts) if rts else None


class _Shard(Simulation):
    """One processor's simulation, with the hooks the driver needs:
    cancellable pending releases (for migration) and a fault callback.
    """

    def __init__(self, *args, processor_id: int = 0, **kwargs):
        #: task name -> (job index, release handle) of the one armed
        #: future release (releases chain lazily, so at most one is
        #: pending per task).  Set up before super().__init__ because
        #: the base constructor arms the first releases.
        self._pending_release: dict[str, tuple[int, EventHandle]] = {}
        self.on_fault = None
        super().__init__(*args, **kwargs)
        self.processor_id = processor_id

    def _arm_release(self, task: Task, index: int) -> None:
        # Base-class logic with the release handle retained, so a
        # migration can cancel the chain.
        release = self._release_time_at(task, index)
        if release is None or release > self.horizon:
            self._pending_release.pop(task.name, None)
            return
        action = self._make_release(task, index)
        spec = self.plan.detector_for(task.name) if self.plan is not None else None

        def fire() -> None:
            self._pending_release.pop(task.name, None)
            self._arm_release(task, index + 1)
            if spec is not None:
                at = self.engine.now + spec.offset
                if at <= self.horizon:
                    self.engine.schedule(
                        at, self._make_detector_fire(task, index), Rank.DETECTOR
                    )
            action()

        handle = self.engine.schedule(release, fire, Rank.RELEASE)
        self._pending_release[task.name] = (index, handle)

    def _make_detector_fire(self, task: Task, index: int):
        inner = super()._make_detector_fire(task, index)

        def fire() -> None:
            job = self.jobs.get((task.name, index))
            seen = job.fault_detected if job is not None else False
            inner()
            job = self.jobs.get((task.name, index))
            if (
                job is not None
                and job.fault_detected
                and not seen
                and self.on_fault is not None
            ):
                self.on_fault(self, task, job)

        return fire

    # -- migration support ----------------------------------------------------
    def detach_task(self, name: str) -> int:
        """Stop releasing *name* here: cancel its pending release and
        drop it from the shard's task set.  In-flight and backlogged
        jobs keep running to completion on this processor.  Returns the
        first unreleased job index, or -1 when none is pending."""
        self.taskset = self.taskset.without(name)
        pending = self._pending_release.pop(name, None)
        if pending is None:
            return -1
        index, handle = pending
        handle.cancel()
        return index

    def adopt_task(self, task: Task, from_index: int) -> None:
        """Start releasing *task* here from job *from_index* on, at its
        unchanged absolute release instants."""
        self.taskset = self.taskset.with_task(task)
        if task.name not in self._backlog:
            self._backlog[task.name] = deque()
            self._active[task.name] = None
        if from_index >= 0:
            self._arm_release(task, from_index)

    def replace_plan(self, plan: TreatmentPlan | None) -> None:
        """Swap in a re-computed treatment plan (post-migration).  The
        runtime keeps its detection log; already-armed detector fires
        keep their old offsets, every release armed from now on uses
        the new plan — the same one-release grace the admission
        controller's detector changes have."""
        self.plan = plan
        if plan is None:
            self.runtime = None
        elif self.runtime is None:
            self.runtime = plan.runtime()
        else:
            detections = self.runtime.detections
            self.runtime = plan.runtime()
            self.runtime.detections = detections


@dataclass
class _ShardState:
    shard: _Shard


class MultiProcessorSystem:
    """A partitioned multiprocessor run over a shared clock.

    *taskset* is partitioned over *processors* with *heuristic* (or a
    precomputed *partition* is adopted as-is); each subset gets its own
    shard with a per-partition treatment plan.  ``run()`` drives all
    shard engines in global time order and returns an
    :class:`MPSimResult`.
    """

    def __init__(
        self,
        taskset: TaskSet | None = None,
        *,
        processors: int | None = None,
        heuristic: Heuristic = Heuristic.RESPONSE_TIME,
        partition: PartitionResult | None = None,
        pinned: Mapping[str, int] | None = None,
        horizon: int,
        faults: FaultModel | None = None,
        treatment: TreatmentKind | None = None,
        vm: VMProfile = EXACT_VM,
        migrate_on_fault: bool = False,
    ):
        if partition is None:
            if taskset is None or processors is None:
                raise ValueError("need either a partition or taskset + processors")
            partition = partition_tasks(
                taskset, processors, heuristic, pinned=pinned
            )
        # Rebuild the live authority from the snapshot: every admission
        # re-checks, so a hand-built infeasible snapshot is rejected for
        # the response-time heuristic just as partition_tasks would.
        self.partitioner = Partitioner(
            partition.processors, heuristic=partition.heuristic
        )
        for p in range(partition.processors):
            for task in partition.subsets[p]:
                self.partitioner.admit(task, pin=p)
        self.treatment = treatment
        self.vm = vm
        self.horizon = horizon
        self.migrate_on_fault = migrate_on_fault
        self.migrations: list[Migration] = []
        self._migrated: set[str] = set()
        self._states: list[_ShardState] = []
        for p in range(partition.processors):
            subset = self.partitioner.subset(p)
            shard = _Shard(
                subset,
                horizon=horizon,
                faults=faults,
                plan=self._plan_for(subset),
                vm=vm,
                processor_id=p,
            )
            if migrate_on_fault:
                shard.on_fault = self._on_fault
            self._states.append(_ShardState(shard))

    @property
    def shards(self) -> tuple[_Shard, ...]:
        return tuple(state.shard for state in self._states)

    def _plan_for(self, subset: TaskSet) -> TreatmentPlan | None:
        if self.treatment is None or self.treatment is TreatmentKind.NO_DETECTION:
            return None
        if not len(subset):
            return None
        return plan_treatment(subset, self.treatment, rounding=self.vm.timer_rounding)

    # -- migrate-on-fault ------------------------------------------------------
    @staticmethod
    def _consumed(shard: _Shard, job: Job) -> int:
        """CPU the job has consumed so far, charged up to *now* — the
        processor only folds running time into ``job.executed`` at its
        own event boundaries, so a detector firing mid-quantum must add
        the running job's in-progress slice itself."""
        consumed = job.executed
        if job is shard.processor.running and job.last_dispatch is not None:
            consumed += shard.engine.now - job.last_dispatch
        return consumed

    def _on_fault(self, shard: _Shard, task: Task, job: Job) -> None:
        # A detector cannot tell *why* a job is late: a genuine cost
        # overrun and a victim starved by someone else's overrun look
        # identical at the WCRT offset.  Cost monitoring can: only a
        # job that consumed its full nominal budget and is still not
        # done has overrun — migrating interference victims would
        # scatter a single fault across every processor.
        if self._consumed(shard, job) < task.cost + job.overhead:
            return
        # One migration per task: the first fault is the evidence that
        # moves it; bouncing a persistently faulty task between
        # processors would spread the damage instead of containing it.
        if task.name in self._migrated or task.name not in shard.taskset:
            return
        target = self.partitioner.least_loaded_feasible(
            task, exclude=(shard.processor_id,)
        )
        if target is None:
            return
        from_index = shard.detach_task(task.name)
        self._migrated.add(task.name)
        self.partitioner.reassign(task.name, target)
        shard.replace_plan(self._plan_for(shard.taskset))
        target_shard = self._states[target].shard
        target_shard.adopt_task(task, from_index)
        target_shard.replace_plan(self._plan_for(target_shard.taskset))
        self.migrations.append(
            Migration(
                time=shard.engine.now,
                task=task.name,
                source=shard.processor_id,
                target=target,
                from_index=from_index,
            )
        )

    # -- shared-clock driver ---------------------------------------------------
    def run(self) -> MPSimResult:
        engines = [state.shard.engine for state in self._states]
        horizon = self.horizon
        while True:
            best_time: int | None = None
            best_pid = -1
            for pid, engine in enumerate(engines):
                when = engine.peek_time()
                if when is None or when > horizon:
                    continue
                if best_time is None or when < best_time:
                    best_time, best_pid = when, pid
            if best_time is None:
                break
            engines[best_pid].step()
        results = tuple(state.shard.finish() for state in self._states)
        return MPSimResult(
            partition=self.partitioner.result(),
            per_processor=results,
            horizon=horizon,
            migrations=tuple(self.migrations),
        )


def simulate_partitioned(
    taskset: TaskSet,
    *,
    processors: int,
    heuristic: Heuristic = Heuristic.RESPONSE_TIME,
    horizon: int,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | None = None,
    vm: VMProfile = EXACT_VM,
    migrate_on_fault: bool = False,
    pinned: Mapping[str, int] | None = None,
) -> MPSimResult:
    """Partition *taskset* and run it — the multiprocessor analogue of
    :func:`repro.sim.simulation.simulate`."""
    return MultiProcessorSystem(
        taskset,
        processors=processors,
        heuristic=heuristic,
        pinned=pinned,
        horizon=horizon,
        faults=faults,
        treatment=treatment,
        vm=vm,
        migrate_on_fault=migrate_on_fault,
    ).run()
