"""The exhibit registry: every spec the batch executor can run.

This module is the glue between the declarative layer
(:mod:`repro.exec.spec`) and the exhibit implementations: it maps the
``builder`` string each :class:`~repro.exec.spec.ExperimentSpec`
carries onto the module-level function that materialises it, and
enumerates the canonical spec list of the reproduction (nine paper
exhibits, seven ablations, two multiprocessor exhibits, two population
exhibits).  Sweep chunks (``sweep.chunk``) register here too so the
chunked sweep runner shares the same executor/cache plumbing.

:func:`build_exhibit` is deliberately a plain module-level function so
it pickles into :class:`~repro.exec.executor.PoolExecutor` workers.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.exec.spec import ExperimentSpec
from repro.exec.sweep import build_chunk
from repro.experiments import ablations, mp, paper, population, runner

__all__ = [
    "BUILDERS",
    "build_exhibit",
    "paper_specs",
    "ablation_specs",
    "mp_specs",
    "population_specs",
    "all_specs",
    "spec_for",
]

#: Builder name (``ExperimentSpec.builder``) -> builder function.
BUILDERS: Mapping[str, Callable[[ExperimentSpec], Any]] = {
    "paper.table1": paper.build_table1,
    "paper.figure1": paper.build_figure1,
    "paper.table2": paper.build_table2,
    "paper.table3": paper.build_table3,
    "paper.figure3": paper.build_figure3,
    "paper.figure4": paper.build_figure4,
    "paper.figure5": paper.build_figure5,
    "paper.figure6": paper.build_figure6,
    "paper.figure7": paper.build_figure7,
    "ablation.treatments": ablations.build_ablation_treatments,
    "ablation.rounding": ablations.build_ablation_rounding,
    "ablation.allowance": ablations.build_ablation_allowance,
    "ablation.overhead": ablations.build_ablation_overhead,
    "ablation.blocking": ablations.build_ablation_blocking,
    "ablation.servers": ablations.build_ablation_servers,
    "ablation.mk_tolerance": ablations.build_ablation_mk_tolerance,
    "mp.partitions": mp.build_mp_partitions,
    "mp.migration": mp.build_mp_migration,
    "population.landscape": population.build_population_landscape,
    "population.faults": population.build_population_faults,
    "runner.scenario": runner.build_scenario,
    "sweep.chunk": build_chunk,
}


def build_exhibit(spec: ExperimentSpec) -> Any:
    """Materialise one spec (the executor's builder function)."""
    try:
        fn = BUILDERS[spec.builder]
    except KeyError:
        raise ValueError(
            f"spec {spec.name!r} names unknown builder {spec.builder!r}; "
            f"known: {', '.join(sorted(BUILDERS))}"
        ) from None
    return fn(spec)


def paper_specs() -> list[ExperimentSpec]:
    """The nine paper exhibits, in presentation order."""
    return [
        paper.table1_spec(),
        paper.figure1_spec(),
        paper.table2_spec(),
        paper.table3_spec(),
        paper.figure3_spec(),
        paper.figure4_spec(),
        paper.figure5_spec(),
        paper.figure6_spec(),
        paper.figure7_spec(),
    ]


def ablation_specs() -> list[ExperimentSpec]:
    """The seven ablation studies, in presentation order."""
    return [
        ablations.ablation_treatments_spec(),
        ablations.ablation_rounding_spec(),
        ablations.ablation_allowance_spec(),
        ablations.ablation_overhead_spec(),
        ablations.ablation_blocking_spec(),
        ablations.ablation_servers_spec(),
        ablations.ablation_mk_tolerance_spec(),
    ]


def mp_specs() -> list[ExperimentSpec]:
    """The multiprocessor exhibits, in presentation order."""
    return [
        mp.mp_partition_heuristics_spec(),
        mp.mp_fault_migration_spec(),
    ]


def population_specs() -> list[ExperimentSpec]:
    """The population (Monte-Carlo sweep) exhibits, in presentation order."""
    return [
        population.population_landscape_spec(),
        population.population_faults_spec(),
    ]


def all_specs() -> list[ExperimentSpec]:
    """Every registered exhibit spec (paper, ablations, multiprocessor,
    population)."""
    return paper_specs() + ablation_specs() + mp_specs() + population_specs()


def spec_for(name: str) -> ExperimentSpec:
    """Look one spec up by exhibit name."""
    for spec in all_specs():
        if spec.name == name:
            return spec
    raise KeyError(name)
