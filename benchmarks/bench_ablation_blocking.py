"""Ablation: shared resources — blocking bounds vs simulated runs.

The §7 "influence of tolerance on the blocking time b_i" study,
quantified: PCP/PIP blocking terms shrink the tolerance factor, the
simulated protocols stay within the analytic bounds, and ICPP (the
PCP bound) never blocks at acquisition time.
"""

from repro.core.allowance import equitable_allowance
from repro.core.blocking import (
    CriticalSection,
    blocking_times_pcp,
    blocking_times_pip,
    equitable_allowance_with_blocking,
    response_time_with_blocking,
)
from repro.core.task import Task, TaskSet
from repro.sim.locking import LockProtocol, SectionSpec
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind


def system() -> TaskSet:
    # hi's 20-unit deadline leaves 10 units of slack: lo's 8-unit bus
    # section consumes most of it, so the blocking-aware allowance is
    # visibly smaller than the blocking-free one.
    return TaskSet(
        [
            Task("hi", cost=10, period=100, deadline=20, priority=3),
            Task("mid", cost=20, period=200, deadline=150, priority=2),
            Task("lo", cost=30, period=400, deadline=350, priority=1),
        ]
    )


SECTIONS = [
    SectionSpec("hi", "bus", 2, 2),
    SectionSpec("lo", "bus", 0, 8),
    SectionSpec("mid", "dma", 5, 5),
    SectionSpec("lo", "dma", 10, 6),
]
ANALYSIS_SECTIONS = [s.as_analysis_section() for s in SECTIONS]


def test_blocking_shrinks_allowance(benchmark):
    ts = system()

    def run():
        return (
            equitable_allowance(ts),
            equitable_allowance_with_blocking(ts, ANALYSIS_SECTIONS),
        )

    plain, blocked = benchmark(run)
    assert blocked < plain  # the bus steals tolerance


def test_simulated_pip_within_pip_bound(benchmark):
    ts = system()
    blocking = blocking_times_pip(ts, ANALYSIS_SECTIONS)

    def run():
        return simulate(
            ts, horizon=2000, sections=SECTIONS, protocol=LockProtocol.PIP
        )

    res = benchmark(run)
    assert res.missed() == []
    for t in ts:
        observed = res.max_response_time(t.name)
        bound = response_time_with_blocking(t, ts, blocking)
        assert observed is not None and observed <= bound


def test_simulated_icpp_within_pcp_bound(benchmark):
    ts = system()
    blocking = blocking_times_pcp(ts, ANALYSIS_SECTIONS)

    def run():
        return simulate(
            ts, horizon=2000, sections=SECTIONS, protocol=LockProtocol.ICPP
        )

    res = benchmark(run)
    assert res.missed() == []
    assert res.trace.of_kind(EventKind.BLOCKED) == []  # ICPP never blocks
    for t in ts:
        observed = res.max_response_time(t.name)
        bound = response_time_with_blocking(t, ts, blocking)
        assert observed is not None and observed <= bound


def test_pcp_bound_never_looser_than_pip(benchmark):
    ts = system()

    def run():
        return (
            blocking_times_pcp(ts, ANALYSIS_SECTIONS),
            blocking_times_pip(ts, ANALYSIS_SECTIONS),
        )

    pcp, pip = benchmark(run)
    for name in pcp:
        assert pcp[name] <= pip[name]
