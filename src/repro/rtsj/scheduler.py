"""``javax.realtime`` schedulers — including the defective feasibility
tests the paper sets out to fix.

The paper observes (§1):

* "We can easily show a non feasible set of tasks for which **RI**
  returns feasible" — the reference implementation's test is a bare
  utilization check, which is necessary but not sufficient when
  deadlines are shorter than periods;
* "we can see in the file ``PriorityScheduler.java`` that feasibility
  methods are **not yet implemented in jRate**".

Both behaviours are reproduced here so the paper's fix is testable
against them: :class:`RIPriorityScheduler` accepts too much,
:class:`JRatePriorityScheduler` refuses to answer, and the corrected
:class:`ExtendedPriorityScheduler` (the paper's contribution, §2.3)
runs the exact response-time analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.context import AnalysisContext
from repro.core.partition import (
    Heuristic,
    PartitionError,
    PartitionResult,
    partition_tasks,
)
from repro.core.task import Task, TaskSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtsj.thread import RealtimeThread

__all__ = [
    "Scheduler",
    "PriorityScheduler",
    "RIPriorityScheduler",
    "JRatePriorityScheduler",
    "ExtendedPriorityScheduler",
    "MultiprocessorPriorityScheduler",
]


def _as_taskset(threads: Iterable["RealtimeThread"]) -> TaskSet:
    return TaskSet(t.as_task() for t in threads)


class Scheduler:
    """Base scheduler: holds the feasibility set of schedulables."""

    def __init__(self) -> None:
        self._feasibility_set: list["RealtimeThread"] = []

    # RTSJ naming (camelCase) kept for fidelity with the paper's code.
    def addToFeasibility(self, schedulable: "RealtimeThread") -> bool:  # noqa: N802
        """Add *schedulable* to the feasibility set; returns the new
        verdict of :meth:`isFeasible`."""
        if schedulable not in self._feasibility_set:
            self._feasibility_set.append(schedulable)
        return self.isFeasible()

    def removeFromFeasibility(self, schedulable: "RealtimeThread") -> bool:  # noqa: N802
        """Remove *schedulable*; returns True when it was present."""
        try:
            self._feasibility_set.remove(schedulable)
        except ValueError:
            return False
        return True

    def isFeasible(self) -> bool:  # noqa: N802
        raise NotImplementedError

    @property
    def feasibility_set(self) -> tuple["RealtimeThread", ...]:
        return tuple(self._feasibility_set)


class PriorityScheduler(Scheduler):
    """The required RTSJ scheduler: fixed priorities, preemptive.

    The base class leaves :meth:`isFeasible` abstract; concrete
    subclasses model the three implementations the paper discusses.
    """


class RIPriorityScheduler(PriorityScheduler):
    """The reference implementation's *defective* admission control.

    Only checks ``U <= 1`` — necessary, not sufficient.  A system with
    ``D < T`` can pass this test and still miss deadlines (the paper's
    "non feasible set of tasks for which RI returns feasible").
    """

    def isFeasible(self) -> bool:  # noqa: N802
        if not self._feasibility_set:
            return True
        num, den = _as_taskset(self._feasibility_set).utilization_exact()
        return num <= den


class JRatePriorityScheduler(PriorityScheduler):
    """jRate's scheduler: feasibility methods not implemented."""

    def isFeasible(self) -> bool:  # noqa: N802
        raise NotImplementedError(
            "feasibility methods are not implemented in jRate "
            "(PriorityScheduler.java); use ExtendedPriorityScheduler"
        )


class ExtendedPriorityScheduler(PriorityScheduler):
    """The paper's corrected admission control (§2.3).

    Delegates to the exact analysis: load test plus the Figure 2
    worst-case response-time computation for every schedulable.

    Verdicts go through a persistent :class:`AnalysisContext`, whose
    exact-input memo makes the repeated ``addToFeasibility`` /
    ``removeFromFeasibility`` re-analyses incremental: only the
    priority levels a membership change can affect are recomputed.
    """

    def __init__(self) -> None:
        super().__init__()
        self._analysis = AnalysisContext(TaskSet([]))

    def isFeasible(self) -> bool:  # noqa: N802
        if not self._feasibility_set:
            return True
        return self._analysis.is_feasible_set(_as_taskset(self._feasibility_set))


class MultiprocessorPriorityScheduler(PriorityScheduler):
    """Partitioned multiprocessor admission control (DESIGN.md §3.6).

    ``isFeasible`` asks the configured placement heuristic to partition
    the current feasibility set over *processors*; the set is feasible
    exactly when every schedulable can be placed (pinned threads — via
    :class:`~repro.rtsj.params.ProcessingGroupParameters` — on their
    required processor) **and** every resulting subset passes the exact
    per-processor analysis.  Placement probes share one exact-input
    memo across calls, so repeated ``addToFeasibility`` re-partitions
    warm.
    """

    def __init__(
        self,
        processors: int,
        *,
        heuristic: Heuristic = Heuristic.RESPONSE_TIME,
    ):
        super().__init__()
        if processors <= 0:
            raise ValueError(f"processors must be > 0, got {processors}")
        self.processors = processors
        self.heuristic = heuristic
        #: Shared exact-input WCRT memo, kept across partition attempts.
        self._memo: dict = {}
        self._partition: PartitionResult | None = None

    @staticmethod
    def _pin_of(thread: "RealtimeThread") -> int | None:
        group = getattr(thread, "getProcessingGroupParameters", None)
        if group is None:
            return None
        params = group()
        return params.getProcessor() if params is not None else None

    def partition(self) -> PartitionResult | None:
        """Partition the feasibility set with the chosen heuristic.

        Returns the assignment, or None when some thread cannot be
        placed.  The result is also cached for :meth:`processor_of`.
        """
        threads = self._feasibility_set
        pinned = {
            t.name: pin for t in threads if (pin := self._pin_of(t)) is not None
        }
        for name, pin in pinned.items():
            if pin >= self.processors:
                raise ValueError(
                    f"{name}: pinned to processor {pin} but scheduler has "
                    f"{self.processors}"
                )
        try:
            self._partition = partition_tasks(
                _as_taskset(threads),
                self.processors,
                self.heuristic,
                pinned=pinned,
                memo=self._memo,
            )
        except PartitionError:
            self._partition = None
        return self._partition

    def processor_of(self, thread: "RealtimeThread") -> int | None:
        """The processor the last partition placed *thread* on."""
        if self._partition is None:
            return None
        return self._partition.assignment.get(thread.name)

    def isFeasible(self) -> bool:  # noqa: N802
        if not self._feasibility_set:
            return True
        partition = self.partition()
        if partition is None:
            return False
        # Load-based heuristics can place every task and still yield an
        # analytically infeasible subset (U <= 1 is only necessary);
        # the verdict is always the exact per-processor analysis.
        if self.heuristic.exact:
            return True
        ctx = AnalysisContext(TaskSet([]), memo=self._memo)
        return all(
            report.feasible for report in partition.analyze(context=ctx).values()
        )
