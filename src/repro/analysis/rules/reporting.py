"""RT007 — library code must not ``print()``.

With the observability layer in place (:mod:`repro.obs`), there is a
sanctioned path for every kind of runtime output: trace events go to
sinks, numbers go to the metrics registry, profiles render on demand.
A bare ``print()`` in library code bypasses all of it — the output
can't be captured, filtered, redirected to a trace file, or asserted on
by tests, and it pollutes stdout for callers composing the modules
programmatically.

Presentation entry points are exempt: command-line modules
(``cli.py``, ``__main__.py``) and report renderers (``report.py``)
exist precisely to talk to a terminal.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import Rule, register

__all__ = ["NoBarePrint"]

#: Module basenames whose whole purpose is terminal output.
_EXEMPT_BASENAMES = frozenset({"cli.py", "__main__.py", "report.py"})

_HINT = (
    "return or log the value instead: raise it, record it via repro.obs "
    "(metrics/trace), or move the print into a cli.py/report.py entry point"
)


def _in_library(path: str) -> bool:
    p = Path(path)
    return "repro/" in p.as_posix() and p.name not in _EXEMPT_BASENAMES


@register
class NoBarePrint(Rule):
    """RT007: bare ``print()`` calls in library code."""

    code = "RT007"
    name = "no-bare-print"
    description = (
        "print() in library modules bypasses the observability layer "
        "(trace sinks, metrics, report renderers) and pollutes stdout for "
        "programmatic callers; only CLI and report modules may print."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._active = _in_library(ctx.path)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._active
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self.report(
                node,
                "bare print() in library code",
                hint=_HINT,
            )
        self.generic_visit(node)
