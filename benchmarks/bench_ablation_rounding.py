"""Ablation: the jRate 10 ms timer-rounding quirk (§6.2).

The paper accepts 1-3 ms of detection lateness because jRate's
``PeriodicTimer`` is only precise at 10 ms multiples.  This ablation
quantifies what the quirk costs: with exact timers, detection happens
at the WCRT; with rounding, every detection is late by the rounding
delay, and a faulty job may squeeze in up to that much extra damage.
"""

import pytest

from repro.core.detection import EXACT, JRATE_10MS, Rounding, RoundingMode
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind
from repro.sim.vm import EXACT_VM, VMProfile
from repro.units import ms
from repro.workloads.scenarios import paper_fault, paper_figures_taskset, paper_horizon


def detection_time(vm: VMProfile) -> int:
    result = simulate(
        paper_figures_taskset(),
        horizon=paper_horizon(),
        faults=paper_fault(),
        treatment=TreatmentKind.DETECT_ONLY,
        vm=vm,
    )
    detections = [
        e
        for e in result.trace.of_kind(EventKind.FAULT_DETECTED)
        if (e.task, e.job) == ("tau1", 5)
    ]
    return detections[0].time


def test_exact_timers_detect_at_wcrt(benchmark):
    t = benchmark(detection_time, EXACT_VM)
    assert t == ms(1029)


def test_jrate_rounding_delays_detection(benchmark):
    vm = VMProfile(name="jrate-timers", timer_rounding=JRATE_10MS)
    t = benchmark(detection_time, vm)
    assert t == ms(1030)  # exactly the 1 ms delay of Figure 4
    assert t - detection_time(EXACT_VM) == ms(1)


@pytest.mark.parametrize("resolution_ms,expected_delay_ms", [(1, 0), (5, 1), (10, 1), (50, 21)])
def test_rounding_resolution_sweep(benchmark, resolution_ms, expected_delay_ms):
    """Detection lateness as the timer resolution coarsens: with a
    50 ms grid, tau1's detector lands at 50 ms (21 late)."""
    vm = VMProfile(
        name=f"res{resolution_ms}",
        timer_rounding=Rounding(RoundingMode.UP, ms(resolution_ms)),
    )
    t = benchmark(detection_time, vm)
    assert t == ms(1029) + ms(expected_delay_ms)


def test_stopping_still_safe_under_rounding(benchmark):
    """Even with 10 ms-rounded detectors, the immediate-stop policy
    protects the lower-priority tasks on the paper's system (its 1 ms
    lateness fits inside tau1's 41 ms slack)."""

    def run():
        vm = VMProfile(name="jrate-timers", timer_rounding=JRATE_10MS)
        return simulate(
            paper_figures_taskset(),
            horizon=paper_horizon(),
            faults=paper_fault(),
            treatment=TreatmentKind.IMMEDIATE_STOP,
            vm=vm,
        )

    result = benchmark(run)
    assert result.missed() == []
    (stopped,) = result.stopped()
    assert stopped.finished_at == ms(1030)
