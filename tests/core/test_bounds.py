"""Unit tests for the sufficient schedulability bounds [11], [2]."""

import math

import pytest

from repro.core.bounds import (
    hyperbolic_test,
    is_implicit_deadline,
    is_rate_monotonic,
    liu_layland_bound,
    liu_layland_test,
)
from repro.core.feasibility import is_feasible
from repro.core.task import Task, TaskSet


def implicit(name, cost, period, priority):
    return Task(name=name, cost=cost, period=period, priority=priority)


class TestLiuLaylandBound:
    def test_one_task(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)

    def test_two_tasks(self):
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))

    def test_decreasing_in_n(self):
        values = [liu_layland_bound(n) for n in range(1, 20)]
        assert values == sorted(values, reverse=True)

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2), abs=1e-4)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)


class TestLiuLaylandTest:
    def test_accepts_low_utilization(self):
        ts = TaskSet([implicit("a", 1, 10, 2), implicit("b", 1, 10, 1)])
        assert liu_layland_test(ts)

    def test_rejects_above_bound(self):
        # U = 0.9 > 0.828 for n=2: unknown (False), though actually
        # schedulable for harmonic periods.
        ts = TaskSet([implicit("a", 5, 10, 2), implicit("b", 8, 20, 1)])
        assert not liu_layland_test(ts)

    def test_empty_set(self):
        assert liu_layland_test(TaskSet([]))

    def test_boundary_exact(self):
        # Single task at U = 1.0 sits exactly on the n=1 bound.
        ts = TaskSet([implicit("a", 10, 10, 1)])
        assert liu_layland_test(ts)


class TestHyperbolicTest:
    def test_dominates_liu_layland(self):
        # Any set accepted by LL must be accepted by the hyperbolic
        # bound (Bini & Buttazzo's dominance result).
        sets = [
            TaskSet([implicit("a", 2, 10, 2), implicit("b", 3, 15, 1)]),
            TaskSet([implicit("a", 1, 4, 3), implicit("b", 1, 8, 2), implicit("c", 1, 6, 1)]),
            TaskSet([implicit("a", 5, 10, 2), implicit("b", 8, 20, 1)]),
        ]
        for ts in sets:
            if liu_layland_test(ts):
                assert hyperbolic_test(ts)

    def test_accepts_some_ll_rejects(self):
        # U = 1/2 + 1/3 = 0.833 > 0.828 (LL bound for n=2), but the
        # hyperbolic product is (1.5)(4/3) = 2.0 <= 2.
        ts = TaskSet([implicit("a", 5, 10, 2), implicit("b", 10, 30, 1)])
        assert not liu_layland_test(ts)
        assert hyperbolic_test(ts)

    def test_rejects_overload(self):
        ts = TaskSet([implicit("a", 9, 10, 2), implicit("b", 9, 10, 1)])
        assert not hyperbolic_test(ts)

    def test_sufficiency_vs_exact_analysis(self):
        # Whenever the hyperbolic test accepts an RM implicit-deadline
        # set, the exact analysis must agree.
        candidates = [
            TaskSet([implicit("a", 1, 4, 2), implicit("b", 2, 8, 1)]),
            TaskSet([implicit("a", 2, 8, 3), implicit("b", 3, 12, 2), implicit("c", 1, 24, 1)]),
            TaskSet([implicit("a", 3, 9, 2), implicit("b", 4, 12, 1)]),
        ]
        for ts in candidates:
            assert is_implicit_deadline(ts) and is_rate_monotonic(ts)
            if hyperbolic_test(ts):
                assert is_feasible(ts)


class TestPreconditionHelpers:
    def test_implicit_deadline(self):
        assert is_implicit_deadline(TaskSet([implicit("a", 1, 10, 1)]))
        assert not is_implicit_deadline(
            TaskSet([Task("a", cost=1, period=10, deadline=5, priority=1)])
        )

    def test_rate_monotonic_true(self):
        ts = TaskSet([implicit("fast", 1, 5, 2), implicit("slow", 1, 50, 1)])
        assert is_rate_monotonic(ts)

    def test_rate_monotonic_false(self):
        ts = TaskSet([implicit("slow", 1, 50, 2), implicit("fast", 1, 5, 1)])
        assert not is_rate_monotonic(ts)

    def test_equal_periods_any_order_is_rm(self):
        ts = TaskSet([implicit("a", 1, 10, 2), implicit("b", 1, 10, 1)])
        assert is_rate_monotonic(ts)
