"""The paper's concrete task systems and reference examples.

Everything the evaluation section (§6) runs on, plus the motivating
example of §2, is defined here once so tests, benchmarks and examples
agree on the numbers.
"""

from __future__ import annotations

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.task import Task, TaskSet
from repro.units import ms

__all__ = [
    "paper_table2",
    "paper_figures_taskset",
    "paper_fault",
    "paper_fault_extra_ms",
    "paper_horizon",
    "paper_table1",
    "lehoczky_example",
]

#: Overrun injected into tau1's job released at t = 1000 ms.  Chosen so
#: that, without treatment, tau1 still meets its own deadline
#: (29 + 40 = 69 <= 70) while tau3 misses (87 + 40 = 127 > 120) —
#: exactly the Figure 3 situation ("tau1 ends before its deadline, just
#: as tau2, but tau3 misses its deadline").
PAPER_FAULT_EXTRA_MS = 40
#: Index of tau1's faulty job: released at 5 * 200 = 1000 ms, the
#: "fifth job of task tau1" the paper's figures zoom on.
PAPER_FAULTY_JOB = 5


def paper_table2() -> TaskSet:
    """Table 2's tested system (synchronous release).

    ========  ===  ====  ====  ===
    task       P    T     D     C
    ========  ===  ====  ====  ===
    tau1       20   200    70   29
    tau2       18   250   120   29
    tau3       16  1500   120   29
    ========  ===  ====  ====  ===

    Expected analysis results (paper): WCRT = 29, 58, 87 ms and
    equitable allowance A_i = 11 ms.
    """
    return TaskSet(
        [
            Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20),
            Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18),
            Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16),
        ]
    )


def paper_figures_taskset() -> TaskSet:
    """Table 2's system phased as the Figures 3-7 executions show it.

    The figures display "the fifth job of task tau1, which coincides
    with the activation of a job of tau2 and tau3": with synchronous
    release tau1 (T=200) and tau2 (T=250) both release at t = 1000 ms,
    and tau3's missed deadline sits at 1120 ms = 1000 + D3, so tau3
    carries a 1000 ms release offset (see DESIGN.md §4).  Offsets do
    not affect the (synchronous worst-case) analysis results.
    """
    base = paper_table2()
    return TaskSet(
        [
            base["tau1"],
            base["tau2"],
            Task(
                "tau3",
                cost=ms(29),
                period=ms(1500),
                deadline=ms(120),
                priority=16,
                offset=ms(1000),
            ),
        ]
    )


def paper_fault(extra_ms: int = PAPER_FAULT_EXTRA_MS) -> FaultInjector:
    """The §6 fault: tau1's job at t=1000 ms overruns by *extra_ms*.

    "A cost overrun was voluntarily added for the priority task, which
    represents the most unfavourable case."
    """
    return FaultInjector([CostOverrun("tau1", PAPER_FAULTY_JOB, ms(extra_ms))])


def paper_fault_extra_ms() -> int:
    """Default overrun magnitude (ms) used by the figure experiments."""
    return PAPER_FAULT_EXTRA_MS


def paper_horizon() -> int:
    """Simulation horizon covering the figures' window with margin."""
    return ms(1600)


def paper_table1() -> TaskSet:
    """Table 1's motivating example, as printed (P, D, T, C).

    ========  ===  ===  ===  ===
    task       P    D    T    C
    ========  ===  ===  ===  ===
    tau1       20    6    6    3
    tau2       15    2    4    2
    ========  ===  ===  ===  ===

    NB: as printed, the system is *infeasible* — tau2 (lower priority)
    has D=2 but suffers 3 units of tau1 interference at the critical
    instant, so its first response time is 5 > 2.  The table only
    motivates Figure 1's point that the worst case needs a busy-period
    analysis; :func:`lehoczky_example` is the canonical well-posed
    instance of that point.  Times in milliseconds.
    """
    return TaskSet(
        [
            Task("tau1", cost=ms(3), period=ms(6), deadline=ms(6), priority=20),
            Task("tau2", cost=ms(2), period=ms(4), deadline=ms(2), priority=15),
        ]
    )


def lehoczky_example() -> TaskSet:
    """Lehoczky's classic arbitrary-deadline system [10].

    Two tasks, C = (26, 62), T = (70, 100), with tau2's deadline beyond
    its period.  tau2's per-job response times over the level-2 busy
    period are 114, 102, 116, 104, 118, 106, 94: the worst case (118)
    occurs at the *fifth* job, not at the critical-instant job — the
    phenomenon Figure 1 illustrates and the Figure 2 algorithm handles.
    Unit-less times (interpreted as nanoseconds internally).
    """
    return TaskSet(
        [
            Task("t1", cost=26, period=70, priority=2),
            Task("t2", cost=62, period=100, deadline=120, priority=1),
        ]
    )
