"""``javax.realtime.RealtimeThread`` over the simulator.

A real RTSJ thread runs Java code that loops calling
``waitForNextPeriod()``.  In the simulation the thread's *logic* is a
CPU demand (its cost, possibly perturbed by injected faults), and the
period loop is driven by the engine; the thread object exposes the same
lifecycle — construct with scheduling/release parameters, ``start()``,
observe job boundaries — and is converted to a
:class:`~repro.core.task.Task` when the system is run.

Deviation from Java: threads belong to an explicit
:class:`~repro.rtsj.system.RealtimeSystem` (passed at construction)
instead of a process-global VM, so tests and experiments stay isolated.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.task import Task
from repro.rtsj.params import PeriodicParameters, PriorityParameters
from repro.rtsj.scheduler import ExtendedPriorityScheduler, Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.jobs import Job
    from repro.rtsj.system import RealtimeSystem

__all__ = ["RealtimeThread"]

_name_counter = itertools.count()


class RealtimeThread:
    """A periodic real-time thread.

    Parameters mirror the RTSJ constructor: *scheduling* carries the
    priority, *release* the cost/period/deadline/start.  The optional
    *scheduler* is the admission-control implementation used by
    ``addToFeasibility`` (defaults to the system's scheduler).
    """

    def __init__(
        self,
        scheduling: PriorityParameters,
        release: PeriodicParameters,
        system: "RealtimeSystem",
        *,
        name: str | None = None,
        scheduler: Scheduler | None = None,
    ):
        if release.getCost() is None:
            raise ValueError("release parameters must carry a cost")
        self._scheduling = scheduling
        self._release = release
        self._system = system
        self.name = name if name is not None else f"thread-{next(_name_counter)}"
        self._scheduler = scheduler if scheduler is not None else system.scheduler
        self._started = False
        self._overruns: dict[int, int] = {}
        system._register_thread(self)

    # -- RTSJ API -------------------------------------------------------------
    def getSchedulingParameters(self) -> PriorityParameters:  # noqa: N802
        return self._scheduling

    def getReleaseParameters(self) -> PeriodicParameters:  # noqa: N802
        return self._release

    def addToFeasibility(self) -> bool:  # noqa: N802
        """Register with the scheduler's feasibility set (the defective
        base implementations are fixed by the extended subclass)."""
        return self._scheduler.addToFeasibility(self)

    def removeFromFeasibility(self) -> bool:  # noqa: N802
        return self._scheduler.removeFromFeasibility(self)

    def start(self) -> None:
        """Mark the thread live; its releases begin when the system
        runs.  Idempotent start is an error, as in Java."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True

    def waitForNextPeriod(self) -> bool:  # noqa: N802
        """In real RTSJ this blocks the calling thread until its next
        release.  Under simulation the engine drives job boundaries and
        calls :meth:`_job_started` / :meth:`_job_ended` instead; this
        method exists for API completeness and always returns True (the
        'released on time' return)."""
        return True

    @property
    def started(self) -> bool:
        return self._started

    # -- simulation bridge ------------------------------------------------------
    def as_task(self) -> Task:
        """The analysis/simulation view of this thread."""
        release = self._release
        return Task(
            name=self.name,
            cost=release.getCost() or 0,
            period=release.getPeriod(),
            deadline=release.getDeadline() or release.getPeriod(),
            priority=self._scheduling.getPriority(),
            offset=release.getStart(),
        )

    def inject_cost_overrun(self, job: int, extra: int) -> None:
        """Test/experiment scaffolding: job *job* will demand
        ``cost + extra`` ns (the paper 'voluntarily added' such an
        overrun to its priority task)."""
        if extra == 0:
            return
        self._overruns[job] = self._overruns.get(job, 0) + extra

    @property
    def injected_overruns(self) -> dict[int, int]:
        return dict(self._overruns)

    def _job_started(self, job: "Job") -> None:
        """Hook: the job began executing (simulator callback)."""

    def _job_ended(self, job: "Job") -> None:
        """Hook: the job completed or was stopped (simulator callback)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RealtimeThread({self.name!r})"


def default_scheduler() -> Scheduler:
    """The corrected scheduler, used when none is specified."""
    return ExtendedPriorityScheduler()
