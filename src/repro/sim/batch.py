"""Vectorized lock-step simulation of task-system *populations*.

The paper's claims are per-system; evaluating them over populations
(thousands of generated systems swept across utilization, task count
and fault rate) makes per-system event loops the bottleneck.  This
module adds a numpy stepper that advances hundreds of independent
systems at once for the common case the sweeps hit most — preemptive
fixed-priority, periodic releases, no faults, no treatments, no locks,
no servers, zero context-switch cost:

* state is a handful of ``(systems, tasks)`` int64 arrays
  (``next_release``, head-job ``remaining``, released/done counters);
* each step advances every system to its *own* next event instant
  (completion or release) and applies all simultaneous events in the
  engine's rank order (completions before releases, so a job finishing
  exactly at a release instant frees the thread for the backlog job —
  :class:`repro.sim.engine.Rank` semantics, reproduced in closed form);
* deadline misses are evaluated in closed form afterwards: a released
  job missed iff its absolute deadline lies within the horizon and it
  did not finish by then (finishing *exactly* at the deadline meets it,
  matching the COMPLETION < DEADLINE_CHECK rank order).

Results are **bit-identical** to :func:`repro.sim.simulation.simulate`
run per system — :func:`schedule_fingerprint` hashes the per-job
``(name, index, release, finished, missed, stopped, detected)`` records
of either path and the equivalence suite asserts equality over hundreds
of ``derive_rng``-seeded systems.

Systems that need anything richer (fault models, treatment plans,
critical sections, explicit arrivals, context-switch costs, duplicate
priorities) are rejected by :func:`classify` and must be routed to the
exact per-system engine by the caller's classifier fallback (see
``repro.exec.sweep``; lint rule RT010 keeps that routing honest).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.faults import FaultInjector, FaultModel, NoFaults, RandomFaults
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan
from repro.rng import stable_hash
from repro.sim.simulation import SimResult
from repro.sim.vm import EXACT_VM, VMProfile

__all__ = [
    "JobRecord",
    "BatchSystemResult",
    "classify",
    "simulate_batch",
    "sim_job_records",
    "schedule_fingerprint",
]

#: One job's observable outcome: ``(task name, job index, release,
#: finished_at or -1, deadline_missed, was_stopped, fault_detected)``.
#: The shared vocabulary of the batched and exact paths — fingerprints
#: hash a sorted tuple of these.
JobRecord = tuple[str, int, int, int, bool, bool, bool]

#: Sentinel "no pending event" instant (far beyond any horizon).
_INF = np.int64(1 << 62)


@dataclass(frozen=True)
class BatchSystemResult:
    """One system's outcome from the vectorized stepper.

    The counters are aggregated from the same arrays the records come
    from (prefix sums, not a Python pass over the tuples), so
    consumers on the hot path never re-iterate millions of records;
    the stepper-parity suite pins them equal to the exact engine's."""

    horizon: int
    records: tuple[JobRecord, ...]
    released: int
    completed: int
    misses: int
    #: Distinct tasks with at least one missed job (the stepper runs
    #: only fault-free systems, so every failed task is "collateral"
    #: of overload, never of an injected fault).
    failed_task_count: int


def classify(
    taskset: TaskSet,
    *,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
    arrivals: Any = None,
    sections: Any = None,
) -> str | None:
    """Why this configuration cannot take the vectorized path, or
    ``None`` when it can.

    The stepper models exactly what :func:`simulate` does for the
    no-fault preemptive fixed-priority case; every knob that would
    change the schedule routes the system to the exact engine instead.
    """
    if faults is not None and not _trivial_faults(faults):
        return "fault model injects demand deviations"
    if treatment is not None and treatment is not TreatmentKind.NO_DETECTION:
        return "treatment plan installs detectors"
    if vm.context_switch != 0:
        return "context-switch cost charged per dispatch"
    if arrivals:
        return "explicit (sporadic) arrival times"
    if sections:
        return "critical sections / locking"
    priorities = [t.priority for t in taskset]
    if len(set(priorities)) != len(priorities):
        return "duplicate priorities (FIFO tie-break needs the engine)"
    return None


def _trivial_faults(faults: FaultModel) -> bool:
    """Fault models under which every demand equals the declared cost."""
    if isinstance(faults, NoFaults):
        return True
    if isinstance(faults, FaultInjector):
        return not faults.deviations
    if isinstance(faults, RandomFaults):
        return faults.rate == 0.0
    return False


#: Systems stepped together.  Lock-step cost per bucket is
#: ``max(event count) x per-iteration overhead``, so buckets are filled
#: with event-count-sorted systems: heterogeneous populations (wide
#: log-uniform periods) then pay the busy systems' iteration count only
#: for the buckets that contain them, not for everyone.
_BUCKET = 512


def simulate_batch(
    systems: Sequence[TaskSet],
    horizons: Sequence[int],
) -> list[BatchSystemResult]:
    """Run every system on the vectorized stepper.

    Systems are stepped in event-count-sorted buckets (an internal
    layout choice — every system is independent, so results are
    identical to any other grouping).  Callers must have routed each
    system through :func:`classify` first; the only check repeated here
    is the cheap priority one (everything else is configuration the
    stepper never sees).
    """
    if len(systems) != len(horizons):
        raise ValueError("need one horizon per system")
    if not systems:
        return []
    for ts in systems:
        prios = [t.priority for t in ts]
        if len(set(prios)) != len(prios):
            raise ValueError("duplicate priorities: classify() should have rejected this system")
    if len(systems) <= _BUCKET:
        return _step_lockstep(systems, list(horizons))
    weights = [
        sum(
            (h - t.offset) // t.period + 1
            for t in ts
            if t.offset <= h
        )
        for ts, h in zip(systems, horizons)
    ]
    order = sorted(range(len(systems)), key=lambda i: (weights[i], i))
    results: list[BatchSystemResult | None] = [None] * len(systems)
    for lo in range(0, len(order), _BUCKET):
        idx = order[lo : lo + _BUCKET]
        for i, res in zip(
            idx, _step_lockstep([systems[i] for i in idx], [horizons[i] for i in idx])
        ):
            results[i] = res
    return [r for r in results if r is not None]


def _step_lockstep(
    systems: Sequence[TaskSet],
    horizons: Sequence[int],
) -> list[BatchSystemResult]:
    """One lock-step pass over *systems* (see :func:`simulate_batch`)."""
    count = len(systems)
    width = max(len(ts) for ts in systems)

    # Padded (systems, tasks) parameter arrays; tasks come priority-
    # sorted out of TaskSet, so column order IS dispatch order and the
    # running task of a system is its first column with backlog.
    cost = np.zeros((count, width), dtype=np.int64)
    period = np.ones((count, width), dtype=np.int64)
    deadline = np.zeros((count, width), dtype=np.int64)
    offset = np.zeros((count, width), dtype=np.int64)
    valid = np.zeros((count, width), dtype=bool)
    horizon = np.asarray(list(horizons), dtype=np.int64)[:, None]
    if np.any(horizon <= 0):
        raise ValueError("horizon must be > 0")
    for s, ts in enumerate(systems):
        for i, task in enumerate(ts):
            cost[s, i] = task.cost
            period[s, i] = task.period
            deadline[s, i] = task.deadline
            offset[s, i] = task.offset
            valid[s, i] = True

    # Per-(system, task) job counts over the horizon (the engine only
    # ever schedules releases at or before it), and flat result slots.
    counts = np.where(
        valid & (offset <= horizon), (horizon - offset) // period + 1, 0
    )
    counts_flat = counts.reshape(-1)
    job_base = np.concatenate(([0], np.cumsum(counts_flat)[:-1])).reshape(count, width)
    total_jobs = int(counts_flat.sum())
    finished = np.full(total_jobs, -1, dtype=np.int64)

    # Mutable stepper state.
    next_rel = np.where(valid & (offset <= horizon), offset, _INF)
    released = np.zeros((count, width), dtype=np.int64)
    done = np.zeros((count, width), dtype=np.int64)
    head_rem = np.zeros((count, width), dtype=np.int64)
    now = np.zeros(count, dtype=np.int64)
    rows = np.arange(count)

    horizon1 = horizon[:, 0]
    hbc = np.broadcast_to(horizon, (count, width))
    while True:
        active = released > done
        any_active = active.any(axis=1)
        run_idx = np.argmax(active, axis=1)  # first backlogged column = running task
        t_complete = now + head_rem[rows, run_idx]
        t_complete[~any_active] = _INF
        t_next = np.minimum(t_complete, next_rel.min(axis=1))
        live = t_next <= horizon1
        if not live.any():
            break
        # Mask finished systems out of every instant comparison below
        # (no event time is negative, so -1 matches nothing).
        t_next[~live] = -1
        # Charge the running head for the interval it just executed.
        charge = live & any_active
        head_rem[rows[charge], run_idx[charge]] -= (t_next - now)[charge]
        now[live] = t_next[live]
        # Completions first (Rank.COMPLETION < Rank.RELEASE): the head
        # job ends, and the next backlogged job of the same thread —
        # if any — becomes the head immediately, within this instant.
        comp = charge & (t_complete == t_next)
        if comp.any():
            cr, cc = rows[comp], run_idx[comp]
            finished[job_base[cr, cc] + done[cr, cc]] = t_next[comp]
            done[cr, cc] += 1
            head_rem[cr, cc] = cost[cr, cc]  # backlog head (no-op when idle)
        # Then releases: every task whose next release is this instant.
        rel = next_rel == t_next[:, None]
        if rel.any():
            was_idle = released == done
            released[rel] += 1
            fresh = rel & was_idle
            head_rem[fresh] = cost[fresh]
            nxt = next_rel[rel] + period[rel]
            next_rel[rel] = np.where(nxt <= hbc[rel], nxt, _INF)

    if not np.array_equal(released, counts):  # pragma: no cover - invariant
        raise AssertionError("stepper released a different job set than the closed form")

    # Closed-form per-job outcomes over the flat slots.
    ks = np.arange(total_jobs, dtype=np.int64) - np.repeat(
        job_base.reshape(-1), counts_flat
    )
    rel_flat = np.repeat(offset.reshape(-1), counts_flat) + ks * np.repeat(
        period.reshape(-1), counts_flat
    )
    dl_flat = rel_flat + np.repeat(deadline.reshape(-1), counts_flat)
    hz_flat = np.repeat(hbc.reshape(-1), counts_flat)
    missed = (dl_flat <= hz_flat) & ((finished < 0) | (finished > dl_flat))

    # Per-system / per-task aggregates at C speed: prefix sums over the
    # contiguous flat job segments (exact for empty segments, e.g. a
    # task whose offset lies beyond the horizon) — the counters
    # consumers read instead of re-iterating the record tuples.
    jobs_per_sys = counts.sum(axis=1)
    sys_starts = np.concatenate(([0], np.cumsum(jobs_per_sys)[:-1]))
    sys_ends = sys_starts + jobs_per_sys
    cum_completed = np.concatenate(([0], np.cumsum(finished >= 0)))
    cum_missed = np.concatenate(([0], np.cumsum(missed)))
    sys_completed = cum_completed[sys_ends] - cum_completed[sys_starts]
    sys_missed = cum_missed[sys_ends] - cum_missed[sys_starts]
    flat_starts = job_base.reshape(-1)
    task_missed = cum_missed[flat_starts + counts_flat] - cum_missed[flat_starts]
    failed_tasks = (task_missed.reshape(count, width) > 0).sum(axis=1)

    results: list[BatchSystemResult] = []
    ks_l = ks.tolist()
    rel_l = rel_flat.tolist()
    fin_l = finished.tolist()
    miss_l = missed.tolist()
    for s, ts in enumerate(systems):
        tasks = list(ts)
        records: list[JobRecord] = []
        # Emit in task-name order: record tuples sort by name first and
        # job index second, so the concatenation is already sorted.
        for i in sorted(range(len(tasks)), key=lambda j: tasks[j].name):
            base = int(job_base[s, i])
            end = base + int(counts[s, i])
            records.extend(
                zip(  # C-level tuple assembly: millions of records per sweep
                    itertools.repeat(tasks[i].name),
                    ks_l[base:end],
                    rel_l[base:end],
                    fin_l[base:end],
                    miss_l[base:end],
                    itertools.repeat(False),
                    itertools.repeat(False),
                )
            )
        results.append(
            BatchSystemResult(
                horizon=int(horizon[s, 0]),
                records=tuple(records),
                released=int(jobs_per_sys[s]),
                completed=int(sys_completed[s]),
                misses=int(sys_missed[s]),
                failed_task_count=int(failed_tasks[s]),
            )
        )
    return results


def sim_job_records(result: SimResult) -> tuple[JobRecord, ...]:
    """The :data:`JobRecord` view of an exact-engine run (sorted)."""
    records = sorted(
        (
            job.name,
            job.index,
            job.release,
            job.finished_at if job.finished_at is not None else -1,
            bool(job.deadline_missed),
            bool(job.was_stopped),
            bool(job.fault_detected),
        )
        for job in result.jobs.values()
    )
    return tuple(records)


def schedule_fingerprint(result: SimResult | BatchSystemResult) -> str:
    """Stable content hash of one system's schedule outcome.

    Identical for a vectorized and an exact run of the same system —
    the bit-equivalence contract the batch suite enforces.
    """
    records = (
        result.records
        if isinstance(result, BatchSystemResult)
        else sim_job_records(result)
    )
    return f"{stable_hash(records):08x}"
