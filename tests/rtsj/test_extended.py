"""Integration tests for the paper's javax.realtime.extended package."""

import pytest

from repro.core.treatments import TreatmentKind
from repro.rtsj.extended import FeasibilityAnalysis, RealtimeThreadExtended
from repro.rtsj.params import PeriodicParameters, PriorityParameters
from repro.rtsj.scheduler import RIPriorityScheduler
from repro.rtsj.system import RealtimeSystem
from repro.sim.trace import EventKind
from repro.sim.vm import JRATE_VM
from repro.units import ms


def build_paper_system(treatment, vm=None):
    """The Figures 3-7 system as extended RTSJ threads."""
    system = RealtimeSystem(vm=vm) if vm is not None else RealtimeSystem()
    specs = [
        ("tau1", 20, 29, 200, 70, 0),
        ("tau2", 18, 29, 250, 120, 0),
        ("tau3", 16, 29, 1500, 120, 1000),
    ]
    threads = []
    for name, prio, cost, period, deadline, start in specs:
        threads.append(
            RealtimeThreadExtended(
                PriorityParameters(prio),
                PeriodicParameters(ms(start), ms(period), ms(cost), ms(deadline)),
                system,
                name=name,
                treatment=treatment,
            )
        )
    return system, threads


class TestFeasibilityAnalysis:
    def test_wc_response_time_figure2(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        assert FeasibilityAnalysis.wcResponseTime(threads[0], threads) == ms(29)
        assert FeasibilityAnalysis.wcResponseTime(threads[1], threads) == ms(58)
        assert FeasibilityAnalysis.wcResponseTime(threads[2], threads) == ms(87)

    def test_is_feasible(self):
        _, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        assert FeasibilityAnalysis.isFeasible(threads)

    def test_equitable_allowance(self):
        _, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        assert FeasibilityAnalysis.equitableAllowance(threads) == ms(11)

    def test_system_allowance(self):
        _, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        assert FeasibilityAnalysis.systemAllowance(threads) == {
            "tau1": ms(33),
            "tau2": ms(33),
            "tau3": ms(33),
        }


class TestOverloadedMethods:
    def test_add_to_feasibility_uses_exact_analysis(self):
        # Even on a system whose VM scheduler is the defective RI one,
        # the extended thread delegates to FeasibilityAnalysis.
        system = RealtimeSystem(scheduler=RIPriorityScheduler())
        hi = RealtimeThreadExtended(
            PriorityParameters(10),
            PeriodicParameters(0, ms(10), ms(5), ms(10)),
            system,
            name="hi",
        )
        lo = RealtimeThreadExtended(
            PriorityParameters(5),
            PeriodicParameters(0, ms(20), ms(5), ms(9)),
            system,
            name="lo",
        )
        assert hi.addToFeasibility()
        assert not lo.addToFeasibility()  # exact analysis catches it

    def test_extended_threads_share_one_corrected_scheduler(self):
        system = RealtimeSystem(scheduler=RIPriorityScheduler())
        a = RealtimeThreadExtended(
            PriorityParameters(2),
            PeriodicParameters(0, ms(10), ms(1)),
            system,
            name="a",
        )
        b = RealtimeThreadExtended(
            PriorityParameters(1),
            PeriodicParameters(0, ms(10), ms(1)),
            system,
            name="b",
        )
        a.addToFeasibility()
        b.addToFeasibility()
        assert len(a._scheduler.feasibility_set) == 2
        assert a._scheduler is b._scheduler

    def test_wait_for_next_period_updates_counter_and_flag(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        t = threads[0]
        assert t.job_counter == 0 and t.job_finished
        t.computeBeforePeriodic()
        assert not t.job_finished
        t.waitForNextPeriod()  # the paper's overload: after, super, before
        assert t.job_counter == 1
        assert not t.job_finished  # a new job is in progress


class TestDetectorsEndToEnd:
    def test_detector_offsets_equal_wcrt(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        for t in threads:
            t.start()
        system.run(ms(1600))
        assert threads[0].detector_threshold == ms(29)
        assert threads[1].detector_threshold == ms(58)
        assert threads[2].detector_threshold == ms(87)

    def test_no_detector_when_treatment_disabled(self):
        system, threads = build_paper_system(TreatmentKind.NO_DETECTION)
        for t in threads:
            t.start()
        res = system.run(ms(1600))
        assert all(t.detector is None for t in threads)
        assert res.trace.of_kind(EventKind.DETECTOR_FIRE) == []

    def test_fault_free_run_detects_nothing(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        for t in threads:
            t.start()
        res = system.run(ms(3000))
        assert all(t.faults_detected == [] for t in threads)
        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []

    def test_job_counters_match_completed_jobs(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        for t in threads:
            t.start()
        res = system.run(ms(3000))
        for t in threads:
            completed = sum(1 for j in res.jobs_of(t.name) if j.finished)
            assert t.job_counter == completed

    @pytest.mark.parametrize(
        "treatment,expected_stop_ms",
        [
            (TreatmentKind.IMMEDIATE_STOP, 1029),
            (TreatmentKind.EQUITABLE_ALLOWANCE, 1040),
            (TreatmentKind.SYSTEM_ALLOWANCE, 1062),
        ],
    )
    def test_treatments_stop_at_paper_times(self, treatment, expected_stop_ms):
        system, threads = build_paper_system(treatment)
        threads[0].inject_cost_overrun(5, ms(40))
        for t in threads:
            t.start()
        res = system.run(ms(1600))
        (stopped,) = res.stopped()
        assert (stopped.name, stopped.index) == ("tau1", 5)
        assert stopped.finished_at == ms(expected_stop_ms)
        assert res.missed() == []

    def test_detect_only_leaves_tau3_missing(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY)
        threads[0].inject_cost_overrun(5, ms(40))
        for t in threads:
            t.start()
        res = system.run(ms(1600))
        assert [e.task for e in res.trace.deadline_misses()] == ["tau3"]
        assert 5 in threads[0].faults_detected

    def test_jrate_vm_detector_delay(self):
        system, threads = build_paper_system(TreatmentKind.DETECT_ONLY, vm=JRATE_VM)
        for t in threads:
            t.start()
        res = system.run(ms(500))
        tau1_fires = [
            e.time
            for e in res.trace.of_kind(EventKind.DETECTOR_FIRE)
            if e.task == "tau1"
        ]
        assert tau1_fires[0] == ms(30)  # 29 rounded up, 1 ms delay
