"""Population exhibits: the paper's claims at Monte-Carlo scale.

The paper argues from one hand-built system; these exhibits evaluate
the same claims over ``derive_rng``-seeded populations via the sweep
layer (:mod:`repro.exec.sweep`):

* **population-landscape** — the acceptance-ratio landscape over a
  utilization × task-count grid: per cell, the fraction of systems the
  response-time analysis accepts vs the fraction that run miss-free in
  simulation.  The one-way oracle claim (analysis-feasible ⇒ zero
  observed misses) is checked on every system.
* **population-fault-treatments** — a fault-rate sweep comparing the
  hard-stop and equitable-allowance treatments on *paired* workloads
  (same systems, same injected overruns, only the treatment differs):
  detections appear once faults do, the later-firing equitable
  detectors catch no more jobs than immediate stops, and the
  allowance treatment confines every fault to the faulty task (§4.2's
  guarantee: the allowance-adjusted system stays feasible, so zero
  collateral).  The hard stop carries no such guarantee — its §4.1
  detector fires only at the nominal WCRT, so the overrun executed
  before detection is interference the lower-priority tasks' analysis
  never budgeted, and paired collateral can exceed the allowance
  treatment's.

The module also names the CLI sweeps (``python -m repro.experiments
sweep <name>``): bigger grids meant for ``--jobs N`` runs, including
the CI smoke sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exec.executor import LocalExecutor
from repro.exec.spec import ExperimentSpec
from repro.exec.sweep import PointRecord, SweepSpec, run_sweep
from repro.experiments.paper import Claim
from repro.viz.tables import format_table

__all__ = [
    "SWEEPS",
    "sweep_by_name",
    "PopulationLandscapeResult",
    "population_landscape_spec",
    "build_population_landscape",
    "PopulationFaultsResult",
    "population_faults_spec",
    "build_population_faults",
]


def _landscape_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="landscape",
        axes={
            "utilization": (0.55, 0.65, 0.75, 0.85, 0.95),
            "n": (3, 5, 8),
        },
        replicates=40,
        base_seed=210,
        deadline_factor=0.85,
        horizon_periods=4,
        chunk_size=60,
    )


def _landscape_smoke_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="landscape-smoke",
        axes={"utilization": (0.6, 0.8, 0.95), "n": (3, 5)},
        replicates=84,
        base_seed=211,
        deadline_factor=0.85,
        horizon_periods=4,
        chunk_size=42,
    )


def _fault_treatments_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="fault-treatments",
        axes={
            "fault_rate": (0.0, 0.2, 0.4),
            "treatment": ("immediate-stop", "equitable-allowance"),
        },
        replicates=10,
        base_seed=212,
        n=3,
        utilization=0.65,
        feasible_only=True,
        horizon_periods=3,
        fault_scale=1.0,
        chunk_size=12,
    )


def _fault_smoke_sweep() -> SweepSpec:
    """Untreated faults on analytically feasible systems — the seeded
    anomaly recipe: ``analysis_feasible`` ignores faults, so every
    injected overrun that causes a miss fires the flight recorder's
    ``miss-despite-feasible`` trigger (replayable bundles in CI)."""
    return SweepSpec.make(
        name="fault-smoke",
        axes={"utilization": (0.7, 0.95)},
        replicates=6,
        base_seed=5,
        n=3,
        fault_rate=0.3,
        feasible_only=True,
        horizon_periods=3,
        chunk_size=4,
    )


#: Named sweeps the CLI ``sweep`` subcommand can run.
SWEEPS: Mapping[str, object] = {
    "landscape": _landscape_sweep,
    "landscape-smoke": _landscape_smoke_sweep,
    "fault-treatments": _fault_treatments_sweep,
    "fault-smoke": _fault_smoke_sweep,
}


def sweep_by_name(name: str) -> SweepSpec:
    """Resolve a named sweep (raises with the known names otherwise)."""
    try:
        factory = SWEEPS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep {name!r}; known: {', '.join(sorted(SWEEPS))}"
        ) from None
    return factory()  # type: ignore[operator]


def _run_points(sweep: SweepSpec) -> tuple[PointRecord, ...]:
    """Run *sweep* serially in-process (exhibit builders already live
    inside an executor — possibly a pool worker — so no nesting)."""
    return tuple(run_sweep(sweep, executor=LocalExecutor()).points)


def _cells(points: tuple[PointRecord, ...]) -> dict:
    cells: dict = {}
    for p in points:
        cells.setdefault(p.cell, []).append(p)
    return cells


# -- acceptance-ratio landscape ---------------------------------------------
@dataclass(frozen=True)
class PopulationLandscapeResult:
    """Analysis vs simulation acceptance over a U × n grid."""

    points: tuple[PointRecord, ...]

    def render(self) -> str:
        rows = []
        for cell, group in _cells(self.points).items():
            values = dict(cell)
            total = len(group)
            feas = sum(1 for p in group if p.analysis_feasible)
            clean = sum(1 for p in group if p.misses == 0)
            rows.append(
                (
                    values["utilization"],
                    values["n"],
                    total,
                    f"{feas / total:.2f}",
                    f"{clean / total:.2f}",
                    sum(p.misses for p in group),
                )
            )
        return format_table(
            ["utilization", "n", "systems", "analysis accept", "sim accept", "misses"],
            rows,
            title="Population - acceptance-ratio landscape (analysis vs simulation)",
        )

    def claims(self) -> list[Claim]:
        cells = _cells(self.points)
        feasible_missed = sum(
            1 for p in self.points if p.analysis_feasible and p.misses > 0
        )
        sim_dominates = all(
            sum(1 for p in g if p.misses == 0)
            >= sum(1 for p in g if p.analysis_feasible)
            for g in cells.values()
        )
        by_n: dict = {}
        for cell, g in cells.items():
            values = dict(cell)
            by_n.setdefault(values["n"], []).append(
                (values["utilization"], sum(1 for p in g if p.analysis_feasible))
            )
        monotone = all(
            [f for _, f in sorted(pairs)]
            == sorted([f for _, f in sorted(pairs)], reverse=True)
            for pairs in by_n.values()
        )
        saturated = any(
            sum(1 for p in g if p.analysis_feasible) < len(g) for g in cells.values()
        )
        return [
            Claim(
                "analysis-feasible systems never miss a deadline in simulation",
                feasible_missed == 0,
            ),
            Claim(
                "simulated acceptance dominates analytic acceptance in every cell",
                sim_dominates,
            ),
            Claim(
                "analytic acceptance is non-increasing in utilization for each n",
                monotone,
            ),
            Claim(
                "the grid reaches the infeasible region (acceptance < 1 somewhere)",
                saturated,
            ),
        ]


def population_landscape_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="population-landscape",
        builder="population.landscape",
        seed=21,
        params={
            "utilizations": (0.65, 0.8, 0.95),
            "ns": (3, 5),
            "replicates": 20,
            "deadline_factor": 0.85,
        },
    )


def build_population_landscape(spec: ExperimentSpec) -> PopulationLandscapeResult:
    sweep = SweepSpec.make(
        name=spec.name,
        axes={
            "utilization": tuple(spec.param("utilizations")),
            "n": tuple(spec.param("ns")),
        },
        replicates=int(spec.param("replicates", 20)),
        base_seed=spec.seed,
        deadline_factor=float(spec.param("deadline_factor", 0.85)),
        horizon_periods=4,
        chunk_size=40,
    )
    return PopulationLandscapeResult(points=_run_points(sweep))


# -- fault-rate treatment sweep ---------------------------------------------
@dataclass(frozen=True)
class PopulationFaultsResult:
    """Hard-stop vs equitable-allowance over a fault-rate sweep."""

    points: tuple[PointRecord, ...]

    def render(self) -> str:
        rows = []
        for cell, group in _cells(self.points).items():
            values = dict(cell)
            rows.append(
                (
                    values["fault_rate"],
                    values["treatment"],
                    len(group),
                    sum(p.detections for p in group),
                    sum(p.stopped for p in group),
                    sum(p.misses for p in group),
                    sum(p.collateral for p in group),
                )
            )
        return format_table(
            [
                "fault rate",
                "treatment",
                "systems",
                "detections",
                "stops",
                "misses",
                "collateral",
            ],
            rows,
            title="Population - fault-rate sweep, hard stop vs equitable allowance",
        )

    def claims(self) -> list[Claim]:
        cells = _cells(self.points)
        totals = {
            (dict(c)["fault_rate"], dict(c)["treatment"]): {
                "detections": sum(p.detections for p in g),
                "stops": sum(p.stopped for p in g),
                "misses": sum(p.misses for p in g),
                "collateral": sum(p.collateral for p in g),
            }
            for c, g in cells.items()
        }
        rates = sorted({rate for rate, _ in totals})
        treatments = sorted({t for _, t in totals})
        quiet_at_zero = all(
            totals[(0.0, t)]["detections"] == 0
            and totals[(0.0, t)]["stops"] == 0
            and totals[(0.0, t)]["misses"] == 0
            for t in treatments
            if (0.0, t) in totals
        )
        detected = all(
            totals[(rates[-1], t)]["detections"] > 0 for t in treatments
        )
        have_pair = "equitable-allowance" in treatments and "immediate-stop" in treatments
        paired = have_pair and all(
            totals[(r, "equitable-allowance")]["detections"]
            <= totals[(r, "immediate-stop")]["detections"]
            for r in rates
        )
        confined = all(
            t["collateral"] == 0
            for (_, kind), t in totals.items()
            if kind == "equitable-allowance"
        )
        no_worse = have_pair and all(
            totals[(r, "equitable-allowance")]["collateral"]
            <= totals[(r, "immediate-stop")]["collateral"]
            for r in rates
        )
        return [
            Claim("no detections, stops or misses without faults", quiet_at_zero),
            Claim("faults are detected at the top fault rate", detected),
            Claim(
                "equitable allowance (later detectors) stops no more jobs "
                "than the immediate hard stop on paired workloads",
                paired,
            ),
            Claim(
                "the equitable allowance confines faults to the faulty "
                "task (zero collateral failures, the section 4.2 guarantee)",
                confined,
            ),
            Claim(
                "paired collateral under the allowance never exceeds the "
                "hard stop's",
                no_worse,
            ),
        ]


def population_faults_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="population-fault-treatments",
        builder="population.faults",
        seed=22,
        params={
            "rates": (0.0, 0.25, 0.5),
            "treatments": ("immediate-stop", "equitable-allowance"),
            "replicates": 5,
            "n": 3,
            "utilization": 0.65,
        },
    )


def build_population_faults(spec: ExperimentSpec) -> PopulationFaultsResult:
    sweep = SweepSpec.make(
        name=spec.name,
        axes={
            "fault_rate": tuple(spec.param("rates")),
            "treatment": tuple(spec.param("treatments")),
        },
        replicates=int(spec.param("replicates", 5)),
        base_seed=spec.seed,
        n=int(spec.param("n", 3)),
        utilization=float(spec.param("utilization", 0.65)),
        feasible_only=True,
        horizon_periods=3,
        fault_scale=1.0,
        chunk_size=12,
    )
    return PopulationFaultsResult(points=_run_points(sweep))
