"""``javax.realtime`` memory areas (minimal, faithful subset).

The RTSJ's second pillar beside scheduling — the paper's introduction
lists "memory management" among the constraints the specification
imposes on real-time VMs — is allocation in garbage-collection-free
regions:

* :class:`ImmortalMemory` — never collected, shared, unbounded
  lifetime; allocation is permanent;
* :class:`ScopedMemory` (``LTMemory``: linear-time allocation) — a
  sized region entered by threads; objects vanish when the last thread
  leaves.  Scopes nest and obey the RTSJ *single parent rule*: a scope
  can only be entered from its parent scope (or from no scope, making
  the enterer's current area its parent).

This model tracks sizes and the scope stack so real-time logic can be
checked for allocation discipline (no allocation beyond a region's
size, no illegal nesting, no dangling references from outer to inner
scopes — the assignment rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MemoryAccessError",
    "MemoryArea",
    "ImmortalMemory",
    "ScopedMemory",
    "LTMemory",
    "AllocationContext",
]


class MemoryAccessError(RuntimeError):
    """Violation of an RTSJ memory rule (size, nesting or assignment)."""


@dataclass(frozen=True)
class _Allocation:
    """One allocated object: its area and size (bytes)."""

    area: "MemoryArea"
    size: int
    serial: int


class MemoryArea:
    """Base class: a region objects can be allocated in."""

    def __init__(self, name: str):
        self.name = name
        self._serial = 0
        self._allocated: dict[int, _Allocation] = {}

    # -- RTSJ-style introspection ------------------------------------------------
    def memoryConsumed(self) -> int:  # noqa: N802 - RTSJ naming
        return sum(a.size for a in self._allocated.values())

    def memoryRemaining(self) -> int | None:  # noqa: N802
        """Remaining bytes; None = unbounded (immortal)."""
        return None

    # -- allocation ----------------------------------------------------------------
    def _check_capacity(self, size: int) -> None:
        remaining = self.memoryRemaining()
        if remaining is not None and size > remaining:
            raise MemoryAccessError(
                f"{self.name}: allocation of {size} exceeds remaining {remaining}"
            )

    def allocate(self, size: int) -> _Allocation:
        """Allocate *size* bytes; returns an allocation token."""
        if size <= 0:
            raise ValueError("size must be > 0")
        self._check_capacity(size)
        self._serial += 1
        alloc = _Allocation(area=self, size=size, serial=self._serial)
        self._allocated[alloc.serial] = alloc
        return alloc

    def _clear(self) -> None:
        self._allocated.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class ImmortalMemory(MemoryArea):
    """The shared, never-collected region (per-context singleton)."""

    def __init__(self) -> None:
        super().__init__("immortal")


class ScopedMemory(MemoryArea):
    """A sized scope; cleared when its last enterer leaves."""

    def __init__(self, size: int, name: str = "scope"):
        if size <= 0:
            raise ValueError("scope size must be > 0")
        super().__init__(name)
        self.size = size
        self.parent: MemoryArea | None = None
        self._enter_count = 0

    def memoryRemaining(self) -> int | None:  # noqa: N802
        return self.size - self.memoryConsumed()

    @property
    def reference_count(self) -> int:
        """Number of threads currently inside the scope."""
        return self._enter_count


class LTMemory(ScopedMemory):
    """Linear-allocation-time scoped memory (the common concrete type)."""


@dataclass
class AllocationContext:
    """One thread's view of the memory-area machinery.

    Mirrors ``MemoryArea.enter(logic)``: the context keeps the scope
    stack, enforces the single parent rule, and validates reference
    assignments between areas.
    """

    immortal: ImmortalMemory = field(default_factory=ImmortalMemory)
    _stack: list[MemoryArea] = field(default_factory=list)

    def current(self) -> MemoryArea:
        """The current allocation area (immortal at the outermost level)."""
        return self._stack[-1] if self._stack else self.immortal

    def enter(self, scope: ScopedMemory) -> "_Entered":
        """Enter *scope* (context manager).

        Single parent rule: a scope's parent is fixed by its first
        enter; entering it later from a *different* area is illegal.
        """
        if scope in self._stack:
            raise MemoryAccessError(f"{scope.name}: scope re-entered (cycle)")
        current = self.current()
        if scope.parent is None:
            scope.parent = current
        elif scope.parent is not current:
            raise MemoryAccessError(
                f"{scope.name}: single parent rule - parent is "
                f"{scope.parent.name}, attempted enter from {current.name}"
            )
        return _Entered(self, scope)

    def allocate(self, size: int) -> _Allocation:
        """Allocate in the current area."""
        return self.current().allocate(size)

    def check_assignment(self, holder: _Allocation, value: _Allocation) -> None:
        """RTSJ assignment rule: an object may not hold a reference to
        an object in a more deeply nested (shorter-lived) scope."""
        if self._depth(holder.area) < self._depth(value.area):
            raise MemoryAccessError(
                f"illegal assignment: {holder.area.name} object cannot "
                f"reference {value.area.name} object"
            )

    def _depth(self, area: MemoryArea) -> int:
        """Nesting depth: immortal is 0, each scope level adds 1."""
        if isinstance(area, ImmortalMemory):
            return 0
        depth = 0
        cursor: MemoryArea | None = area
        while isinstance(cursor, ScopedMemory):
            depth += 1
            cursor = cursor.parent
        return depth


class _Entered:
    """Context manager returned by :meth:`AllocationContext.enter`."""

    def __init__(self, ctx: AllocationContext, scope: ScopedMemory):
        self._ctx = ctx
        self._scope = scope

    def __enter__(self) -> ScopedMemory:
        self._scope._enter_count += 1
        self._ctx._stack.append(self._scope)
        return self._scope

    def __exit__(self, *exc_info) -> None:
        popped = self._ctx._stack.pop()
        assert popped is self._scope
        self._scope._enter_count -= 1
        if self._scope._enter_count == 0:
            # Last thread left: the scope's objects are reclaimed and
            # its parent link resets (RTSJ allows re-parenting then).
            self._scope._clear()
            self._scope.parent = None
