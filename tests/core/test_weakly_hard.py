"""Property tests for the (m, K) miss-pattern semantics.

The sliding-window checker is the trust anchor of the weakly-hard
layer — the differential oracle, the SKIP_JOB/DEGRADE treatments and
the schedulability test all lean on it — so it is pinned here against
a brute-force O(n·K) reference, its boundary cases (m = 0 hard,
m = K unconstrained), concatenation/prefix monotonicity, and the
streaming == batch equivalence.  The deeply-red skip-pattern
arithmetic (``skips`` / ``max_executed`` / ``executed_release``) is
property-tested against its own enumeration.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.weakly_hard import (
    MKConstraint,
    SlidingWindowChecker,
    first_violation,
    satisfies,
)

# -- strategies ---------------------------------------------------------------
constraints = st.integers(1, 8).flatmap(
    lambda k: st.integers(0, k).map(lambda m: MKConstraint(m, k))
)
patterns = st.lists(st.booleans(), max_size=40)


def brute_force(pattern: list[bool], mk: MKConstraint) -> bool:
    """O(n·K) reference: every window of K consecutive samples (the
    whole pattern when it is shorter) holds at most m misses."""
    if len(pattern) < mk.k:
        return sum(pattern) <= mk.m
    return all(
        sum(pattern[i : i + mk.k]) <= mk.m
        for i in range(len(pattern) - mk.k + 1)
    )


class TestMKConstraint:
    def test_validation(self):
        with pytest.raises(ValueError):
            MKConstraint(0, 0)
        with pytest.raises(ValueError):
            MKConstraint(-1, 3)
        with pytest.raises(ValueError):
            MKConstraint(4, 3)

    def test_boundary_flags(self):
        assert MKConstraint(0, 5).hard
        assert MKConstraint(5, 5).unconstrained
        mid = MKConstraint(2, 5)
        assert not mid.hard and not mid.unconstrained

    @given(pattern=patterns, k=st.integers(1, 8))
    def test_hard_boundary_means_no_miss_ever(self, pattern, k):
        # m = 0 is exactly the classic hard-deadline requirement.
        assert satisfies(pattern, MKConstraint(0, k)) == (not any(pattern))

    @given(pattern=patterns, k=st.integers(1, 8))
    def test_unconstrained_boundary_accepts_everything(self, pattern, k):
        assert satisfies(pattern, MKConstraint(k, k))

    @given(pattern=patterns, mk=constraints)
    def test_agrees_with_brute_force(self, pattern, mk):
        assert satisfies(pattern, mk) == brute_force(pattern, mk)
        assert mk.satisfies(pattern) == brute_force(pattern, mk)

    @given(pattern=patterns, mk=constraints)
    def test_first_violation_is_the_earliest(self, pattern, mk):
        v = first_violation(pattern, mk)
        if v is None:
            assert brute_force(pattern, mk)
        else:
            assert satisfies(pattern[:v], mk)
            assert not satisfies(pattern[: v + 1], mk)

    @given(a=patterns, b=patterns, mk=constraints)
    def test_concatenation_monotone(self, a, b, mk):
        # Every window of a part is a window of the whole, so a
        # satisfying concatenation certifies both parts (the converse
        # fails across the seam, e.g. [miss] + [miss] under (1, 2)).
        if satisfies(a + b, mk):
            assert satisfies(a, mk)
            assert satisfies(b, mk)

    @given(pattern=patterns, mk=constraints, cut=st.integers(0, 40))
    def test_prefixes_of_satisfying_patterns_satisfy(self, pattern, mk, cut):
        if satisfies(pattern, mk):
            assert satisfies(pattern[:cut], mk)


class TestSlidingWindowChecker:
    @given(pattern=patterns, mk=constraints)
    def test_streaming_equals_batch(self, pattern, mk):
        checker = SlidingWindowChecker(mk)
        ok = True
        for i, missed in enumerate(pattern):
            ok = checker.push(missed)
            # After every push the checker's verdict equals the batch
            # verdict on everything pushed so far.
            assert ok == satisfies(pattern[: i + 1], mk)
            assert checker.violated == (not ok)
        assert checker.violated == (not satisfies(pattern, mk))

    @given(pattern=patterns, mk=constraints)
    def test_window_miss_count(self, pattern, mk):
        checker = SlidingWindowChecker(mk)
        for i, missed in enumerate(pattern):
            checker.push(missed)
            window = pattern[max(0, i + 1 - mk.k) : i + 1]
            assert checker.misses_in_window == sum(window)

    @given(mk=constraints)
    def test_violation_is_sticky(self, mk):
        checker = SlidingWindowChecker(mk)
        for _ in range(mk.m + 1):
            checker.push(True)
        if mk.unconstrained:
            assert not checker.violated
            return
        assert checker.violated
        for _ in range(3 * mk.k):  # hits never clear a violation
            assert not checker.push(False)
        assert checker.violated


class TestDeeplyRedPattern:
    @given(mk=constraints, start=st.integers(0, 20))
    def test_skip_pattern_satisfies_its_own_constraint(self, mk, start):
        # Any K consecutive releases contain exactly m skips.
        window = [mk.skips(j) for j in range(start, start + mk.k)]
        assert sum(window) == mk.m
        pattern = [mk.skips(j) for j in range(start, start + 4 * mk.k)]
        assert satisfies(pattern, mk)

    @given(mk=constraints, n=st.integers(0, 30))
    def test_max_executed_bounds_every_alignment(self, mk, n):
        counts = [
            sum(not mk.skips(j) for j in range(s, s + n)) for s in range(mk.k)
        ]
        assert mk.max_executed(n) == max(counts)
        # And the bound is attained at the window-aligned start.
        assert mk.max_executed(n) == sum(not mk.skips(j) for j in range(n))

    @given(mk=constraints, q=st.integers(0, 30))
    def test_executed_release_inverts_the_skip_pattern(self, mk, q):
        if mk.unconstrained:
            with pytest.raises(ValueError):
                mk.executed_release(q)
            return
        g = mk.executed_release(q)
        assert not mk.skips(g)
        # g enumerates exactly the executed indices, in order.
        assert mk.max_executed(g + 1) == q + 1
        assert mk.executed_release(q + 1) > g

    def test_argument_validation(self):
        mk = MKConstraint(1, 3)
        with pytest.raises(ValueError):
            mk.skips(-1)
        with pytest.raises(ValueError):
            mk.max_executed(-1)
        with pytest.raises(ValueError):
            mk.executed_release(-1)
