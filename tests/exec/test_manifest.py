"""Unit tests for run manifests and their fingerprints."""

import json

import pytest

from repro.exec.executor import ExecutionResult, LocalExecutor
from repro.exec.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    manifest_fingerprint,
    strip_volatile,
    write_manifest,
)
from repro.exec.spec import ExperimentSpec


class FakeExhibit:
    def __init__(self, text="rendering", holds=True):
        self._text = text
        self._holds = holds

    def render(self):
        return self._text

    def claims(self):
        from repro.experiments.paper import Claim

        return [Claim("the shape holds", self._holds)]


def result(name="fig", value=None, wall_s=0.5, source="computed"):
    spec = ExperimentSpec.make(name=name, builder="b")
    return ExecutionResult(spec, value if value is not None else FakeExhibit(), wall_s, source)


class TestBuildManifest:
    def test_document_shape(self):
        manifest, artifacts = build_manifest([result()], executor=LocalExecutor())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["executor"]["kind"] == "local"
        assert manifest["stats"]["specs"] == 1
        assert manifest["stats"]["claims"] == 1
        assert manifest["stats"]["claims_holding"] == 1
        (exhibit,) = manifest["exhibits"]
        assert exhibit["name"] == "fig"
        assert exhibit["claims_ok"] is True
        assert exhibit["artifact"] == "fig.txt"
        assert artifacts["fig.txt"] == "rendering"

    def test_failing_claim_recorded(self):
        manifest, _ = build_manifest([result(value=FakeExhibit(holds=False))])
        assert manifest["exhibits"][0]["claims_ok"] is False
        assert manifest["stats"]["claims_holding"] == 0

    def test_duplicate_artifact_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate artifact"):
            build_manifest([result(name="x"), result(name="x")])

    def test_plain_value_falls_back_to_str(self):
        manifest, artifacts = build_manifest([result(value=123)])
        assert artifacts["fig.txt"] == "123"
        assert manifest["exhibits"][0]["claims"] == []


class TestFingerprint:
    def test_volatile_fields_do_not_change_it(self):
        a, _ = build_manifest([result(wall_s=0.1, source="computed")], executor=LocalExecutor())
        b, _ = build_manifest([result(wall_s=9.9, source="cache")], executor=None)
        assert manifest_fingerprint(a) == manifest_fingerprint(b)

    def test_result_changes_change_it(self):
        a, _ = build_manifest([result(value=FakeExhibit("one"))])
        b, _ = build_manifest([result(value=FakeExhibit("two"))])
        assert manifest_fingerprint(a) != manifest_fingerprint(b)

    def test_strip_volatile_is_non_destructive(self):
        manifest, _ = build_manifest([result()], executor=LocalExecutor())
        stripped = strip_volatile(manifest)
        assert "git_rev" not in stripped
        assert "wall_s" not in stripped["exhibits"][0]
        # the original is untouched
        assert "git_rev" in manifest
        assert "wall_s" in manifest["exhibits"][0]


class TestWriteManifest:
    def test_writes_manifest_and_artifacts(self, tmp_path):
        manifest, artifacts = build_manifest([result()], executor=LocalExecutor())
        path = write_manifest(tmp_path / "out", manifest, artifacts)
        assert path.name == "manifest.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert (tmp_path / "out" / "fig.txt").read_text() == "rendering\n"


class TestGitRevision:
    def test_returns_string(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev
