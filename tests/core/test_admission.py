"""Unit tests for dynamic admission control (§7 future work)."""

import pytest

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.detection import JRATE_10MS
from repro.core.task import Task
from repro.core.treatments import TreatmentKind
from repro.units import ms


def tau1():
    return Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20)


def tau2():
    return Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18)


def tau3():
    return Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16)


class TestAdd:
    def test_incremental_admission_of_paper_system(self):
        ctl = AdmissionController()
        for task in (tau1(), tau2(), tau3()):
            assert ctl.request_add(task).accepted
        assert ctl.wcrt("tau3") == ms(87)
        assert len(ctl.taskset) == 3

    def test_detector_installed_on_add(self):
        ctl = AdmissionController()
        result = ctl.request_add(tau1())
        (change,) = result.detector_changes
        assert change.kind == "installed"
        assert change.new_offset == ms(29)

    def test_detectors_move_when_interference_grows(self):
        ctl = AdmissionController()
        ctl.request_add(tau2())
        assert ctl.detector_offsets()["tau2"] == ms(29)
        result = ctl.request_add(tau1())
        moved = {c.task_name: c for c in result.detector_changes}
        assert moved["tau2"].kind == "moved"
        assert moved["tau2"].new_offset == ms(58)
        assert moved["tau1"].kind == "installed"

    def test_reject_overload(self):
        ctl = AdmissionController()
        ctl.request_add(Task("a", cost=8, period=10, priority=2))
        result = ctl.request_add(Task("b", cost=8, period=10, priority=1))
        assert result.decision is AdmissionDecision.REJECTED_LOAD
        assert len(ctl.taskset) == 1  # transactional

    def test_reject_deadline(self):
        ctl = AdmissionController()
        ctl.request_add(Task("a", cost=5, period=10, priority=2))
        result = ctl.request_add(
            Task("b", cost=4, period=20, deadline=8, priority=1)
        )
        assert result.decision is AdmissionDecision.REJECTED_DEADLINE
        assert "b" not in ctl.taskset

    def test_reject_duplicate(self):
        ctl = AdmissionController()
        ctl.request_add(tau1())
        assert (
            ctl.request_add(tau1()).decision is AdmissionDecision.REJECTED_DUPLICATE
        )

    def test_rejection_leaves_detectors_untouched(self):
        ctl = AdmissionController()
        ctl.request_add(tau1())
        before = ctl.detector_offsets()
        ctl.request_add(Task("huge", cost=ms(199), period=ms(200), priority=25))
        assert ctl.detector_offsets() == before


class TestRemove:
    def test_remove_restores_slack(self):
        ctl = AdmissionController()
        for task in (tau1(), tau2(), tau3()):
            ctl.request_add(task)
        result = ctl.request_remove("tau1")
        assert result.accepted
        moved = {c.task_name: c for c in result.detector_changes}
        assert moved["tau1"].kind == "removed"
        # tau2 no longer suffers tau1's interference.
        assert moved["tau2"].new_offset == ms(29)
        assert ctl.wcrt("tau2") == ms(29)

    def test_remove_unknown(self):
        ctl = AdmissionController()
        assert (
            ctl.request_remove("ghost").decision is AdmissionDecision.REJECTED_UNKNOWN
        )

    def test_remove_last_task(self):
        ctl = AdmissionController()
        ctl.request_add(tau1())
        result = ctl.request_remove("tau1")
        assert result.accepted
        assert ctl.detector_offsets() == {}
        assert ctl.wcrt("tau1") is None


class TestConfigurations:
    def test_equitable_treatment_offsets(self):
        ctl = AdmissionController(treatment=TreatmentKind.EQUITABLE_ALLOWANCE)
        for task in (tau1(), tau2(), tau3()):
            ctl.request_add(task)
        assert ctl.detector_offsets() == {
            "tau1": ms(40),
            "tau2": ms(80),
            "tau3": ms(120),
        }

    def test_rounding_applied(self):
        ctl = AdmissionController(rounding=JRATE_10MS)
        for task in (tau1(), tau2(), tau3()):
            ctl.request_add(task)
        assert ctl.detector_offsets() == {
            "tau1": ms(30),
            "tau2": ms(60),
            "tau3": ms(90),
        }

    def test_history_records_decisions(self):
        ctl = AdmissionController()
        ctl.request_add(tau1())
        ctl.request_add(tau1())
        ctl.request_remove("tau1")
        assert [h[2] for h in ctl.history] == [
            AdmissionDecision.ACCEPTED,
            AdmissionDecision.REJECTED_DUPLICATE,
            AdmissionDecision.ACCEPTED,
        ]
