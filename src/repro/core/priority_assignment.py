"""Priority assignment policies.

The paper assumes priorities are given (RTSJ `PriorityParameters`), but
its references define the standard assignment policies for fixed
priorities, which an admission controller needs when tasks arrive
without priorities:

* **rate monotonic** (Liu & Layland [11]): shorter period = higher
  priority; optimal for implicit deadlines;
* **deadline monotonic** (Audsley et al. [1]): shorter relative deadline
  = higher priority; optimal for constrained deadlines;
* **Audsley's optimal priority assignment (OPA)**: optimal whenever the
  schedulability test is OPA-compatible (response-time analysis is),
  covering arbitrary deadlines.

All functions return a *new* :class:`TaskSet` whose tasks carry fresh
priorities; input priorities are ignored.  Ties are broken by the
original order, keeping results deterministic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.feasibility import wc_response_time
from repro.core.task import Task, TaskSet

__all__ = [
    "rate_monotonic",
    "deadline_monotonic",
    "audsley_opa",
    "PriorityAssignmentError",
]


class PriorityAssignmentError(ValueError):
    """Raised by :func:`audsley_opa` when no feasible assignment exists."""


def _assign(tasks: list[Task], key: Callable[[Task], int]) -> TaskSet:
    """Assign priorities ``n..1`` by increasing *key* (stable)."""
    ordered = sorted(tasks, key=lambda t: (key(t),))
    n = len(ordered)
    return TaskSet(
        replace(t, priority=n - rank) for rank, t in enumerate(ordered)
    )


def rate_monotonic(taskset: TaskSet | list[Task]) -> TaskSet:
    """Rate-monotonic assignment: smallest period gets highest priority."""
    return _assign(list(taskset), key=lambda t: t.period)


def deadline_monotonic(taskset: TaskSet | list[Task]) -> TaskSet:
    """Deadline-monotonic assignment: smallest relative deadline gets
    highest priority (optimal for ``D <= T`` [1])."""
    return _assign(list(taskset), key=lambda t: t.deadline)


def audsley_opa(taskset: TaskSet | list[Task]) -> TaskSet:
    """Audsley's optimal priority assignment.

    Greedily fills priority levels from the lowest up: at each level,
    find *some* unassigned task that is schedulable there assuming all
    other unassigned tasks have higher priority.  If a level cannot be
    filled, no fixed-priority assignment is feasible and
    :class:`PriorityAssignmentError` is raised.

    Uses the exact arbitrary-deadline WCRT as the schedulability test,
    so the result is optimal for the paper's task model.
    """
    remaining = list(taskset)
    n = len(remaining)
    assigned: list[Task] = []
    for level in range(1, n + 1):  # 1 = lowest priority
        placed = None
        for candidate in remaining:
            trial = _trial_set(candidate, remaining, level)
            wcrt = wc_response_time(trial[candidate.name], trial)
            if wcrt is not None and wcrt <= candidate.deadline:
                placed = candidate
                break
        if placed is None:
            raise PriorityAssignmentError(
                f"no task schedulable at priority level {level}"
            )
        assigned.append(replace(placed, priority=level))
        remaining.remove(placed)
    return TaskSet(assigned)


def _trial_set(candidate: Task, remaining: list[Task], level: int) -> TaskSet:
    """Build the trial set: *candidate* at *level*, all other remaining
    tasks at a strictly higher priority."""
    trial = [replace(candidate, priority=level)]
    trial.extend(
        replace(t, priority=level + 1) for t in remaining if t.name != candidate.name
    )
    return TaskSet(trial)
