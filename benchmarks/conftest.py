"""Shared benchmark fixtures.

The local ``benchmark`` fixture replaces pytest-benchmark's: it runs
the measured callable once, records host wall time (plus events/sec
when the result carries a simulation trace, and systems/sec when it
carries a population-sweep ``systems`` or fault-sweep
``fault_systems`` count), and the session hook
writes every record to ``BENCH_results.json`` at the repository root —
the machine-readable artifact CI uploads, so throughput regressions
show up as a diff against the committed baseline.

CI gates on that diff: ``benchmarks/check_regression.py`` compares the
fresh results against the committed baseline and fails when any
``events_per_s``, ``systems_per_s`` or ``fault_systems_per_s`` entry
drops more than 20%
(wall-time-only entries are informational — too noisy on shared
runners to gate on).  The allowed
drop is tunable via ``--threshold`` or the ``BENCH_REGRESSION_THRESHOLD``
environment variable (a fraction: ``0.2`` fails below 80% of baseline).
Entries new in this run pass without a baseline; to refresh the
baseline after an intentional change, commit the regenerated
``BENCH_results.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.workloads.scenarios import paper_table2

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_results.json"

_records: dict[str, dict] = {}


@pytest.fixture(scope="session")
def table2():
    return paper_table2()


class _Benchmark:
    """Minimal stand-in for pytest-benchmark's fixture: call the
    function once, keep its timing, hand the value back."""

    def __init__(self, node_id: str):
        self.node_id = node_id

    def __call__(self, fn, *args, **kwargs):
        t0 = time.perf_counter()  # noqa: RT002 - host-side benchmark timing, not simulated time
        value = fn(*args, **kwargs)
        wall_s = time.perf_counter() - t0  # noqa: RT002 - host-side benchmark timing, not simulated time
        record: dict = {"wall_s": round(wall_s, 6)}
        trace = getattr(value, "trace", None)
        if trace is None and isinstance(value, tuple) and value:
            trace = getattr(value[0], "trace", None)
        if trace is not None:
            events = len(trace)
            record["events"] = events
            record["events_per_s"] = round(events / wall_s) if wall_s > 0 else None
        for attr in ("systems", "fault_systems"):
            count = getattr(value, attr, None)
            if count is None and isinstance(value, tuple) and value:
                count = getattr(value[0], attr, None)
            if count:
                record[attr] = count
                record[f"{attr}_per_s"] = (
                    round(count / wall_s) if wall_s > 0 else None
                )
        _records[self.node_id] = record
        return value


@pytest.fixture
def benchmark(request):
    return _Benchmark(request.node.nodeid)


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    existing: dict = {}
    if RESULTS_PATH.exists():
        try:
            existing = json.loads(RESULTS_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    benches = existing.get("benchmarks", {})
    benches.update(_records)
    payload = {
        "schema": 1,
        "benchmarks": {k: benches[k] for k in sorted(benches)},
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
