"""End-to-end integration stories across subsystems.

Each test drives a realistic scenario through several layers at once —
the kind of composition a downstream user would write — so regressions
in the seams (analysis <-> plan <-> simulator <-> metrics <-> viz) are
caught even when each layer's unit tests pass.
"""

from repro import (
    CostOverrun,
    FaultInjector,
    Task,
    TaskSet,
    TreatmentKind,
    analyze,
    ms,
)
from repro.core.admission import AdmissionController
from repro.core.treatments import plan_treatment
from repro.core.underrun import reclaim_allowance
from repro.experiments.metrics import compute_metrics
from repro.experiments.runner import run_scenario
from repro.sim.simulation import simulate
from repro.sim.vm import jrate_vm
from repro.viz.svg import render_svg
from repro.viz.timeline import TimelineOptions, render_timeline
from repro.workloads.parser import format_scenario, parse_scenario
from repro.workloads.scenarios import (
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
)


class TestPaperStoryEndToEnd:
    """The full §6 narrative in one flow."""

    def test_admission_then_fault_then_treatment(self):
        ts = paper_figures_taskset()
        report = analyze(ts)
        assert report.feasible

        # Untreated: the fault propagates to tau3.
        bare = simulate(ts, horizon=paper_horizon(), faults=paper_fault())
        bare_metrics = compute_metrics(bare)
        assert bare_metrics.collateral_failures == ["tau3"]

        # Treated: contained, and the charts/metrics agree.
        for kind in (
            TreatmentKind.IMMEDIATE_STOP,
            TreatmentKind.EQUITABLE_ALLOWANCE,
            TreatmentKind.SYSTEM_ALLOWANCE,
        ):
            res = simulate(
                ts, horizon=paper_horizon(), faults=paper_fault(), treatment=kind
            )
            metrics = compute_metrics(res)
            assert metrics.collateral_failures == []
            chart = render_timeline(
                res, TimelineOptions(start=ms(950), end=ms(1200))
            )
            assert "X" in chart  # the stop is visible
            svg = render_svg(res)
            assert svg.startswith("<svg")

    def test_jrate_profile_shifts_but_preserves_story(self):
        ts = paper_figures_taskset()
        res = simulate(
            ts,
            horizon=paper_horizon(),
            faults=paper_fault(),
            treatment=TreatmentKind.IMMEDIATE_STOP,
            vm=jrate_vm(seed=2),
        )
        metrics = compute_metrics(res)
        # Detector rounding + poll cost move the stop a few ms, but the
        # containment result is unchanged.
        (stopped,) = res.stopped("tau1")
        assert ms(1030) <= stopped.finished_at <= ms(1035)
        assert metrics.collateral_failures == []


class TestScenarioFileRoundTrip:
    def test_file_to_simulation_to_metrics(self):
        text = """
        @unit ms
        @horizon 1600
        @treatment equitable-allowance
        task tau1 priority=20 cost=29 period=200  deadline=70
        task tau2 priority=18 cost=29 period=250  deadline=120
        task tau3 priority=16 cost=29 period=1500 deadline=120 offset=1000
        fault tau1 job=5 extra=40
        """
        scenario = parse_scenario(text)
        # Round-trip through the formatter must not change the outcome.
        reparsed = parse_scenario(format_scenario(scenario))
        a = run_scenario(scenario)
        b = run_scenario(reparsed)
        assert a.metrics.failed_tasks == b.metrics.failed_tasks == ["tau1"]
        assert a.result.job("tau1", 5).finished_at == b.result.job(
            "tau1", 5
        ).finished_at == ms(1040)


class TestDynamicSystemLifecycle:
    def test_admit_run_reclaim_readmit(self):
        # 1. Admit a system online.
        ctl = AdmissionController(treatment=TreatmentKind.EQUITABLE_ALLOWANCE)
        base = [
            Task("a", cost=ms(10), period=ms(50), priority=10),
            Task("b", cost=ms(20), period=ms(100), priority=5),
        ]
        for t in base:
            assert ctl.request_add(t).accepted

        # 2. Run it; 'b' only ever uses half its budget.
        from repro.core.faults import CostUnderrun

        faults = FaultInjector(
            [CostUnderrun("b", j, ms(10)) for j in range(10)]
        )
        res = simulate(ctl.taskset, horizon=ms(1000), faults=faults)
        assert compute_metrics(res).failed_tasks == []

        # 3. The under-run study frees allowance...
        study = reclaim_allowance(ctl.taskset, res)
        assert study.reclaimed > 0

        # 4. ...which admits a task the original declaration rejects:
        # under the declared costs c's response is 8+10+20 = 38 > 35,
        # with b tightened to ~11 it is 8+10+11 = 29 <= 35.
        newcomer = Task("c", cost=ms(8), period=ms(100), deadline=ms(35), priority=1)
        assert not ctl.request_add(newcomer).accepted
        tightened_ctl = AdmissionController(
            treatment=TreatmentKind.EQUITABLE_ALLOWANCE
        )
        for t in study.tightened:
            assert tightened_ctl.request_add(t).accepted
        assert tightened_ctl.request_add(newcomer).accepted

    def test_plan_reuse_across_runs(self):
        # One admission-control pass, many simulations (the paper's
        # static analysis reused across executions).
        ts = paper_figures_taskset()
        plan = plan_treatment(ts, TreatmentKind.SYSTEM_ALLOWANCE)
        ends = []
        for extra in (35, 40, 45):
            res = simulate(
                ts,
                horizon=paper_horizon(),
                faults=paper_fault(extra),
                treatment=plan,
            )
            (stopped,) = res.stopped("tau1")
            ends.append(stopped.finished_at)
        # All overruns beyond the 33 ms grant stop at the same bound.
        assert ends == [ms(1062)] * 3


class TestMixedWorkloadKitchenSink:
    def test_periodic_sporadic_locks_and_detectors_together(self):
        from repro.core.sporadic import SporadicTask, analysis_taskset, poisson_arrivals
        from repro.sim.locking import LockProtocol, SectionSpec

        periodic = [
            Task("ctl", cost=2, period=12, priority=10),
            Task("log", cost=4, period=40, deadline=36, priority=2),
        ]
        alarm = SporadicTask("alarm", cost=3, min_interarrival=30, priority=6)
        ts = analysis_taskset(periodic, [alarm])
        assert analyze(ts).feasible
        sections = [
            SectionSpec("ctl", "bus", 0, 1),
            SectionSpec("log", "bus", 1, 2),
        ]
        arrivals = poisson_arrivals(alarm, 900, seed=9)
        res = simulate(
            ts,
            horizon=1000,
            arrivals={"alarm": arrivals},
            sections=sections,
            protocol=LockProtocol.PIP,
            treatment=TreatmentKind.DETECT_ONLY,
        )
        # Everything holds together: no misses, no false detections.
        assert res.missed() == []
        from repro.sim.trace import EventKind

        assert res.trace.of_kind(EventKind.FAULT_DETECTED) == []
        # The bus saw real contention handling or at least traffic.
        assert res.trace.of_kind(EventKind.LOCK)
