"""Batch executors: run many experiment specs behind one interface.

Two implementations share the contract ``run(specs, fn) ->
list[ExecutionResult]`` (one result per spec, input order preserved;
*fn* is a picklable module-level builder mapping a spec to its exhibit
result):

* :class:`LocalExecutor` — serial, in-process; the reference
  implementation everything else must agree with byte-for-byte;
* :class:`PoolExecutor` — ``multiprocessing.Pool`` fan-out for
  ``--jobs N``; cache lookups and stores stay in the parent process so
  workers never contend on the cache directory.

Both are cache-aware: give them a
:class:`~repro.exec.cache.ResultCache` and previously computed specs
are served from disk (``source == "cache"``), with hit/miss/eviction
counters surfaced via :attr:`stats` and the run manifest.  Because
every builder is deterministic (seeded randomness only — lint rule
RT003), parallel and serial execution produce identical results, which
:mod:`tests.exec` asserts via manifest fingerprints.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.spec import ExperimentSpec
from repro.obs import aggregate, runtime as obs_runtime
from repro.obs.progress import ProgressWriter
from repro.obs.runtime import WorkerObs
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "ExecutionResult",
    "ExecutorStats",
    "Executor",
    "LocalExecutor",
    "PoolExecutor",
    "make_executor",
]

#: Builder signature: spec in, exhibit result out.
Builder = Callable[[ExperimentSpec], Any]


@dataclass(frozen=True)
class ExecutionResult:
    """One spec's outcome: the exhibit value plus execution metadata."""

    spec: ExperimentSpec
    value: Any
    wall_s: float
    source: str  # "computed" | "cache"
    #: Host-clock bounds of the build (``perf_counter_ns``; 0 for cache
    #: hits) and how long the spec sat queued behind other work before a
    #: worker picked it up — telemetry only, stripped from fingerprints.
    started_ns: int = 0
    ended_ns: int = 0
    queue_wait_ns: int = 0

    @property
    def from_cache(self) -> bool:
        return self.source == "cache"


@dataclass
class ExecutorStats:
    """Aggregate counters over every ``run()`` of one executor."""

    specs: int = 0
    computed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.specs if self.specs else 0.0

    def describe(self) -> str:
        pct = round(100 * self.hit_rate)
        return (
            f"{self.specs} specs: {self.computed} computed, "
            f"{self.cache_hits} from cache ({pct}% hit rate)"
        )


def _timed_build(
    payload: tuple[Builder, ExperimentSpec, WorkerObs | None],
) -> tuple[Any, float, int, int, aggregate.TelemetrySnapshot | None]:
    """Run one builder, returning its value, wall time in seconds, the
    raw ``perf_counter_ns`` start/end stamps, and (when worker
    observability is on) the telemetry the build produced.

    Module-level so it pickles into pool workers.  The ns stamps are
    monotonic and comparable across processes on Linux, which is what
    lets the parent compute per-spec queue wait under ``--jobs N``.
    Host-clock timing is run *metadata* (reported in manifests, excluded
    from fingerprints), not simulated time, hence the sanctioned RT002
    suppressions.

    With a :class:`~repro.obs.runtime.WorkerObs` recipe, the build runs
    under a fresh per-spec :class:`~repro.obs.runtime.ObsConfig`, and
    its metrics, a pid-tagged ``build`` span and any flight bundles
    come back as a mergeable snapshot — the fix for pool workers
    silently dropping their telemetry.  Serial executors take the exact
    same path, so serial and parallel telemetry agree modulo pid tags.
    """
    fn, spec, worker_obs = payload
    if worker_obs is None:
        t0 = time.perf_counter_ns()  # noqa: RT002 - run metadata, not simulated time
        value = fn(spec)
        t1 = time.perf_counter_ns()  # noqa: RT002 - run metadata, not simulated time
        return value, (t1 - t0) / 1_000_000_000, t0, t1, None
    config = worker_obs.build_config()
    with obs_runtime.activate(config):
        t0 = time.perf_counter_ns()  # noqa: RT002 - run metadata, not simulated time
        value = fn(spec)
        t1 = time.perf_counter_ns()  # noqa: RT002 - run metadata, not simulated time
    snapshot = aggregate.snapshot_telemetry(
        config.metrics.registry if config.metrics is not None else None,
        spans=(Span(name=spec.name, category="build", start_ns=t0, dur_ns=t1 - t0),),
        flight_bundles=tuple(config.flight.bundles) if config.flight is not None else (),
    )
    return value, (t1 - t0) / 1_000_000_000, t0, t1, snapshot


# -- pool handoff -----------------------------------------------------------
# Sweep chunk specs embed the *entire* sweep definition in their params
# (the self-containment that makes chunk caching sound), so shipping
# each spec through the pool re-pickles kilobytes of identical axes and
# generator knobs per chunk.  The pool instead broadcasts one
# *reference* spec (plus the builder and obs recipe) to every worker at
# fork time via the initializer, and each task carries only the delta
# against it — for sweep chunks, just the name and the start/count
# params.  Reconstruction is exact: the inflated spec compares equal to
# the original, so worker-side ``spec_hash()`` (flight-bundle context)
# and parent-side caching agree byte for byte.

#: Per-worker broadcast state installed by :func:`_pool_init`.
_POOL_STATE: tuple[Builder, WorkerObs | None, ExperimentSpec] | None = None

#: (changed non-params fields, changed/added params, removed param keys)
SpecDelta = tuple[
    tuple[tuple[str, Any], ...],
    tuple[tuple[str, Any], ...],
    tuple[str, ...],
]


def _pool_init(fn: Builder, worker_obs: WorkerObs | None, ref: ExperimentSpec) -> None:
    global _POOL_STATE
    _POOL_STATE = (fn, worker_obs, ref)


def _spec_delta(spec: ExperimentSpec, ref: ExperimentSpec) -> SpecDelta:
    """*spec* encoded as its difference from *ref* (see above)."""
    changed_fields = tuple(
        (f.name, getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "params" and getattr(spec, f.name) != getattr(ref, f.name)
    )
    ref_params = dict(ref.params)
    spec_params = dict(spec.params)
    changed_params = tuple(
        (k, v)
        for k, v in spec_params.items()
        if k not in ref_params or ref_params[k] != v
    )
    removed = tuple(k for k in ref_params if k not in spec_params)
    return (changed_fields, changed_params, removed)


def _inflate_spec(delta: SpecDelta, ref: ExperimentSpec) -> ExperimentSpec:
    """Inverse of :func:`_spec_delta`: rebuild the exact original."""
    changed_fields, changed_params, removed = delta
    params = dict(ref.params)
    for key in removed:
        del params[key]
    params.update(changed_params)
    return dataclasses.replace(
        ref,
        **dict(changed_fields),
        params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
    )


def _timed_build_delta(
    delta: SpecDelta,
) -> tuple[Any, float, int, int, aggregate.TelemetrySnapshot | None]:
    """Pool task body: inflate the spec against the broadcast reference
    and run the broadcast builder on it."""
    assert _POOL_STATE is not None, "worker used without _pool_init"
    fn, worker_obs, ref = _POOL_STATE
    return _timed_build((fn, _inflate_spec(delta, ref), worker_obs))


class Executor:
    """Common cache plumbing; subclasses implement :meth:`_compute`."""

    kind = "abstract"
    jobs = 1

    def __init__(
        self,
        cache: ResultCache | None = None,
        spans: SpanRecorder | None = None,
        worker_obs: WorkerObs | None = None,
        progress: ProgressWriter | None = None,
    ):
        self.cache = cache
        self.spans = spans
        self.worker_obs = worker_obs
        self.progress = progress
        self.stats = ExecutorStats()
        #: Merged worker telemetry across every ``run()`` (the identity
        #: snapshot until a worker-obs run contributes).
        self.telemetry = aggregate.EMPTY

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats if self.cache is not None else CacheStats()

    def run(self, specs: Sequence[ExperimentSpec], fn: Builder) -> list[ExecutionResult]:
        """Execute every spec (cache first), preserving input order."""
        if self.spans is None:
            return self._run(specs, fn)
        with self.spans.span("executor.run", "exec", specs=str(len(specs))):
            return self._run(specs, fn)

    def _progress_done(self, result: ExecutionResult) -> None:
        if self.progress is None:
            return
        points = getattr(result.value, "points", None)
        self.progress.emit(
            "spec_done",
            name=result.spec.name,
            source=result.source,
            wall_s=round(result.wall_s, 6),
            **({"points": len(points)} if points is not None else {}),
        )

    def _run(self, specs: Sequence[ExperimentSpec], fn: Builder) -> list[ExecutionResult]:
        results: dict[int, ExecutionResult] = {}
        pending: list[tuple[int, ExperimentSpec]] = []
        for i, spec in enumerate(specs):
            cached = self._cached(spec)
            if cached is not None:
                results[i] = ExecutionResult(spec, cached, 0.0, "cache")
                self._progress_done(results[i])
            else:
                pending.append((i, spec))
        compute_start = time.perf_counter_ns()  # noqa: RT002 - queue-wait metadata, not simulated time
        # _compute is lazy: each result is cached the moment it arrives,
        # so a killed run keeps every finished spec on disk and a rerun
        # only recomputes the rest (chunk-granularity sweep resume).
        for (i, spec), (value, wall_s, t0, t1, telemetry) in zip(
            pending, self._compute(pending, fn)
        ):
            if self.cache is not None:
                self.cache.put(spec, value)
            if self.spans is not None:
                self.spans.record(
                    spec.name, "spec", t0 - self.spans.origin_ns, t1 - t0
                )
            if telemetry is not None:
                self.telemetry = aggregate.merge(self.telemetry, telemetry)
            results[i] = ExecutionResult(
                spec,
                value,
                wall_s,
                "computed",
                started_ns=t0,
                ended_ns=t1,
                queue_wait_ns=max(0, t0 - compute_start),
            )
            self._progress_done(results[i])
        ordered = [results[i] for i in range(len(specs))]
        self.stats.specs += len(ordered)
        self.stats.computed += len(pending)
        self.stats.cache_hits += len(ordered) - len(pending)
        self.stats.wall_s += sum(r.wall_s for r in ordered)
        return ordered

    def _cached(self, spec: ExperimentSpec) -> Any | None:
        """Cache lookup, wrapped in a ``cache:<name>`` span when recording."""
        if self.cache is None:
            return None
        if self.spans is None:
            return self.cache.get(spec)
        t0 = self.spans.now_ns()
        cached = self.cache.get(spec)
        self.spans.record(
            spec.name,
            "cache",
            t0,
            self.spans.now_ns() - t0,
            outcome="hit" if cached is not None else "miss",
        )
        return cached

    def _compute(
        self, pending: Sequence[tuple[int, ExperimentSpec]], fn: Builder
    ) -> Iterator[tuple[Any, float, int, int, aggregate.TelemetrySnapshot | None]]:
        raise NotImplementedError


class LocalExecutor(Executor):
    """Serial in-process execution."""

    kind = "local"

    def _compute(
        self, pending: Sequence[tuple[int, ExperimentSpec]], fn: Builder
    ) -> Iterator[tuple[Any, float, int, int, aggregate.TelemetrySnapshot | None]]:
        for _, spec in pending:
            yield _timed_build((fn, spec, self.worker_obs))


class PoolExecutor(Executor):
    """``multiprocessing.Pool`` fan-out (``--jobs N``)."""

    kind = "pool"

    def __init__(
        self,
        jobs: int,
        cache: ResultCache | None = None,
        spans: SpanRecorder | None = None,
        worker_obs: WorkerObs | None = None,
        progress: ProgressWriter | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        super().__init__(cache, spans, worker_obs, progress)
        self.jobs = jobs

    def _compute(
        self, pending: Sequence[tuple[int, ExperimentSpec]], fn: Builder
    ) -> Iterator[tuple[Any, float, int, int, aggregate.TelemetrySnapshot | None]]:
        if not pending:
            return
        workers = min(self.jobs, len(pending))
        if workers == 1:
            for _, spec in pending:
                yield _timed_build((fn, spec, self.worker_obs))
            return
        # Broadcast the builder + first spec once (initializer), hand
        # each task only its delta: sweep chunks stop re-pickling the
        # embedded sweep definition per chunk.
        ref = pending[0][1]
        deltas = [_spec_delta(spec, ref) for _, spec in pending]
        with multiprocessing.Pool(
            processes=workers,
            initializer=_pool_init,
            initargs=(fn, self.worker_obs, ref),
        ) as pool:
            yield from pool.imap(_timed_build_delta, deltas, chunksize=1)


def make_executor(
    jobs: int = 1,
    cache: ResultCache | None = None,
    spans: SpanRecorder | None = None,
    worker_obs: WorkerObs | None = None,
    progress: ProgressWriter | None = None,
) -> Executor:
    """The executor the CLI flags describe: serial for ``--jobs 1``,
    a process pool otherwise."""
    if jobs > 1:
        return PoolExecutor(jobs, cache, spans, worker_obs, progress)
    return LocalExecutor(cache, spans, worker_obs, progress)
