"""Sufficient schedulability bounds cited by the paper.

The paper's state of the art (§2, refs [11], [2]) covers, besides exact
response-time analysis, the classic polynomial-time *sufficient* tests
for rate-monotonic systems with implicit deadlines:

* the Liu & Layland utilization bound ``U <= n (2^{1/n} - 1)`` [11];
* the hyperbolic bound ``prod (U_i + 1) <= 2`` of Bini & Buttazzo [2],
  which dominates the LL bound (accepts every set LL accepts, plus
  more) while remaining only sufficient.

These are useful as fast admission pre-filters: a set accepted by a
sufficient bound needs no response-time computation.  Both tests assume
``D_i = T_i`` and rate-monotonic-consistent priorities; callers are
responsible for those preconditions (checked helpers provided).
"""

from __future__ import annotations

from repro.core.task import TaskSet

__all__ = [
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_test",
    "is_implicit_deadline",
    "is_rate_monotonic",
]


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilization bound for *n* tasks.

    ``n (2^{1/n} - 1)``; tends to ``ln 2 ~ 0.693`` as n grows.
    """
    if n <= 0:
        raise ValueError("n must be >= 1")
    return n * (2 ** (1 / n) - 1)


def liu_layland_test(taskset: TaskSet) -> bool:
    """Sufficient RM test [11]: ``U <= n(2^{1/n} - 1)``.

    Returns True when the set is guaranteed schedulable under
    rate-monotonic priorities with implicit deadlines.  False means
    *unknown* (run the exact analysis), not infeasible.
    """
    if len(taskset) == 0:
        return True
    return taskset.utilization <= liu_layland_bound(len(taskset)) + 1e-12


def hyperbolic_test(taskset: TaskSet) -> bool:
    """Sufficient RM test [2]: ``prod (U_i + 1) <= 2``.

    Strictly dominates :func:`liu_layland_test`.  As with the LL test,
    False means unknown, not infeasible.
    """
    product = 1.0
    for t in taskset:
        product *= t.utilization + 1.0
    return product <= 2.0 + 1e-12


def is_implicit_deadline(taskset: TaskSet) -> bool:
    """True when every task has ``D_i == T_i`` (bound precondition)."""
    return all(t.deadline == t.period for t in taskset)


def is_rate_monotonic(taskset: TaskSet) -> bool:
    """True when priorities are rate-monotonic consistent: shorter
    period never has lower priority than a longer period."""
    tasks = taskset.tasks  # decreasing priority
    for i, hi in enumerate(tasks):
        for lo in tasks[i + 1 :]:
            if hi.priority > lo.priority and hi.period > lo.period:
                return False
    return True
