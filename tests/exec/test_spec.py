"""Unit tests for the declarative spec layer."""

import json

import pytest

from repro.exec.spec import ExperimentSpec


def sample_spec(**overrides):
    kwargs = dict(
        name="fig3",
        builder="paper.figure3",
        scenario="paper-figures",
        horizon=1_600_000_000,
        treatment="immediate-stop",
        faults=(("tau1", 5, 40_000_000),),
    )
    kwargs.update(overrides)
    return ExperimentSpec.make(**kwargs)


class TestIdentity:
    def test_hash_is_stable_across_constructions(self):
        assert sample_spec().spec_hash() == sample_spec().spec_hash()

    def test_hash_is_hex8(self):
        h = sample_spec().spec_hash()
        assert len(h) == 8
        int(h, 16)

    def test_every_field_feeds_the_hash(self):
        base = sample_spec()
        variants = [
            sample_spec(name="other"),
            sample_spec(builder="paper.figure5"),
            sample_spec(horizon=1),
            sample_spec(treatment="detect-only"),
            sample_spec(vm="jrate"),
            sample_spec(faults=(("tau1", 5, 41_000_000),)),
            sample_spec(seed=1),
            sample_spec(params={"k": 1}),
        ]
        hashes = {s.spec_hash() for s in variants}
        assert base.spec_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_params_order_does_not_matter(self):
        a = sample_spec(params={"x": 1, "y": 2})
        b = sample_spec(params={"y": 2, "x": 1})
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_params_are_frozen_recursively(self):
        spec = sample_spec(params={"resolutions": [1, 2, 3], "victim": ("tau1", 5)})
        assert spec.param("resolutions") == (1, 2, 3)
        assert spec.param("victim") == ("tau1", 5)
        assert hash(spec) is not None


class TestValidation:
    def test_name_required(self):
        with pytest.raises(ValueError, match="needs a name"):
            ExperimentSpec.make(name="", builder="b")

    def test_builder_required(self):
        with pytest.raises(ValueError, match="needs a builder"):
            ExperimentSpec.make(name="x", builder="")

    def test_scenario_and_text_exclusive(self):
        with pytest.raises(ValueError, match="exclusive"):
            ExperimentSpec.make(
                name="x", builder="b", scenario="paper-table2", scenario_text="task a ..."
            )

    def test_unsorted_params_rejected_on_direct_construction(self):
        with pytest.raises(ValueError, match="key-sorted"):
            ExperimentSpec(name="x", builder="b", params=(("b", 1), ("a", 2)))


class TestSerialisation:
    def test_to_dict_is_json_safe(self):
        spec = sample_spec(params={"resolutions": (1, 2)})
        payload = json.dumps(spec.to_dict())
        round_tripped = json.loads(payload)
        assert round_tripped["name"] == "fig3"
        assert round_tripped["faults"] == [["tau1", 5, 40_000_000]]
        assert round_tripped["params"] == {"resolutions": [1, 2]}

    def test_param_lookup_with_default(self):
        spec = sample_spec(params={"pool": 6})
        assert spec.param("pool") == 6
        assert spec.param("missing", 42) == 42
