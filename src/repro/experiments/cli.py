"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.experiments all
    python -m repro.experiments all --jobs 4 --manifest out/
    python -m repro.experiments table2 figure7
    python -m repro.experiments figure4 --svg out/
    python -m repro.experiments run my_scenario.txt --treatment immediate-stop

``all`` covers the nine paper exhibits *and* the six ablation studies.
Every target runs through the batch executor: ``--jobs N`` fans the
builds out over a process pool, results are cached under ``--cache``
(default ``.repro-cache/``; disable with ``--no-cache``), and
``--manifest DIR`` writes a ``manifest.json`` recording the spec,
content hash, claim verdicts and artifact digest of every exhibit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.treatments import TreatmentKind
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.manifest import build_manifest, manifest_fingerprint, write_manifest
from repro.exec.executor import Executor, make_executor
from repro.experiments.registry import all_specs, build_exhibit
from repro.experiments.runner import scenario_spec
from repro.viz.svg import SvgOptions, render_svg

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    known = {spec.name: spec for spec in all_specs()}
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Fault Tolerance "
        "with Real-Time Java' (Masson & Midonnet, 2006).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=f"experiment names ({', '.join(known)}), 'all', or "
        "'run <scenario-file>'",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="build exhibits over N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything; do not read or write the cache",
    )
    parser.add_argument(
        "--manifest",
        metavar="DIR",
        help="write manifest.json + rendered artifacts into DIR",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also write an SVG chart per figure into DIR",
    )
    parser.add_argument(
        "--treatment",
        choices=[k.value for k in TreatmentKind],
        help="treatment override for 'run' targets",
    )
    parser.add_argument(
        "--vm",
        choices=["exact", "jrate"],
        default="exact",
        help="VM profile for 'run' targets (default: exact)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1")
        return 2

    cache = None if args.no_cache else ResultCache(args.cache)
    executor = make_executor(args.jobs, cache)

    targets = list(args.targets)
    if targets and targets[0] == "run":
        return _run_scenario_files(targets[1:], args, executor)
    if targets and targets[0] == "report":
        from repro.experiments.report import generate_report

        print(generate_report(executor=executor))
        return 0
    if "all" in targets:
        targets = list(known)

    specs = []
    for name in targets:
        if name not in known:
            print(f"unknown experiment {name!r}; known: {', '.join(known)}")
            return 2
        specs.append(known[name])

    runs = executor.run(specs, build_exhibit)
    status = 0
    for run in runs:
        exp = run.value
        print(exp.render())
        for claim in exp.claims():
            print(str(claim))
            if not claim.holds:
                status = 1
        print()
        if args.svg and hasattr(exp, "result"):
            out = Path(args.svg)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{run.spec.name}.svg"
            path.write_text(render_svg(exp.result, SvgOptions(title=exp.name)))
            print(f"wrote {path}")
    if args.manifest:
        manifest, artifacts = build_manifest(runs, executor=executor)
        path = write_manifest(args.manifest, manifest, artifacts)
        print(f"wrote {path} (fingerprint {manifest_fingerprint(manifest)[:12]})")
    print(f"executor: {executor.stats.describe()}")
    return status


def _run_scenario_files(paths: list[str], args: argparse.Namespace, executor: Executor) -> int:
    if not paths:
        print("run: need at least one scenario file")
        return 2
    specs = [
        scenario_spec(
            Path(path).read_text(),
            name=Path(path).stem,
            treatment=args.treatment,
            vm=args.vm,
        )
        for path in paths
    ]
    for path, run in zip(paths, executor.run(specs, build_exhibit)):
        m = run.value.metrics
        print(f"{path}: horizon {m.horizon} ns")
        for name, tm in m.per_task.items():
            print(
                f"  {name}: jobs={tm.jobs} completed={tm.completed} "
                f"stopped={tm.stopped} misses={tm.deadline_misses} "
                f"detected={tm.faults_detected}"
            )
        print(f"  failed: {m.failed_tasks or 'none'}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
