"""Unit tests for VM profiles and overhead models."""

import pytest

from repro.core.detection import RoundingMode
from repro.sim.vm import (
    EXACT_VM,
    JRATE_VM,
    ConstantOverhead,
    NoOverhead,
    UniformOverhead,
    VMProfile,
    jrate_vm,
)
from repro.units import ms


class TestOverheadModels:
    def test_no_overhead(self):
        assert NoOverhead().sample() == 0

    def test_constant(self):
        model = ConstantOverhead(5)
        assert [model.sample() for _ in range(3)] == [5, 5, 5]

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantOverhead(-1)

    def test_uniform_bounds(self):
        model = UniformOverhead(10, 20, seed=1)
        samples = [model.sample() for _ in range(200)]
        assert all(10 <= s <= 20 for s in samples)
        assert min(samples) < max(samples)  # actually varies

    def test_uniform_deterministic_per_seed(self):
        a = [UniformOverhead(0, 100, seed=7).sample() for _ in range(10)]
        b_model = UniformOverhead(0, 100, seed=7)
        b = [b_model.sample() for _ in range(10)]
        assert a[0] == b[0]  # same first draw
        # Full sequences from two fresh models agree.
        c = [UniformOverhead(0, 100, seed=7) for _ in range(1)]
        assert [m.sample() for m in c * 1][0] == a[0]

    def test_uniform_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformOverhead(5, 3)
        with pytest.raises(ValueError):
            UniformOverhead(-1, 3)


class TestProfiles:
    def test_exact_profile(self):
        assert EXACT_VM.timer_rounding.mode is RoundingMode.NONE
        assert EXACT_VM.stop_poll_overhead.sample() == 0
        assert EXACT_VM.detector_fire_cost == 0

    def test_jrate_profile(self):
        assert JRATE_VM.timer_rounding.mode is RoundingMode.UP
        assert JRATE_VM.timer_rounding.resolution == ms(10)
        assert 0 <= JRATE_VM.stop_poll_overhead.sample() <= ms(3)

    def test_jrate_factory_seeding(self):
        a = jrate_vm(seed=1).stop_poll_overhead.sample()
        b = jrate_vm(seed=1).stop_poll_overhead.sample()
        assert a == b

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            VMProfile(detector_fire_cost=-1)
        with pytest.raises(ValueError):
            VMProfile(context_switch=-1)
