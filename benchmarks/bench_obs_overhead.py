"""Sweep-scale observability overhead: telemetry must be ~free.

The sweep-scale observability layer (worker telemetry snapshots,
progress stream, flight-recorder arming) rides the hot path of every
chunk build, so its contract is pay-as-you-go: a 10k-system sweep with
``--telemetry`` and ``--progress`` on must run within 5% of the same
sweep with observability off.  ``test_obs_overhead_under_5pct``
enforces the gate (best-of repeats to absorb host noise) and the
instrumented sweep's throughput lands in ``BENCH_results.json`` as
``systems_per_s`` so the CI regression guard watches it too.
"""

import time
from types import SimpleNamespace

from repro.exec.executor import LocalExecutor
from repro.exec.sweep import SweepSpec, run_sweep
from repro.obs.progress import ProgressWriter
from repro.obs.runtime import WorkerObs

#: Systems per arm.
TOTAL_SYSTEMS = 10_000

#: Best-of repeats per arm (min absorbs host noise).
REPEATS = 3

#: The gate: instrumented may cost at most 5% over bare.
MAX_OVERHEAD = 1.05


def _bench_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="bench-obs-overhead",
        axes={"utilization": (0.5, 0.6, 0.7, 0.8, 0.9)},
        replicates=TOTAL_SYSTEMS // 5,
        base_seed=77,
        n=4,
        deadline_factor=0.9,
        horizon_periods=6,
        chunk_size=2_000,
    )


def _run_bare() -> int:
    result = run_sweep(_bench_sweep(), executor=LocalExecutor())
    return len(result.points)


def _run_instrumented(tmp_path) -> int:
    progress = ProgressWriter(tmp_path / "progress.jsonl")
    executor = LocalExecutor(
        worker_obs=WorkerObs(telemetry=True, flight_dir=str(tmp_path / "flight")),
        progress=progress,
    )
    try:
        result = run_sweep(_bench_sweep(), executor=executor)
    finally:
        progress.close()
    assert executor.telemetry.counter_map()["sweep_points_total"] == TOTAL_SYSTEMS
    return len(result.points)


def _timed(fn):
    t0 = time.perf_counter_ns()  # noqa: RT002 - host-side benchmark timing, not simulated time
    fn()
    return time.perf_counter_ns() - t0  # noqa: RT002 - host-side benchmark timing, not simulated time


def _best_of_interleaved(a, b, repeats=REPEATS):
    """Best-of timings for two arms, alternated A/B/A/B so slow drift
    on a shared host (thermal, noisy neighbours) hits both equally."""
    best_a = best_b = None
    for _ in range(repeats):
        dt_a, dt_b = _timed(a), _timed(b)
        best_a = dt_a if best_a is None or dt_a < best_a else best_a
        best_b = dt_b if best_b is None or dt_b < best_b else best_b
    return best_a, best_b


def test_instrumented_sweep_throughput(benchmark, tmp_path):
    """The headline number: 10k systems with full observability on."""

    def run():
        systems = _run_instrumented(tmp_path)
        return SimpleNamespace(systems=systems)

    value = benchmark(run)
    assert value.systems == TOTAL_SYSTEMS


def test_obs_overhead_under_5pct(tmp_path):
    bare_ns, instrumented_ns = _best_of_interleaved(
        _run_bare, lambda: _run_instrumented(tmp_path)
    )
    ratio = instrumented_ns / bare_ns
    assert ratio <= MAX_OVERHEAD, (
        f"telemetry+progress+flight cost {(ratio - 1) * 100:.1f}% over the "
        f"bare sweep (gate: {(MAX_OVERHEAD - 1) * 100:.0f}%)"
    )
