"""Integration tests for the simulated polling server."""

import pytest

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.servers import ServerSpec, polling_response_bound
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.core.servers import polling_server_taskset
from repro.sim.servers import AperiodicRequest, ServerSimulation, simulate_with_server
from repro.sim.trace import EventKind


def periodic() -> TaskSet:
    return TaskSet(
        [
            Task("hi", cost=2, period=10, priority=10),
            Task("lo", cost=6, period=30, deadline=28, priority=2),
        ]
    )


SERVER = ServerSpec(name="srv", capacity=3, period=15, priority=5)


class TestPollingBehaviour:
    def test_empty_queue_skips_the_period(self):
        result, _ = simulate_with_server(periodic(), SERVER, [], horizon=100)
        assert result.jobs_of("srv") == []
        # Periodic tasks run normally.
        assert result.missed() == []

    def test_single_request_served_at_next_poll(self):
        req = AperiodicRequest("r0", arrival=1, demand=2)
        result, reqs = simulate_with_server(periodic(), SERVER, [req], horizon=100)
        (r0,) = reqs
        # Arrival at 1 missed the poll at 0 (queue was empty there);
        # the poll at 15 serves it: hi runs [20,22) second period...
        # server released at 15 with demand 2, hi's job at 10 is done,
        # so the server runs [15,17).
        assert r0.completed_at == 17
        assert r0.response_time == 16

    def test_request_present_at_poll_served_immediately(self):
        req = AperiodicRequest("r0", arrival=0, demand=2)
        result, reqs = simulate_with_server(periodic(), SERVER, [req], horizon=100)
        (r0,) = reqs
        # Poll at 0: hi runs [0,2), server [2,4).
        assert r0.completed_at == 4

    def test_large_request_spans_periods(self):
        req = AperiodicRequest("big", arrival=0, demand=7)
        result, reqs = simulate_with_server(periodic(), SERVER, [req], horizon=100)
        (big,) = reqs
        # Served 3 at poll 0, 3 at poll 15, 1 at poll 30.
        assert big.completed_at is not None
        polls = [j.release for j in result.jobs_of("srv")]
        assert polls[:3] == [0, 15, 30]
        assert big.completed_at > 30

    def test_fifo_order(self):
        reqs = [
            AperiodicRequest("first", arrival=0, demand=2),
            AperiodicRequest("second", arrival=0, demand=2),
        ]
        _, served = simulate_with_server(periodic(), SERVER, reqs, horizon=100)
        first = next(r for r in served if r.name == "first")
        second = next(r for r in served if r.name == "second")
        assert first.completed_at < second.completed_at

    def test_capacity_respected_every_period(self):
        reqs = [AperiodicRequest("big", arrival=0, demand=30)]
        result, _ = simulate_with_server(periodic(), SERVER, reqs, horizon=200)
        for job in result.jobs_of("srv"):
            assert job.demand <= SERVER.capacity

    def test_periodic_tasks_unaffected_beyond_analysis(self):
        reqs = [AperiodicRequest(f"r{i}", arrival=i * 7, demand=3) for i in range(20)]
        result, _ = simulate_with_server(periodic(), SERVER, reqs, horizon=300)
        assert result.missed() == []
        from repro.core.feasibility import analyze

        report = analyze(polling_server_taskset(periodic(), SERVER))
        for t in periodic():
            observed = result.max_response_time(t.name)
            assert observed is not None and observed <= report.wcrt(t.name)

    def test_responses_within_polling_bound(self):
        reqs = [
            AperiodicRequest("a", arrival=3, demand=3),
            AperiodicRequest("b", arrival=31, demand=5),
        ]
        _, served = simulate_with_server(periodic(), SERVER, reqs, horizon=300)
        for r in served:
            bound = polling_response_bound(r.demand, SERVER, periodic())
            assert r.response_time is not None
            assert r.response_time <= bound

    def test_unique_names_required(self):
        reqs = [
            AperiodicRequest("dup", arrival=0, demand=1),
            AperiodicRequest("dup", arrival=5, demand=1),
        ]
        with pytest.raises(ValueError, match="unique"):
            ServerSimulation(periodic(), SERVER, reqs, horizon=100)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            AperiodicRequest("r", arrival=-1, demand=1)
        with pytest.raises(ValueError):
            AperiodicRequest("r", arrival=0, demand=0)


class TestServerWithDetectors:
    def test_server_detector_and_treatment(self):
        # A faulty server job (overrunning budget, e.g. a runaway
        # aperiodic handler) is caught and stopped like any task.
        full = polling_server_taskset(periodic(), SERVER)
        plan = plan_treatment(full, TreatmentKind.IMMEDIATE_STOP)
        faults = FaultInjector([CostOverrun("srv", 0, 20)])
        reqs = [AperiodicRequest("r0", arrival=0, demand=2)]
        sim = ServerSimulation(
            periodic(), SERVER, reqs, horizon=100, faults=faults, plan=plan
        )
        result = sim.run()
        (stopped,) = result.stopped("srv")
        assert stopped.index == 0
        assert result.missed() == []  # periodic tasks protected

    def test_detector_fires_for_server(self):
        full = polling_server_taskset(periodic(), SERVER)
        plan = plan_treatment(full, TreatmentKind.DETECT_ONLY)
        reqs = [AperiodicRequest("r0", arrival=0, demand=2)]
        sim = ServerSimulation(periodic(), SERVER, reqs, horizon=100, plan=plan)
        result = sim.run()
        fires = [e for e in result.trace.of_kind(EventKind.DETECTOR_FIRE) if e.task == "srv"]
        assert fires  # detectors follow the server's releases
        assert result.trace.of_kind(EventKind.FAULT_DETECTED) == []
