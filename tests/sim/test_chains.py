"""Integration + property tests for precedence-driven simulation."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.precedence import (
    PrecedenceGraph,
    end_to_end_bound,
    holistic_response_times,
)
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.sim.chains import ChainSimulation, end_to_end_latencies, simulate_chains


def transaction() -> PrecedenceGraph:
    ts = TaskSet(
        [
            Task("clock", cost=1, period=10, priority=20),
            Task("sense", cost=2, period=40, priority=9),
            Task("compute", cost=6, period=40, priority=8),
            Task("act", cost=2, period=40, priority=7),
        ]
    )
    return PrecedenceGraph(ts, [("sense", "compute"), ("compute", "act")])


CHAIN = ["sense", "compute", "act"]


class TestChainExecution:
    def test_successors_release_at_predecessor_completion(self):
        g = transaction()
        res = simulate_chains(g, horizon=200)
        sense0 = res.job("sense", 0)
        compute0 = res.job("compute", 0)
        act0 = res.job("act", 0)
        assert compute0.release == sense0.finished_at
        assert act0.release == compute0.finished_at

    def test_transaction_repeats_every_period(self):
        g = transaction()
        res = simulate_chains(g, horizon=199)  # avoid a release on the edge
        assert len(res.jobs_of("act")) == len(res.jobs_of("sense")) == 5
        for job in res.jobs_of("sense"):
            assert job.release % 40 == 0

    def test_only_roots_clock_released(self):
        g = transaction()
        res = simulate_chains(g, horizon=200)
        # compute's releases are not at period boundaries (they carry
        # sense's response time).
        assert all(j.release % 40 != 0 for j in res.jobs_of("compute"))

    def test_latencies_within_holistic_bound(self):
        g = transaction()
        res = simulate_chains(g, horizon=400)
        bound = end_to_end_bound(g, CHAIN)
        latencies = end_to_end_latencies(res, g, CHAIN)
        assert latencies
        assert all(lat <= bound for lat in latencies.values())

    def test_and_join_waits_for_all(self):
        ts = TaskSet(
            [
                Task("fast", cost=1, period=40, priority=9),
                Task("slow", cost=8, period=40, priority=8),
                Task("join", cost=2, period=40, priority=7),
            ]
        )
        g = PrecedenceGraph(ts, [("fast", "join"), ("slow", "join")])
        res = simulate_chains(g, horizon=120)
        join0 = res.job("join", 0)
        assert join0.release == res.job("slow", 0).finished_at
        assert join0.release > res.job("fast", 0).finished_at

    def test_detectors_follow_dynamic_releases(self):
        from repro.sim.trace import EventKind

        g = transaction()
        plan = plan_treatment(g.taskset, TreatmentKind.DETECT_ONLY)
        res = simulate_chains(g, horizon=200, plan=plan)
        fires = [e for e in res.trace.of_kind(EventKind.DETECTOR_FIRE) if e.task == "compute"]
        computes = res.jobs_of("compute")
        # One detector fire per dynamic release, offset by compute's WCRT.
        offset = plan.detectors["compute"].offset
        fire_times = sorted(e.time for e in fires)
        expected = sorted(j.release + offset for j in computes if j.release + offset <= 200)
        assert fire_times == expected

    def test_faulty_chain_task_stopped(self):
        g = transaction()
        plan = plan_treatment(g.taskset, TreatmentKind.IMMEDIATE_STOP)
        faults = FaultInjector([CostOverrun("compute", 0, 30)])
        res = simulate_chains(g, horizon=200, faults=faults, plan=plan)
        (stopped,) = res.stopped("compute")
        assert stopped.index == 0
        # The successor still releases (at the stop instant).
        assert res.job("act", 0).release == stopped.finished_at


@st.composite
def random_chain_systems(draw):
    """A 3-stage chain + one interfering high-rate task."""
    period = draw(st.sampled_from([30, 40, 60]))
    chain_costs = [draw(st.integers(1, 6)) for _ in range(3)]
    hi_cost = draw(st.integers(1, 3))
    hi_period = draw(st.sampled_from([8, 10, 12]))
    ts = TaskSet(
        [
            Task("hi", cost=hi_cost, period=hi_period, priority=20),
            Task("s0", cost=chain_costs[0], period=period, priority=9),
            Task("s1", cost=chain_costs[1], period=period, priority=8),
            Task("s2", cost=chain_costs[2], period=period, priority=7),
        ]
    )
    return PrecedenceGraph(ts, [("s0", "s1"), ("s1", "s2")])


class TestChainProperties:
    @given(random_chain_systems())
    @settings(max_examples=30, deadline=None)
    def test_observed_latency_never_exceeds_holistic_bound(self, g):
        bounds = holistic_response_times(g)
        assume(all(b is not None for b in bounds.values()))
        res = simulate_chains(g, horizon=6 * g.taskset["s0"].period)
        latencies = end_to_end_latencies(res, g, ["s0", "s1", "s2"])
        assume(latencies)
        bound = bounds["s2"]
        for lat in latencies.values():
            assert lat <= bound
