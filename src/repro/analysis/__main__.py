"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — normal CLI
        # usage, not an error worth a traceback.  Detach stdout so the
        # interpreter's exit-time flush doesn't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
