"""Time-demand analysis (Lehoczky, Sha & Ding) — an independent exact
test used to cross-validate the Figure 2 implementation.

For constrained-deadline fixed-priority systems, a task is schedulable
iff its cumulative demand fits the supplied time at *some* scheduling
point:

    exists t in P_i :  C_i + sum_{j in hp(i)} ceil(t / T_j) * C_j <= t

where the scheduling points ``P_i`` are the multiples of the
higher-priority periods up to ``D_i`` plus ``D_i`` itself.  The test is
exact, like the response-time analysis, but arrives at the verdict by a
completely different route — which makes agreement between the two a
strong correctness signal (property-tested in the suite).
"""

from __future__ import annotations

from repro.core.task import Task, TaskSet

__all__ = [
    "scheduling_points",
    "time_demand",
    "tda_schedulable",
    "tda_feasible",
    "demand_curve",
]


def scheduling_points(task: Task, taskset: TaskSet) -> list[int]:
    """The testing set ``P_i``: multiples of higher-priority periods in
    ``(0, D_i]``, plus ``D_i``."""
    if not task.constrained:
        raise ValueError("time-demand analysis requires D <= T")
    points = {task.deadline}
    for t in taskset.higher_or_equal_priority(task):
        k = 1
        while k * t.period <= task.deadline:
            points.add(k * t.period)
            k += 1
    return sorted(points)


def time_demand(task: Task, taskset: TaskSet, t: int) -> int:
    """Cumulative demand ``w_i(t)`` at time *t* from the critical
    instant: the task's own cost plus all higher-priority activations."""
    if t <= 0:
        raise ValueError("t must be > 0")
    demand = task.cost
    for hp in taskset.higher_or_equal_priority(task):
        demand += -(-t // hp.period) * hp.cost
    return demand


def tda_schedulable(task: Task, taskset: TaskSet) -> bool:
    """Exact schedulability of *task* by time-demand analysis."""
    return any(
        time_demand(task, taskset, t) <= t for t in scheduling_points(task, taskset)
    )


def tda_feasible(taskset: TaskSet) -> bool:
    """Whole-system feasibility by time-demand analysis.

    Restricted to constrained deadlines; use the Figure 2 analysis for
    the general case.
    """
    return all(tda_schedulable(t, taskset) for t in taskset)


def demand_curve(task: Task, taskset: TaskSet) -> list[tuple[int, int]]:
    """``(t, w_i(t))`` at every scheduling point — the data behind the
    classic time-demand plots (useful alongside the Figure 1 series)."""
    return [
        (t, time_demand(task, taskset, t)) for t in scheduling_points(task, taskset)
    ]
