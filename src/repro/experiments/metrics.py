"""Run metrics extracted from simulation results.

Quantifies what the paper reads off its charts: which tasks failed,
response times, detector lateness, CPU idle time.  Following §6.3, a
task counts as *failed* when a job either missed its deadline or was
stopped by a treatment (the paper counts stopped tau1 as "the only task
to miss its deadline" in Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.sim.simulation import SimResult
from repro.sim.trace import EventKind

__all__ = ["TaskMetrics", "RunMetrics", "compute_metrics"]


@dataclass(frozen=True)
class TaskMetrics:
    """Per-task outcome of a run."""

    name: str
    jobs: int
    completed: int
    stopped: int
    deadline_misses: int
    faults_detected: int
    max_response_time: int | None
    total_overrun_demand: int  # injected demand above the declared cost

    @property
    def failed(self) -> bool:
        """Paper accounting: missed a deadline or was stopped."""
        return self.deadline_misses > 0 or self.stopped > 0

    @property
    def faulty(self) -> bool:
        """True when the task *caused* faults (overran its cost)."""
        return self.total_overrun_demand > 0


@dataclass(frozen=True)
class RunMetrics:
    """Whole-run outcome."""

    per_task: Mapping[str, TaskMetrics]
    busy_time: int
    horizon: int
    detector_fires: int
    detections: int

    @property
    def idle_time(self) -> int:
        return self.horizon - self.busy_time

    @property
    def failed_tasks(self) -> list[str]:
        return [name for name, m in self.per_task.items() if m.failed]

    @property
    def collateral_failures(self) -> list[str]:
        """Non-faulty tasks that failed — exactly what the paper's
        treatments exist to prevent ("prevent that the faulty tasks
        with a strong priority cause the failure of non-faulty tasks
        with a lower priority")."""
        return [
            name for name, m in self.per_task.items() if m.failed and not m.faulty
        ]

    @property
    def total_misses(self) -> int:
        return sum(m.deadline_misses for m in self.per_task.values())


def compute_metrics(result: SimResult) -> RunMetrics:
    """Summarise *result* (overhead pseudo-jobs are excluded)."""
    per_task: dict[str, TaskMetrics] = {}
    for task in result.taskset:
        jobs = result.jobs_of(task.name)
        responses = [j.response_time for j in jobs if j.response_time is not None]
        per_task[task.name] = TaskMetrics(
            name=task.name,
            jobs=len(jobs),
            completed=sum(1 for j in jobs if j.finished and not j.was_stopped),
            stopped=sum(1 for j in jobs if j.was_stopped),
            deadline_misses=sum(1 for j in jobs if j.deadline_missed),
            faults_detected=sum(1 for j in jobs if j.fault_detected),
            max_response_time=max(responses) if responses else None,
            total_overrun_demand=sum(
                max(j.demand - task.cost, 0) for j in jobs
            ),
        )
    return RunMetrics(
        per_task=per_task,
        busy_time=result.busy_time,
        horizon=result.horizon,
        detector_fires=len(result.trace.of_kind(EventKind.DETECTOR_FIRE)),
        detections=len(result.trace.of_kind(EventKind.FAULT_DETECTED)),
    )
