"""Every lint rule: a fixture that triggers it and one that does not."""

import textwrap

import pytest

from repro.analysis import Severity, lint_source


def lint(code, **kwargs):
    return lint_source(textwrap.dedent(code), "fixture.py", **kwargs)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestRT001FloatTime:
    def test_float_literal_times_time_value(self):
        diags = lint("def f(deadline):\n    return deadline * 0.5\n")
        assert codes(diags) == ["RT001"]
        assert diags[0].line == 2
        assert diags[0].severity is Severity.ERROR

    def test_true_division_of_time_value(self):
        diags = lint("def f(period):\n    return period / 2\n")
        assert codes(diags) == ["RT001"]

    def test_float_conversion_of_time_value(self):
        diags = lint("def f(t):\n    return float(t.cost)\n")
        assert codes(diags) == ["RT001"]

    def test_ratio_of_two_times_is_allowed(self):
        # cost / period is a dimensionless utilization — fine.
        assert lint("def f(t):\n    return t.cost / t.period\n") == []

    def test_integer_division_is_allowed(self):
        assert lint("def f(period):\n    return period // 2\n") == []

    def test_non_time_float_math_is_allowed(self):
        assert lint("def f(x):\n    return x * 0.5\n") == []

    def test_units_module_is_exempt(self):
        source = "def to_ms(ticks):\n    return ticks / 1_000_000\n"
        assert lint_source(source, "src/repro/units.py") == []
        assert codes(lint_source(source, "src/repro/core/other.py")) == ["RT001"]

    def test_noqa_suppression(self):
        diags = lint("def f(period):\n    return period / 2  # noqa: RT001\n")
        assert diags == []


class TestRT002WallClock:
    def test_time_time(self):
        diags = lint("import time\n\ndef f():\n    return time.time()\n")
        assert codes(diags) == ["RT002"]
        assert diags[0].line == 4

    def test_time_module_alias(self):
        diags = lint("import time as t\n\ndef f():\n    return t.monotonic()\n")
        assert codes(diags) == ["RT002"]

    def test_from_import(self):
        diags = lint("from time import perf_counter\n\ndef f():\n    return perf_counter()\n")
        assert codes(diags) == ["RT002"]

    def test_datetime_now(self):
        diags = lint(
            "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
        )
        assert codes(diags) == ["RT002"]

    def test_datetime_module_chain(self):
        diags = lint("import datetime\n\ndef f():\n    return datetime.datetime.now()\n")
        assert codes(diags) == ["RT002"]

    def test_sleep_flagged(self):
        diags = lint("import time\n\ndef f():\n    time.sleep(1)\n")
        assert codes(diags) == ["RT002"]

    def test_unrelated_time_name_is_allowed(self):
        # A local object that happens to be called `time` is not stdlib time.
        assert lint("def f(rtsj_time):\n    return rtsj_time.absolute()\n") == []


class TestRT003Randomness:
    def test_module_level_draw(self):
        diags = lint("import random\n\ndef f():\n    return random.randint(1, 6)\n")
        assert codes(diags) == ["RT003"]
        assert diags[0].line == 4

    def test_unseeded_random_instance(self):
        diags = lint("import random\n\ndef f():\n    return random.Random()\n")
        assert codes(diags) == ["RT003"]

    def test_hash_derived_seed(self):
        diags = lint(
            "import random\n\ndef f(key, seed):\n"
            "    return random.Random(hash(key) ^ seed)\n"
        )
        assert codes(diags) == ["RT003"]
        assert "hash" in diags[0].message

    def test_from_import_of_global_function(self):
        diags = lint("from random import randint\n")
        assert codes(diags) == ["RT003"]

    def test_numpy_global_state(self):
        diags = lint("import numpy\n\ndef f():\n    return numpy.random.rand(3)\n")
        assert codes(diags) == ["RT003"]

    def test_seeded_random_is_allowed(self):
        assert lint("import random\n\ndef f(seed):\n    return random.Random(seed)\n") == []

    def test_from_import_random_class_is_allowed(self):
        assert lint("from random import Random\n\ndef f(s):\n    return Random(s)\n") == []

    def test_numpy_default_rng_is_allowed(self):
        assert lint("import numpy\n\ndef f(s):\n    return numpy.random.default_rng(s)\n") == []

    def test_unseeded_numpy_default_rng(self):
        diags = lint(
            "import numpy\n\ndef f():\n    return numpy.random.default_rng()\n"
        )
        assert codes(diags) == ["RT003"]
        assert "default_rng" in diags[0].message

    def test_unseeded_default_rng_via_from_import(self):
        diags = lint(
            "from numpy.random import default_rng\n\n"
            "def f():\n    return default_rng()\n"
        )
        assert codes(diags) == ["RT003"]

    def test_unseeded_default_rng_via_np_alias(self):
        diags = lint(
            "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        )
        assert codes(diags) == ["RT003"]

    def test_keyword_seeded_default_rng_is_allowed(self):
        assert (
            lint(
                "import numpy\n\ndef f(s):\n"
                "    return numpy.random.default_rng(seed=s)\n"
            )
            == []
        )

    def test_unrelated_default_rng_name_is_allowed(self):
        # A local helper that happens to share the name is not numpy's.
        assert (
            lint("def default_rng():\n    return 4\n\n\ndef f():\n    return default_rng()\n")
            == []
        )


class TestRT004FrozenMutation:
    def test_setattr_outside_post_init(self):
        diags = lint(
            """
            def clobber(task):
                object.__setattr__(task, "cost", 0)
            """
        )
        assert codes(diags) == ["RT004"]

    def test_setattr_in_post_init_is_allowed(self):
        assert (
            lint(
                """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class T:
                    deadline: int = -1
                    def __post_init__(self):
                        if self.deadline == -1:
                            object.__setattr__(self, "deadline", 5)
                """
            )
            == []
        )

    def test_self_assignment_in_frozen_dataclass_method(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class T:
                x: int
                def bump(self):
                    self.x = self.x + 1
            """
        )
        assert codes(diags) == ["RT004"]

    def test_self_assignment_in_mutable_dataclass_is_allowed(self):
        assert (
            lint(
                """
                from dataclasses import dataclass

                @dataclass
                class T:
                    x: int
                    def bump(self):
                        self.x = self.x + 1
                """
            )
            == []
        )


class TestRT005RawRanks:
    def test_positional_integer_rank(self):
        diags = lint("def f(engine, cb):\n    engine.schedule(10, cb, 2)\n")
        assert codes(diags) == ["RT005"]

    def test_keyword_integer_rank(self):
        diags = lint("def f(engine, cb):\n    engine.schedule_in(5, cb, rank=3)\n")
        assert codes(diags) == ["RT005"]

    def test_named_rank_is_allowed(self):
        assert (
            lint(
                "def f(engine, cb, Rank):\n"
                "    engine.schedule(10, cb, Rank.DEADLINE_CHECK)\n"
            )
            == []
        )

    def test_default_rank_is_allowed(self):
        assert lint("def f(engine, cb):\n    engine.schedule(10, cb)\n") == []


class TestRT006ExecutorDiscipline:
    EXPERIMENT_PATH = "src/repro/experiments/custom.py"

    def test_direct_simulate_call_in_experiments(self):
        source = "def f(ts):\n    return simulate(ts, horizon=100)\n"
        diags = lint_source(source, self.EXPERIMENT_PATH)
        assert codes(diags) == ["RT006"]
        assert "simulate()" in diags[0].message

    def test_attribute_call_in_experiments(self):
        source = "def f(ts):\n    return simulation.simulate(ts, horizon=100)\n"
        assert codes(lint_source(source, self.EXPERIMENT_PATH)) == ["RT006"]

    def test_run_scenario_call_in_experiments(self):
        source = "def f(sc):\n    return run_scenario(sc)\n"
        assert codes(lint_source(source, self.EXPERIMENT_PATH)) == ["RT006"]

    def test_simulate_import_in_experiments(self):
        source = "from repro.sim.simulation import simulate\n"
        assert codes(lint_source(source, self.EXPERIMENT_PATH)) == ["RT006"]

    def test_same_code_outside_experiments_is_allowed(self):
        source = (
            "from repro.sim.simulation import simulate\n\n"
            "def f(ts):\n    return simulate(ts, horizon=100)\n"
        )
        assert lint_source(source, "src/repro/exec/sim.py") == []
        assert lint_source(source, "benchmarks/bench_fig3.py") == []

    def test_executor_bridge_calls_are_allowed(self):
        source = (
            "from repro.exec.sim import run_simulation, simulate_spec\n\n"
            "def build(spec):\n    return simulate_spec(spec)\n\n"
            "def sweep(ts):\n    return run_simulation(ts, horizon=100)\n"
        )
        assert lint_source(source, self.EXPERIMENT_PATH) == []

    def test_noqa_suppression(self):
        source = "def f(ts):\n    return simulate(ts, horizon=1)  # noqa: RT006\n"
        assert lint_source(source, self.EXPERIMENT_PATH) == []


class TestRT007NoBarePrint:
    LIBRARY_PATH = "src/repro/sim/helper.py"

    def test_print_in_library_module(self):
        source = "def f(x):\n    print(x)\n    return x\n"
        diags = lint_source(source, self.LIBRARY_PATH)
        assert codes(diags) == ["RT007"]
        assert diags[0].line == 2

    def test_cli_module_is_exempt(self):
        source = "def main():\n    print('usage: ...')\n"
        assert lint_source(source, "src/repro/experiments/cli.py") == []
        assert lint_source(source, "src/repro/obs/__main__.py") == []

    def test_report_module_is_exempt(self):
        source = "def render():\n    print('Table 1')\n"
        assert lint_source(source, "src/repro/experiments/report.py") == []

    def test_outside_repro_is_allowed(self):
        source = "def f(x):\n    print(x)\n"
        assert lint_source(source, "examples/quickstart.py") == []
        assert lint_source(source, "fixture.py") == []

    def test_shadowed_print_method_is_allowed(self):
        # Only the builtin name as a bare call counts; attribute calls
        # (e.g. a printer object's .print()) are not the builtin.
        source = "def f(doc):\n    doc.print()\n"
        assert lint_source(source, self.LIBRARY_PATH) == []

    def test_noqa_suppression(self):
        source = "def f(x):\n    print(x)  # noqa: RT007\n"
        assert lint_source(source, self.LIBRARY_PATH) == []


class TestRT008SearchDiscipline:
    CORE_PATH = "src/repro/core/allowance.py"

    def test_lambda_predicate_calling_analyze(self):
        source = (
            "def search(ts, hi):\n"
            "    return max_such_that(lambda a: analyze(inflate(ts, a)).feasible, hi)\n"
        )
        diags = lint_source(source, self.CORE_PATH)
        assert codes(diags) == ["RT008"]
        assert "analyze" in diags[0].message

    def test_named_predicate_calling_cold_entry_points(self):
        source = (
            "def search(ts, hi):\n"
            "    def ok(a):\n"
            "        return is_feasible(inflate(ts, a))\n"
            "    return max_such_that(ok, hi)\n"
        )
        assert codes(lint_source(source, self.CORE_PATH)) == ["RT008"]

    def test_attribute_cold_call_in_predicate(self):
        source = (
            "def search(ts, hi):\n"
            "    return max_such_that(\n"
            "        lambda a: feasibility.wc_response_time(ts[0], ts) is not None, hi\n"
            "    )\n"
        )
        assert codes(lint_source(source, self.CORE_PATH)) == ["RT008"]

    def test_context_probe_is_allowed(self):
        source = (
            "def search(ctx, hi):\n"
            "    return max_such_that(lambda a: ctx.with_inflated_costs(a).feasible, hi)\n"
        )
        assert lint_source(source, self.CORE_PATH) == []

    def test_cold_probe_outside_core_is_allowed(self):
        # Benchmarks and tests keep cold baselines on purpose.
        source = (
            "def cold(ts, hi):\n"
            "    return max_such_that(lambda a: analyze(inflate(ts, a)).feasible, hi)\n"
        )
        assert lint_source(source, "benchmarks/bench_analysis_fastpath.py") == []
        assert lint_source(source, "tests/core/test_context_equivalence.py") == []

    def test_cold_call_outside_predicate_is_allowed(self):
        # analyze() itself is fine in core; only per-probe use is not.
        source = (
            "def f(ts):\n"
            "    report = analyze(ts)\n"
            "    return report.feasible\n"
        )
        assert lint_source(source, self.CORE_PATH) == []


class TestRT009PartitionDiscipline:
    AUTHORITY_PATH = "src/repro/core/partition.py"
    MP_PATH = "src/repro/sim/mp.py"
    OTHER_PATH = "src/repro/experiments/mp.py"

    def test_private_state_poke_outside_authority(self):
        source = "def move(partitioner, name, p):\n    partitioner._assignment[name] = p\n"
        diags = lint_source(source, self.OTHER_PATH)
        assert "RT009" in codes(diags)
        assert "_assignment" in diags[0].message

    def test_private_subset_read_outside_authority(self):
        source = "def peek(partitioner):\n    return partitioner._subsets[0]\n"
        assert "RT009" in codes(lint_source(source, self.OTHER_PATH))

    def test_snapshot_assignment_write(self):
        source = "def move(result, name, p):\n    result.assignment[name] = p\n"
        assert codes(lint_source(source, self.OTHER_PATH)) == ["RT009"]

    def test_shard_move_outside_mp_driver(self):
        source = "def yank(shard, name):\n    shard.detach_task(name)\n"
        diags = lint_source(source, self.OTHER_PATH)
        assert codes(diags) == ["RT009"]
        assert "detach_task" in diags[0].message

    def test_shard_move_inside_mp_driver_is_allowed(self):
        source = (
            "def migrate(shard, target, task, name):\n"
            "    idx = shard.detach_task(name)\n"
            "    target.adopt_task(task, idx)\n"
        )
        assert lint_source(source, self.MP_PATH) == []

    def test_authority_module_is_exempt(self):
        source = "def admit(self, name, p):\n    self._assignment[name] = p\n"
        assert lint_source(source, self.AUTHORITY_PATH) == []

    def test_sanctioned_reassign_is_allowed(self):
        source = "def move(partitioner, name, p):\n    partitioner.reassign(name, p)\n"
        assert lint_source(source, self.OTHER_PATH) == []

    def test_snapshot_read_is_allowed(self):
        source = "def where(result, name):\n    return result.assignment[name]\n"
        assert lint_source(source, self.OTHER_PATH) == []


class TestRT010PopulationDiscipline:
    SWEEP_PATH = "src/repro/exec/sweep.py"
    BATCH_PATH = "src/repro/sim/batch.py"
    ELSEWHERE = "src/repro/experiments/paper.py"

    def test_per_system_loop_flagged(self):
        source = (
            "def run_all(systems, horizon):\n"
            "    out = []\n"
            "    for ts in systems:\n"
            "        out.append(run_simulation(ts, horizon=horizon))\n"
            "    return out\n"
        )
        diags = lint_source(source, self.SWEEP_PATH)
        assert "RT010" in codes(diags)
        assert "run_simulation" in diags[0].message

    def test_method_call_and_while_loop_flagged(self):
        source = (
            "def drain(queue, engine):\n"
            "    while queue:\n"
            "        engine.simulate(queue.pop())\n"
        )
        assert "RT010" in codes(lint_source(source, self.BATCH_PATH))

    def test_exact_fallback_is_sanctioned(self):
        source = (
            "def _exact_fallback(work):\n"
            "    out = []\n"
            "    for ts, horizon in work:\n"
            "        out.append(run_simulation(ts, horizon=horizon))\n"
            "    return out\n"
        )
        assert lint_source(source, self.SWEEP_PATH) == []

    def test_call_outside_any_loop_is_allowed(self):
        source = (
            "def one(ts, horizon):\n"
            "    return run_simulation(ts, horizon=horizon)\n"
        )
        assert lint_source(source, self.SWEEP_PATH) == []

    def test_nested_function_resets_loop_scope(self):
        source = (
            "def build(systems):\n"
            "    for ts in systems:\n"
            "        pass\n"
            "    def runner(ts, horizon):\n"
            "        return run_simulation(ts, horizon=horizon)\n"
            "    return runner\n"
        )
        assert lint_source(source, self.SWEEP_PATH) == []

    def test_modules_outside_population_stack_are_exempt(self):
        source = (
            "def table(systems, horizon):\n"
            "    return [run_simulation(ts, horizon=horizon) for ts in systems]\n"
        )
        # Comprehension loops in exempt modules, and explicit loops too.
        explicit = (
            "def table(systems, horizon):\n"
            "    out = []\n"
            "    for ts in systems:\n"
            "        out.append(run_simulation(ts, horizon=horizon))\n"
            "    return out\n"
        )
        assert lint_source(source, self.ELSEWHERE) == []
        assert lint_source(explicit, self.ELSEWHERE) == []


class TestRT011SinkDiscipline:
    SWEEP_PATH = "src/repro/exec/sweep.py"
    BATCH_PATH = "src/repro/sim/batch.py"
    ELSEWHERE = "src/repro/exec/sim.py"

    def test_bare_construction_flagged(self):
        source = (
            "def trace_all(systems):\n"
            "    sink = MemorySink()\n"
            "    return sink\n"
        )
        diags = lint_source(source, self.SWEEP_PATH)
        assert "RT011" in codes(diags)
        assert "MemorySink" in diags[0].message

    def test_attribute_construction_flagged(self):
        source = (
            "from repro.sim import trace\n\n"
            "def armed():\n"
            "    return trace.MemorySink()\n"
        )
        assert "RT011" in codes(lint_source(source, self.BATCH_PATH))

    def test_bounded_and_streaming_sinks_are_allowed(self):
        source = (
            "def armed(path):\n"
            "    ring = RingSink(512)\n"
            "    stream = JsonlSink(path)\n"
            "    return ring, stream\n"
        )
        assert lint_source(source, self.SWEEP_PATH) == []

    def test_passing_a_sink_in_is_allowed(self):
        source = (
            "def run_chunk(systems, sink):\n"
            "    for ts in systems:\n"
            "        sink.emit(ts)\n"
        )
        assert lint_source(source, self.SWEEP_PATH) == []

    def test_modules_outside_population_stack_are_exempt(self):
        source = (
            "def one_system():\n"
            "    return MemorySink()\n"
        )
        assert lint_source(source, self.ELSEWHERE) == []


class TestDriver:
    def test_syntax_error_becomes_diagnostic(self):
        diags = lint_source("def broken(:\n", "oops.py")
        assert codes(diags) == ["RT000"]
        assert diags[0].severity is Severity.ERROR

    def test_code_selection(self):
        source = "import random\n\ndef f(period):\n    return period / 2 + random.random()\n"
        only_rt003 = lint_source(source, "x.py", codes=["RT003"])
        assert codes(only_rt003) == ["RT003"]

    def test_bare_noqa_suppresses_everything(self):
        diags = lint(
            "import random\n\ndef f():\n    return random.random()  # noqa\n"
        )
        assert diags == []

    def test_rules_have_unique_stable_codes(self):
        from repro.analysis import all_rules

        rules = all_rules()
        assert [r.code for r in rules] == sorted(r.code for r in rules)
        assert {
            "RT001", "RT002", "RT003", "RT004", "RT005", "RT006", "RT007",
            "RT008", "RT009", "RT010", "RT011",
        } <= {r.code for r in rules}
        for rule in rules:
            assert rule.name and rule.description


@pytest.mark.parametrize(
    "snippet",
    [
        # Idioms used across the real tree that must stay clean.
        "def f(t):\n    return t.cost / t.period\n",
        "def f(taskset):\n    return sum(t.cost // t.period for t in taskset)\n",
        "def f(ticks, unit):\n    return ticks / unit\n",
        "import random\n\ndef f(s):\n    rng = random.Random(s)\n    return rng.random()\n",
    ],
)
def test_sanctioned_idioms_stay_clean(snippet):
    assert lint(snippet) == []
