"""Property-based tests for the analysis layer (hypothesis).

These check the invariants listed in DESIGN.md §5 over randomly drawn
task systems rather than hand-picked examples.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, assume, given, settings

from repro.core.allowance import equitable_allowance, task_allowance
from repro.core.bounds import hyperbolic_test
from repro.core.feasibility import (
    LoadTest,
    is_feasible,
    job_response_times,
    load_test,
    response_time_constrained,
    wc_response_time,
)
from repro.core.priority_assignment import rate_monotonic
from repro.core.task import Task, TaskSet


@st.composite
def tasksets(
    draw,
    max_tasks: int = 5,
    max_period: int = 30,
    constrained: bool | None = None,
) -> TaskSet:
    """Random task sets with distinct priorities and small periods.

    Sets whose load exceeds 0.95 are discarded: in the sliver between
    0.95 and 1 the synchronous busy period can span more jobs than the
    analysis budget (astronomical hyperperiods), where the analysis
    deliberately reports 'unschedulable' instead of grinding — exact
    behaviour at U <= 0.95 plus dedicated unit tests at U == 1
    (harmonic) cover the semantics these properties check.
    """
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        period = draw(st.integers(2, max_period))
        cost = draw(st.integers(1, period))
        if constrained is True:
            deadline = draw(st.integers(cost, period))
        elif constrained is False:
            deadline = draw(st.integers(cost, 3 * period))
        else:
            deadline = draw(st.integers(cost, 2 * period))
        tasks.append(
            Task(
                name=f"t{i}",
                cost=cost,
                period=period,
                deadline=deadline,
                priority=n - i,
            )
        )
    ts = TaskSet(tasks)
    assume(ts.utilization <= 0.95 or ts.utilization > 1.0)
    return ts


@st.composite
def implicit_rm_tasksets(draw, max_tasks: int = 5, max_period: int = 30) -> TaskSet:
    """Implicit-deadline sets with rate-monotonic priorities."""
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        period = draw(st.integers(2, max_period))
        cost = draw(st.integers(1, period))
        tasks.append(Task(name=f"t{i}", cost=cost, period=period, priority=1))
    return rate_monotonic(tasks)


class TestLoadAndFeasibility:
    @given(tasksets())
    def test_overload_implies_load_rejection(self, ts):
        if ts.utilization > 1.0000001:
            assert load_test(ts) is LoadTest.INFEASIBLE

    @given(tasksets())
    def test_feasible_implies_load_at_most_one(self, ts):
        if is_feasible(ts):
            num, den = ts.utilization_exact()
            assert num <= den

    @given(tasksets())
    def test_wcrt_at_least_cost(self, ts):
        for t in ts:
            r = wc_response_time(t, ts)
            if r is not None:
                assert r >= t.cost

    @given(tasksets())
    def test_highest_priority_wcrt_is_cost(self, ts):
        top = ts.tasks[0]
        # Only when the top priority is strict (no equal-priority peer).
        peers = [t for t in ts if t.priority == top.priority]
        assume(len(peers) == 1)
        assert wc_response_time(top, ts) == top.cost


class TestGeneralVsConstrained:
    @given(tasksets(constrained=True))
    def test_figure2_matches_classic_rta_when_first_job_dominates(self, ts):
        for t in ts:
            r0 = response_time_constrained(t, ts)
            if r0 is not None and r0 <= t.period:
                assert wc_response_time(t, ts) == r0

    @given(tasksets())
    def test_general_wcrt_at_least_first_job(self, ts):
        for t in ts:
            r = wc_response_time(t, ts)
            r0 = response_time_constrained(t, ts)
            if r is not None and r0 is not None:
                assert r >= r0

    @given(tasksets(constrained=False))
    def test_series_max_equals_wcrt(self, ts):
        for t in ts:
            r = wc_response_time(t, ts)
            if r is None:
                continue
            series = job_response_times(t, ts)
            assert series and max(series) == r


class TestMonotonicity:
    @given(tasksets(), st.integers(1, 5))
    def test_wcrt_monotone_in_cost(self, ts, extra):
        # Inflating the highest-priority task's cost must not decrease
        # any bounded WCRT.
        top = ts.tasks[0]
        try:
            inflated = ts.with_costs({top.name: top.cost + extra})
        except ValueError:
            assume(False)
        for t in ts:
            before = wc_response_time(t, ts)
            after = wc_response_time(inflated[t.name], inflated)
            if before is not None and after is not None:
                assert after >= before

    @given(tasksets())
    def test_removing_a_task_never_hurts(self, ts):
        assume(len(ts) >= 2)
        victim = ts.tasks[0].name
        reduced = ts.without(victim)
        for t in reduced:
            before = wc_response_time(ts[t.name], ts)
            after = wc_response_time(t, reduced)
            if before is not None:
                assert after is not None and after <= before


class TestBoundsConsistency:
    @given(implicit_rm_tasksets())
    @settings(max_examples=60)
    def test_hyperbolic_sufficiency(self, ts):
        if hyperbolic_test(ts):
            assert is_feasible(ts)


@st.composite
def slack_tasksets(draw, max_tasks: int = 4, max_period: int = 30) -> TaskSet:
    """Task sets with per-task utilization bounded so feasibility is
    the common case (the allowance properties need feasible inputs and
    should not burn the hypothesis budget on rejections)."""
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        period = draw(st.integers(4, max_period))
        cost = draw(st.integers(1, max(1, period // (2 * n))))
        deadline = draw(st.integers(cost, period))
        tasks.append(
            Task(name=f"t{i}", cost=cost, period=period, deadline=deadline, priority=n - i)
        )
    return TaskSet(tasks)


_allowance_settings = settings(
    max_examples=60, suppress_health_check=[HealthCheck.filter_too_much]
)


class TestAllowanceProperties:
    @given(slack_tasksets())
    @_allowance_settings
    def test_equitable_allowance_maximal(self, ts):
        assume(is_feasible(ts))
        a = equitable_allowance(ts)
        assert is_feasible(ts.inflated(a))
        try:
            worse = ts.inflated(a + 1)
        except ValueError:
            return  # a + 1 not even constructible: certainly infeasible
        assert not is_feasible(worse)

    @given(slack_tasksets())
    @_allowance_settings
    def test_task_allowance_at_least_equitable(self, ts):
        assume(is_feasible(ts))
        eq = equitable_allowance(ts)
        for t in ts:
            assert task_allowance(ts, t.name) >= eq

    @given(slack_tasksets())
    @_allowance_settings
    def test_task_allowance_maximal(self, ts):
        assume(is_feasible(ts))
        t = ts.tasks[-1]
        a = task_allowance(ts, t.name)
        assert is_feasible(ts.with_costs({t.name: t.cost + a}))
        try:
            worse = ts.with_costs({t.name: t.cost + a + 1})
        except ValueError:
            return
        assert not is_feasible(worse)
