"""Precedence constraints — §7 future work.

"We have considered neither the issues related to precedence
constraints..."  This module adds them in the classic uniprocessor
form: tasks grouped into *transactions* released periodically, with a
DAG of precedence edges inside each transaction (a successor's job may
only start once all its predecessors' jobs of the same index have
completed).

Analysis follows the holistic approach (Tindell & Clark) specialised to
one processor: processing tasks in topological order, a successor
inherits a *release jitter* equal to the latest worst-case completion
among its predecessors (measured from the transaction release), and its
own completion bound is the jitter-aware response time.  The bound for
a *sink* task is the end-to-end latency bound of its chains.

All tasks joined by precedence edges must share a period (they belong
to one transaction) and have constrained deadlines (the jitter
analysis' domain).  The runtime counterpart — successor releases
triggered by actual predecessor completions — is
:class:`repro.sim.chains.ChainSimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.jitter import response_time_with_jitter
from repro.core.task import TaskSet

__all__ = ["PrecedenceGraph", "holistic_response_times", "end_to_end_bound"]


@dataclass
class PrecedenceGraph:
    """A DAG of precedence edges over a task set."""

    taskset: TaskSet
    edges: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(t.name for t in self.taskset)
        for before, after in self.edges:
            if before not in self.taskset or after not in self.taskset:
                raise ValueError(f"edge ({before!r}, {after!r}) references unknown task")
            if self.taskset[before].period != self.taskset[after].period:
                raise ValueError(
                    f"precedence-linked tasks {before!r} and {after!r} must "
                    "share a period (one transaction)"
                )
            self._graph.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise ValueError(f"precedence cycle: {cycle}")

    # -- structure -------------------------------------------------------------
    def predecessors(self, name: str) -> list[str]:
        return sorted(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return sorted(self._graph.successors(name))

    def roots(self) -> list[str]:
        """Tasks with no predecessor (released by the clock)."""
        return sorted(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    def sinks(self) -> list[str]:
        """Tasks with no successor (transaction outputs)."""
        return sorted(n for n in self._graph.nodes if self._graph.out_degree(n) == 0)

    def topological_order(self) -> list[str]:
        return list(nx.lexicographical_topological_sort(self._graph))

    def chains(self) -> list[list[str]]:
        """All root-to-sink paths (the transaction's chains)."""
        out: list[list[str]] = []
        for root in self.roots():
            for sink in self.sinks():
                if root == sink:
                    if self._graph.degree(root) == 0:
                        out.append([root])
                    continue
                out.extend(nx.all_simple_paths(self._graph, root, sink))
        return out


def holistic_response_times(graph: PrecedenceGraph) -> dict[str, int | None]:
    """Worst-case *completion* time of each task, measured from its
    transaction release.

    Topological sweep: a task's inherited jitter is the max completion
    bound among its predecessors; its own bound is the jitter-aware
    WCRT (which already includes the inherited jitter).  ``None``
    propagates: an unbounded predecessor makes every successor
    unbounded.
    """
    ts = graph.taskset
    jitter: dict[str, int] = {}
    completion: dict[str, int | None] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        inherited = 0
        dead = False
        for p in preds:
            bound = completion[p]
            if bound is None:
                dead = True
                break
            inherited = max(inherited, bound)
        if dead:
            completion[name] = None
            continue
        jitter[name] = inherited
        completion[name] = response_time_with_jitter(ts[name], ts, jitter)
    return completion


def end_to_end_bound(graph: PrecedenceGraph, chain: list[str]) -> int | None:
    """Latency bound of *chain* (root release -> sink completion): the
    sink's holistic completion bound."""
    if not chain:
        raise ValueError("chain must be non-empty")
    completions = holistic_response_times(graph)
    return completions[chain[-1]]
