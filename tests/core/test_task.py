"""Unit tests for the task model."""

import pytest

from repro.core.task import Task, TaskSet, hyperperiod
from repro.units import ms


def make(name="t", cost=1, period=10, priority=1, **kw) -> Task:
    return Task(name=name, cost=cost, period=period, priority=priority, **kw)


class TestTask:
    def test_deadline_defaults_to_period(self):
        t = make(period=10)
        assert t.deadline == 10

    def test_explicit_deadline(self):
        t = make(period=10, deadline=7)
        assert t.deadline == 7

    def test_deadline_may_exceed_period(self):
        t = make(period=10, deadline=25)
        assert t.deadline == 25
        assert not t.constrained

    def test_constrained_flag(self):
        assert make(period=10, deadline=10).constrained
        assert make(period=10, deadline=4).constrained

    def test_utilization(self):
        assert make(cost=3, period=12).utilization == pytest.approx(0.25)

    @pytest.mark.parametrize("field,value", [
        ("cost", 0),
        ("cost", -1),
        ("period", 0),
        ("period", -5),
        ("deadline", 0),
        ("offset", -1),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(name="t", cost=1, period=10, priority=1)
        kwargs[field] = value
        with pytest.raises(ValueError):
            Task(**kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make(name="")

    def test_cost_exceeding_deadline_and_period_rejected(self):
        with pytest.raises(ValueError):
            Task(name="t", cost=20, period=10, deadline=10, priority=1)

    def test_cost_above_period_but_below_deadline_allowed(self):
        # Arbitrary-deadline tasks may legitimately have C > T... no:
        # C > T makes U > 1 by itself; but C <= D keeps the object
        # constructible so the *analysis* can report infeasibility.
        t = Task(name="t", cost=12, period=10, deadline=30, priority=1)
        assert t.utilization > 1

    def test_release_times(self):
        t = make(period=10, offset=3)
        assert [t.release_time(k) for k in range(3)] == [3, 13, 23]

    def test_absolute_deadline(self):
        t = make(period=10, deadline=7, offset=3)
        assert t.absolute_deadline(2) == 3 + 20 + 7

    def test_release_time_negative_job_rejected(self):
        with pytest.raises(ValueError):
            make().release_time(-1)

    def test_with_cost(self):
        t = make(cost=5)
        t2 = t.with_cost(8)
        assert t2.cost == 8 and t.cost == 5
        assert t2.name == t.name and t2.period == t.period

    def test_frozen(self):
        t = make()
        with pytest.raises(AttributeError):
            t.cost = 99  # type: ignore[misc]


class TestTaskSet:
    def test_sorted_by_decreasing_priority(self):
        ts = TaskSet([make("a", priority=1), make("b", priority=9), make("c", priority=5)])
        assert [t.name for t in ts] == ["b", "c", "a"]

    def test_stable_order_for_equal_priorities(self):
        ts = TaskSet([make("a", priority=3), make("b", priority=3)])
        assert [t.name for t in ts] == ["a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([make("a"), make("a", priority=2)])

    def test_lookup_by_name_and_index(self):
        ts = TaskSet([make("a", priority=1), make("b", priority=2)])
        assert ts["a"].name == "a"
        assert ts[0].name == "b"  # highest priority first
        assert "a" in ts and ts["a"] in ts
        assert "zz" not in ts

    def test_len_and_iteration(self):
        ts = TaskSet([make("a"), make("b", priority=2)])
        assert len(ts) == 2
        assert {t.name for t in ts} == {"a", "b"}

    def test_utilization(self):
        ts = TaskSet([make("a", cost=1, period=4), make("b", cost=1, period=4, priority=2)])
        assert ts.utilization == pytest.approx(0.5)

    def test_utilization_exact_no_float_error(self):
        ts = TaskSet(
            [make(f"t{i}", cost=1, period=3, priority=i + 1) for i in range(3)]
        )
        num, den = ts.utilization_exact()
        assert (num, den) == (1, 1)  # exactly 1, not 0.9999...

    def test_higher_or_equal_priority_excludes_self(self):
        a, b, c = make("a", priority=5), make("b", priority=5), make("c", priority=1)
        ts = TaskSet([a, b, c])
        assert {t.name for t in ts.higher_or_equal_priority(ts["a"])} == {"b"}
        assert {t.name for t in ts.higher_or_equal_priority(ts["c"])} == {"a", "b"}

    def test_lower_priority(self):
        ts = TaskSet([make("a", priority=5), make("b", priority=1)])
        assert [t.name for t in ts.lower_priority(ts["a"])] == ["b"]
        assert ts.lower_priority(ts["b"]) == ()

    def test_hyperperiod(self):
        ts = TaskSet([make("a", period=4), make("b", period=6, priority=2)])
        assert ts.hyperperiod() == 12
        assert hyperperiod([]) == 1

    def test_with_task_and_without(self):
        ts = TaskSet([make("a")])
        ts2 = ts.with_task(make("b", priority=2))
        assert len(ts2) == 2 and len(ts) == 1
        ts3 = ts2.without("a")
        assert [t.name for t in ts3] == ["b"]
        with pytest.raises(KeyError):
            ts3.without("a")

    def test_with_costs(self):
        ts = TaskSet([make("a", cost=2), make("b", cost=3, priority=2)])
        ts2 = ts.with_costs({"a": 7})
        assert ts2["a"].cost == 7 and ts2["b"].cost == 3
        with pytest.raises(KeyError):
            ts.with_costs({"nope": 1})

    def test_inflated(self):
        ts = TaskSet([make("a", cost=2), make("b", cost=3, priority=2)])
        ts2 = ts.inflated(5)
        assert ts2["a"].cost == 7 and ts2["b"].cost == 8
        with pytest.raises(ValueError):
            ts.inflated(-1)

    def test_equality_and_hash(self):
        ts1 = TaskSet([make("a"), make("b", priority=2)])
        ts2 = TaskSet([make("b", priority=2), make("a")])
        assert ts1 == ts2  # order normalised by priority
        assert hash(ts1) == hash(ts2)

    def test_paper_table2_shape(self):
        from repro.workloads.scenarios import paper_table2

        ts = paper_table2()
        assert [t.name for t in ts] == ["tau1", "tau2", "tau3"]
        assert ts.utilization == pytest.approx(
            29 / 200 + 29 / 250 + 29 / 1500
        )
        assert ts["tau3"].deadline == ms(120)
