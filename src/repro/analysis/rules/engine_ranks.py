"""RT005 — event ranks are named, never raw integers.

The engine resolves simultaneous events by rank (completion < stop <
deadline-check < detector < release < user); the paper's inclusive
deadline semantics depend on that exact order.  A call like
``engine.schedule(t, cb, 2)`` silently encodes "deadline check" — and
silently breaks if :class:`repro.sim.engine.Rank` is ever reordered.
Call sites must name the rank (``Rank.DEADLINE_CHECK``).
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Rule, register

__all__ = ["RawIntegerRank"]

#: Methods of :class:`repro.sim.engine.Engine` that take a rank.
_SCHEDULE_METHODS = frozenset({"schedule", "schedule_in"})
#: Position of the ``rank`` parameter (after time/delay and action).
_RANK_POSITION = 2


@register
class RawIntegerRank(Rule):
    """RT005: ``Engine.schedule(...)`` with a raw integer rank."""

    code = "RT005"
    name = "raw-integer-rank"
    description = (
        "Scheduling with a numeric rank literal instead of a Rank "
        "constant hides the tie-break semantics and breaks if ranks are "
        "renumbered."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCHEDULE_METHODS
        ):
            rank_arg: ast.expr | None = None
            if len(node.args) > _RANK_POSITION:
                rank_arg = node.args[_RANK_POSITION]
            for kw in node.keywords:
                if kw.arg == "rank":
                    rank_arg = kw.value
            if (
                rank_arg is not None
                and isinstance(rank_arg, ast.Constant)
                and type(rank_arg.value) is int
            ):
                self.report(
                    rank_arg,
                    f"raw integer rank {rank_arg.value} passed to "
                    f"{node.func.attr}()",
                    hint="use a repro.sim.engine.Rank constant "
                    "(Rank.COMPLETION/STOP/DEADLINE_CHECK/DETECTOR/"
                    "RELEASE/USER)",
                )
        self.generic_visit(node)
