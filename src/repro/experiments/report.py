"""Machine-generated paper-vs-measured report.

:func:`generate_report` reruns every exhibit and renders a Markdown
summary with each claim's verdict — the live counterpart of the
hand-written EXPERIMENTS.md (useful after modifying the analysis or the
simulator: ``python -m repro.experiments report > report.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper import all_experiments

__all__ = ["ReportEntry", "generate_entries", "generate_report"]


@dataclass(frozen=True)
class ReportEntry:
    """One exhibit's verdict."""

    name: str
    claims_total: int
    claims_holding: int
    rendering: str

    @property
    def ok(self) -> bool:
        return self.claims_holding == self.claims_total


def generate_entries() -> list[ReportEntry]:
    """Run every registered experiment and collect verdicts."""
    entries = []
    for name, factory in all_experiments().items():
        result = factory()
        claims = result.claims()
        entries.append(
            ReportEntry(
                name=name,
                claims_total=len(claims),
                claims_holding=sum(1 for c in claims if c.holds),
                rendering=result.render(),
            )
        )
    return entries


def generate_report(*, include_renderings: bool = True) -> str:
    """The full Markdown report."""
    entries = generate_entries()
    lines = [
        "# Reproduction report — Fault Tolerance with Real-Time Java",
        "",
        "| exhibit | claims | verdict |",
        "|---|---|---|",
    ]
    for e in entries:
        verdict = "all hold" if e.ok else f"{e.claims_holding}/{e.claims_total} hold"
        lines.append(f"| {e.name} | {e.claims_total} | {verdict} |")
    total = sum(e.claims_total for e in entries)
    holding = sum(e.claims_holding for e in entries)
    lines.append("")
    lines.append(f"**{holding}/{total} paper claims reproduced.**")
    if include_renderings:
        for e in entries:
            lines.append("")
            lines.append(f"## {e.name}")
            lines.append("")
            lines.append("```")
            lines.append(e.rendering)
            lines.append("```")
    return "\n".join(lines) + "\n"
