"""Generic scenario runner.

Ties together the scenario parser (tool #1), the simulator and the
metrics: "It builds and runs the tasks automatically."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.treatments import TreatmentKind
from repro.experiments.metrics import RunMetrics, compute_metrics
from repro.sim.simulation import SimResult, simulate
from repro.sim.vm import EXACT_VM, VMProfile
from repro.workloads.parser import Scenario

__all__ = ["RunOutcome", "run_scenario"]


@dataclass(frozen=True)
class RunOutcome:
    """A simulation result with its metrics."""

    result: SimResult
    metrics: RunMetrics


def run_scenario(
    scenario: Scenario,
    *,
    vm: VMProfile = EXACT_VM,
    treatment: TreatmentKind | None = None,
) -> RunOutcome:
    """Simulate *scenario* and summarise it.

    *treatment* overrides the scenario's ``@treatment`` directive when
    given (handy for comparing policies on one file).
    """
    chosen = treatment if treatment is not None else scenario.treatment
    result = simulate(
        scenario.taskset,
        horizon=scenario.horizon_or_default(),
        faults=scenario.faults,
        treatment=chosen,
        vm=vm,
    )
    return RunOutcome(result=result, metrics=compute_metrics(result))
