"""Incremental flow-analysis store — the exec-cache idiom, per file.

Whole-program analysis re-reads every module, but almost nothing
changes between runs; re-parsing ~70 files to re-check one edit is the
kind of friction that gets a checker turned off.  The cache keys each
module's :class:`~repro.analysis.flow.model.ModuleSummary` by the
file's **content hash** (CRC-32, exactly like
:func:`repro.exec.cache.code_version` fingerprints source bytes), so:

* a *touched-but-unchanged* file is a hit — nothing is re-parsed;
* any byte change (even a comment) re-extracts just that file;
* a :data:`FORMAT_VERSION` bump — whenever the summary schema or the
  extraction semantics change — invalidates the whole store at once,
  so a stale summary can never feed the rules.

Rule evaluation itself always re-runs over the (mostly cached)
summaries: findings are global properties and the propagation fixpoint
is cheap next to parsing.  :attr:`FlowCache.stats` reports hits/misses
for the CLI note and for the incrementality test in
``tests/analysis/test_flow_cache.py``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.flow.model import ModuleSummary

__all__ = ["DEFAULT_FLOW_CACHE_DIR", "FlowCacheStats", "FlowCache", "FORMAT_VERSION"]

#: Default store location (sibling of the exec result cache).
DEFAULT_FLOW_CACHE_DIR = ".repro-cache/flow"

#: Bump on any change to ModuleSummary/FunctionInfo/TaintVal shape or
#: to extraction semantics — stale summaries must never survive.
FORMAT_VERSION = 1


@dataclass
class FlowCacheStats:
    """Per-run counters: summaries reused vs files re-analyzed."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


class FlowCache:
    """Pickled ``{path: (content_hash, ModuleSummary)}`` store.

    Satisfies the ``lookup``/``store`` protocol
    :func:`repro.analysis.flow.model.build_model` accepts.  Unreadable
    or version-skewed stores degrade to an empty cache (all misses),
    never to stale summaries.
    """

    def __init__(self, root: str | Path = DEFAULT_FLOW_CACHE_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "summaries.pkl"
        self.stats = FlowCacheStats()
        self._entries: dict[str, tuple[str, ModuleSummary]] = self._load()
        self._dirty = False

    def _load(self) -> dict[str, tuple[str, ModuleSummary]]:
        try:
            with self.path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    def lookup(self, path: str, digest: str) -> ModuleSummary | None:
        """The cached summary for *path* at *digest*, or None (a miss)."""
        entry = self._entries.get(str(Path(path).resolve()))
        if entry is not None and entry[0] == digest:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        return None

    def store(self, path: str, digest: str, summary: ModuleSummary) -> None:
        self._entries[str(Path(path).resolve())] = (digest, summary)
        self.stats.stores += 1
        self._dirty = True

    def save(self) -> None:
        """Persist the store (atomic write); no-op when unchanged."""
        if not self._dirty:
            return
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(
                {"version": FORMAT_VERSION, "entries": self._entries},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        tmp.replace(self.path)
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)
