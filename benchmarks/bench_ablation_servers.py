"""Ablation: aperiodic service — polling server vs its bounds.

The §7 "aperiodic tasks" axis quantified: simulated aperiodic
responses stay within the analytic polling bound, the periodic tasks
stay within their WCRTs regardless of aperiodic pressure, and the
deferrable analysis charges lower tasks the back-to-back penalty.
"""

from repro.core.feasibility import analyze
from repro.core.servers import (
    ServerSpec,
    deferrable_response_times,
    polling_response_bound,
    polling_server_taskset,
    server_sizing,
)
from repro.core.task import Task, TaskSet
from repro.sim.servers import AperiodicRequest, simulate_with_server


def periodic() -> TaskSet:
    return TaskSet(
        [
            Task("ctrl", cost=2, period=10, priority=10),
            Task("log", cost=6, period=30, deadline=28, priority=2),
        ]
    )


SERVER = ServerSpec(name="srv", capacity=3, period=15, priority=5)


def test_aperiodic_responses_within_bound(benchmark):
    reqs = [AperiodicRequest(f"r{i}", arrival=i * 37, demand=2 + (i % 3)) for i in range(12)]

    def run():
        return simulate_with_server(periodic(), SERVER, list(reqs), horizon=1000)

    result, served = benchmark(run)
    assert result.missed() == []
    for r in served:
        if r.response_time is None:
            continue
        bound = polling_response_bound(r.demand, SERVER, periodic())
        assert r.response_time <= bound


def test_periodic_tasks_immune_to_aperiodic_pressure(benchmark):
    # A flood of aperiodic work: the server's budget fences it off.
    reqs = [AperiodicRequest(f"r{i}", arrival=i, demand=50) for i in range(5)]

    def run():
        return simulate_with_server(periodic(), SERVER, list(reqs), horizon=1000)

    result, _ = benchmark(run)
    assert result.missed() == []
    report = analyze(polling_server_taskset(periodic(), SERVER))
    for t in periodic():
        assert result.max_response_time(t.name) <= report.wcrt(t.name)


def test_deferrable_penalty_on_low_priority(benchmark):
    def run():
        ps = analyze(polling_server_taskset(periodic(), SERVER))
        ds = deferrable_response_times(periodic(), SERVER)
        return ps.wcrt("log"), ds["log"]

    ps_log, ds_log = benchmark(run)
    assert ds_log > ps_log  # back-to-back jitter penalty


def test_server_sizing_search(benchmark):
    spec = benchmark(server_sizing, periodic(), 15, 5)
    assert spec is not None and spec.capacity > 0
    # Maximality: one more nanosecond of budget breaks the set.
    from repro.core.feasibility import is_feasible

    bigger = ServerSpec("server", capacity=spec.capacity + 1, period=15, priority=5)
    assert not is_feasible(polling_server_taskset(periodic(), bigger))
