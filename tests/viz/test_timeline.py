"""Unit tests for the ASCII timeline renderer (tool #2)."""

import pytest

from repro.core.treatments import TreatmentKind
from repro.sim.simulation import simulate
from repro.units import ms
from repro.viz.timeline import LEGEND, TimelineOptions, render_timeline
from repro.workloads.scenarios import (
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
)


@pytest.fixture(scope="module")
def fig7_result():
    return simulate(
        paper_figures_taskset(),
        horizon=paper_horizon(),
        faults=paper_fault(),
        treatment=TreatmentKind.SYSTEM_ALLOWANCE,
    )


class TestRendering:
    def test_contains_all_tasks_and_legend(self, fig7_result):
        out = render_timeline(fig7_result)
        for name in ("tau1", "tau2", "tau3"):
            assert name in out
        assert LEGEND.split(":")[0] in out

    def test_window_header(self, fig7_result):
        out = render_timeline(
            fig7_result, TimelineOptions(start=ms(950), end=ms(1200))
        )
        assert "950..1200 ms" in out

    def test_stop_marker_present(self, fig7_result):
        out = render_timeline(
            fig7_result, TimelineOptions(start=ms(950), end=ms(1200))
        )
        assert "X" in out

    def test_detector_marker_present(self, fig7_result):
        out = render_timeline(
            fig7_result, TimelineOptions(start=ms(950), end=ms(1200))
        )
        assert "D" in out

    def test_deadline_miss_marker(self):
        res = simulate(
            paper_figures_taskset(),
            horizon=paper_horizon(),
            faults=paper_fault(),
        )
        out = render_timeline(res, TimelineOptions(start=ms(950), end=ms(1200)))
        assert "!" in out  # tau3's miss

    def test_threshold_chevrons(self, fig7_result):
        out = render_timeline(
            fig7_result,
            TimelineOptions(start=ms(950), end=ms(1200)),
            thresholds={"tau1": ms(62)},
        )
        assert ">" in out

    def test_no_legend_option(self, fig7_result):
        out = render_timeline(fig7_result, TimelineOptions(show_legend=False))
        assert "legend" not in out

    def test_invalid_window(self, fig7_result):
        with pytest.raises(ValueError):
            render_timeline(fig7_result, TimelineOptions(start=10, end=10))

    def test_line_lengths_bounded(self, fig7_result):
        opts = TimelineOptions(start=ms(950), end=ms(1200), width=80)
        out = render_timeline(fig7_result, opts)
        label_w = max(len("tau1"), len("tau2"), len("tau3")) + 2
        for line in out.splitlines()[1:-1]:
            assert len(line) <= label_w + 80 + 10

    def test_events_outside_window_ignored(self, fig7_result):
        # A narrow window before the fault: no stop marker (ignore the
        # legend line, which spells out the symbol).
        out = render_timeline(
            fig7_result, TimelineOptions(start=0, end=ms(100), show_legend=False)
        )
        assert "X" not in out
