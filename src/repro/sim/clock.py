"""Cycle-counter (RDTSC) emulation — paper §5.

The paper obtains nanosecond-precision timestamps by reading the Intel
``RDTSC`` instruction through a small JNI library: the counter holds the
number of CPU cycles since machine start-up, converted to durations via
the clock frequency (2 GHz in their setup).

In the simulator the clock is already exact, but the measurement layer
keeps the same shape: :class:`CycleCounter` converts simulation time to
cycles and back, and :class:`TimestampLog` mirrors the paper's
``StringBuffer`` buffering ("we write these times in StringBuffer fields
in order not to slow down the system with in-out operations") — samples
accumulate in memory and are rendered once at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CycleCounter", "TimestampLog"]


@dataclass(frozen=True)
class CycleCounter:
    """Convert between nanoseconds and CPU cycles at *frequency_hz*.

    The paper's machine is a 2 GHz Pentium 4: 2 cycles per nanosecond.
    Conversions round down, as a real TSC read would quantise.
    """

    frequency_hz: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be > 0")

    def cycles_at(self, time_ns: int) -> int:
        """TSC value at simulation time *time_ns*."""
        if time_ns < 0:
            raise ValueError("time must be >= 0")
        return time_ns * self.frequency_hz // 1_000_000_000

    def ns_of(self, cycles: int) -> int:
        """Duration in nanoseconds of *cycles* cycles."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        return cycles * 1_000_000_000 // self.frequency_hz


@dataclass
class TimestampLog:
    """In-memory timestamp buffer, flushed to text on demand.

    Each sample is ``(label, cycles)``; :meth:`render` produces the
    log-file format the paper's chart tool would parse.
    """

    counter: CycleCounter = field(default_factory=CycleCounter)
    samples: list[tuple[str, int]] = field(default_factory=list)

    def stamp(self, label: str, time_ns: int) -> None:
        """Record *label* at simulation time *time_ns* (stored in cycles,
        as the paper's JNI layer does)."""
        self.samples.append((label, self.counter.cycles_at(time_ns)))

    def render(self) -> str:
        """One ``label cycles ns`` line per sample."""
        return "\n".join(
            f"{label} {cycles} {self.counter.ns_of(cycles)}"
            for label, cycles in self.samples
        )

    def __len__(self) -> int:
        return len(self.samples)
