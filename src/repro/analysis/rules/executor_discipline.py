"""RT006 — the experiments layer must not call the simulator directly.

The executor refactor split the experiment stack into three layers
(DESIGN.md §"Spec / executor / presentation"): declarative specs,
cache-aware executors, and presentation code that *consumes* executor
results.  The whole scheme — content-addressed caching, run manifests,
serial/parallel parity — is only trustworthy if every simulation an
exhibit performs flows through :mod:`repro.exec.sim`, where the spec
hash covers the full configuration.

A ``simulate()`` or ``run_scenario()`` call inside
``src/repro/experiments/`` bypasses that bridge: its result is never
cached, never recorded in a manifest, and silently diverges from the
declarative spec for the same exhibit.  The sanctioned replacements are
:func:`repro.exec.sim.simulate_spec` (for spec-shaped runs) and
:func:`repro.exec.sim.run_simulation` (for concrete sweep internals).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import Rule, attr_call, register

__all__ = ["ExecutorDiscipline"]

#: Entry points the presentation layer must not call directly.
_FORBIDDEN = frozenset({"simulate", "run_scenario"})

_HINT = (
    "route simulations through repro.exec.sim (simulate_spec / "
    "run_simulation) so caching and manifests stay trustworthy"
)


def _in_experiments_layer(path: str) -> bool:
    return "repro/experiments/" in Path(path).as_posix()


@register
class ExecutorDiscipline(Rule):
    """RT006: direct simulator calls inside ``repro.experiments``."""

    code = "RT006"
    name = "executor-discipline"
    description = (
        "Experiment modules calling simulate()/run_scenario() directly "
        "bypass the execution layer: no caching, no manifest record, and "
        "the run can diverge from its declarative spec."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._active = _in_experiments_layer(ctx.path)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._active and node.module and node.module.startswith("repro.sim"):
            bad = sorted(
                item.asname or item.name
                for item in node.names
                if item.name in _FORBIDDEN
            )
            if bad:
                self.report(
                    node,
                    f"importing {', '.join(bad)} from {node.module} into an "
                    f"experiment module invites direct simulator calls",
                    hint=_HINT,
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._active:
            name = None
            if isinstance(node.func, ast.Name) and node.func.id in _FORBIDDEN:
                name = node.func.id
            else:
                base_attr = attr_call(node)
                if base_attr is not None and base_attr[1] in _FORBIDDEN:
                    name = f"{base_attr[0]}.{base_attr[1]}"
            if name is not None:
                self.report(
                    node,
                    f"{name}() called directly from the experiments layer",
                    hint=_HINT,
                )
        self.generic_visit(node)
