"""RT001/RT002 — integer-nanosecond time discipline.

The whole reproduction measures time the way the paper's RDTSC tooling
does: exact integer nanoseconds (:mod:`repro.units`).  Two things break
that silently:

* floats leaking into time arithmetic (RT001) — ``deadline * 0.5`` or
  ``period / 2`` produce a float that rounds differently from the
  paper's integer timeline;
* wall-clock reads (RT002) — ``time.time()`` inside simulated-time code
  couples results to the host machine, destroying replayability.

RT001 is heuristic (Python has no dimension types): an expression is
*time-valued* when a name/attribute in it uses one of the vocabulary
words the codebase reserves for durations and instants (``cost``,
``period``, ``deadline``, ``ticks`` …).  Ratios of two time values
(``cost / period`` — a dimensionless utilization) are allowed; division
of a time by anything else, and mixing a time with a float literal, are
flagged.  :mod:`repro.units` itself is exempt — it is the one sanctioned
float<->ns boundary.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import (
    Rule,
    attr_call,
    from_imports,
    module_aliases,
    register,
)

__all__ = ["FloatTimeArithmetic", "WallClock", "is_time_valued"]

#: Vocabulary reserved for time-valued names throughout the codebase.
TIME_WORDS = frozenset(
    {
        "time", "times", "cost", "costs", "period", "periods",
        "deadline", "deadlines", "offset", "offsets", "horizon",
        "release", "releases", "arrival", "arrivals", "interarrival",
        "wcet", "wcrt", "allowance", "ticks", "tick", "unit", "units",
        "duration", "durations", "delay", "delays", "capacity", "now",
        "elapsed", "latency", "budget", "overhead", "mit", "ns", "us",
        "ms", "hyperperiod",
    }
)

#: :mod:`repro.units` constructors — calls to these are time-valued.
UNIT_HELPERS = frozenset({"ns", "us", "ms", "seconds"})


def _words(identifier: str) -> set[str]:
    return set(identifier.lower().split("_"))


def is_time_valued(node: ast.AST) -> bool:
    """Best-effort: does *node* denote a duration/instant in ns?"""
    if isinstance(node, ast.Name):
        return bool(_words(node.id) & TIME_WORDS)
    if isinstance(node, ast.Attribute):
        return bool(_words(node.attr) & TIME_WORDS)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in UNIT_HELPERS or bool(_words(func.id) & TIME_WORDS)
        if isinstance(func, ast.Attribute):
            return bool(_words(func.attr) & TIME_WORDS)
        return False
    if isinstance(node, ast.BinOp):
        return is_time_valued(node.left) or is_time_valued(node.right)
    if isinstance(node, ast.UnaryOp):
        return is_time_valued(node.operand)
    if isinstance(node, ast.Subscript):
        return is_time_valued(node.value)
    return False


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is float


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expression>"


_HINT = (
    "keep times in integer nanoseconds: use repro.units helpers "
    "(ns/us/ms/seconds, parse_duration) or integer // arithmetic"
)


@register
class FloatTimeArithmetic(Rule):
    """RT001: raw float arithmetic on time-valued expressions."""

    code = "RT001"
    name = "float-time-arithmetic"
    description = (
        "Float arithmetic on a time-valued expression outside repro.units "
        "(true division by a non-time value, mixing with float literals, "
        "or float() conversion) loses integer-nanosecond exactness."
    )

    def run(self):
        if self.ctx.is_units_module:
            return self.diagnostics
        return super().run()

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            # time / time is a dimensionless ratio (utilization) — fine;
            # time / anything-else floats a duration.
            if is_time_valued(node.left) and not is_time_valued(node.right):
                self.report(
                    node,
                    f"true division floats the time value in "
                    f"{_describe(node)!r}",
                    hint=_HINT,
                )
        elif isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)):
            for a, b in ((node.left, node.right), (node.right, node.left)):
                if _is_float_literal(a) and is_time_valued(b):
                    self.report(
                        node,
                        f"float literal {a.value!r} combined with "
                        f"time-valued {_describe(b)!r}",
                        hint=_HINT,
                    )
                    break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
            and is_time_valued(node.args[0])
        ):
            self.report(
                node,
                f"float() conversion of time-valued {_describe(node.args[0])!r}",
                hint=_HINT,
            )
        self.generic_visit(node)


#: Wall-clock reads on the stdlib ``time`` module.
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
        "clock_gettime", "clock_gettime_ns", "sleep",
    }
)
#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register
class WallClock(Rule):
    """RT002: wall-clock calls inside simulated-time code."""

    code = "RT002"
    name = "wall-clock"
    description = (
        "Reading the host clock (time.time, time.monotonic, datetime.now, "
        "time.sleep, ...) couples results to the machine; simulated time "
        "comes only from Engine.now and the event trace."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._time_aliases = module_aliases(ctx.tree, "time")
        self._datetime_aliases = module_aliases(ctx.tree, "datetime")
        self._from_time = {
            local
            for local, orig in from_imports(ctx.tree, "time").items()
            if orig in _TIME_FUNCS
        }
        self._datetime_classes = {
            local
            for local, orig in from_imports(ctx.tree, "datetime").items()
            if orig in ("datetime", "date")
        }

    def visit_Call(self, node: ast.Call) -> None:
        base_attr = attr_call(node)
        if base_attr is not None:
            base, attr = base_attr
            if base in self._time_aliases and attr in _TIME_FUNCS:
                self.report(
                    node,
                    f"wall-clock call {base}.{attr}()",
                    hint="use the simulation clock (Engine.now) instead",
                )
            elif base in self._datetime_classes and attr in _DATETIME_FUNCS:
                self.report(
                    node,
                    f"wall-clock call {base}.{attr}()",
                    hint="use the simulation clock (Engine.now) instead",
                )
        elif isinstance(node.func, ast.Attribute):
            # datetime.datetime.now() — a two-level attribute chain.
            func = node.func
            if (
                func.attr in _DATETIME_FUNCS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in ("datetime", "date")
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in self._datetime_aliases
            ):
                self.report(
                    node,
                    f"wall-clock call "
                    f"{func.value.value.id}.{func.value.attr}.{func.attr}()",
                    hint="use the simulation clock (Engine.now) instead",
                )
        elif isinstance(node.func, ast.Name) and node.func.id in self._from_time:
            self.report(
                node,
                f"wall-clock call {node.func.id}() (imported from time)",
                hint="use the simulation clock (Engine.now) instead",
            )
        self.generic_visit(node)
