"""Tracing-overhead benchmark: what does the sink branch cost?

The observability layer added a streaming-sink branch to
``Trace.record`` — the simulator's hottest write path.  The contract is
that tracing stays pay-as-you-go: with no sink attached (the default),
a simulation must run within 5% of the pre-sink implementation, which
``test_disabled_sink_overhead_under_5pct`` enforces against an
in-process reconstruction of the old ``record``.  The per-variant
benchmarks record what opting in costs (MemorySink duplication,
JsonlSink serialisation + file I/O) in ``BENCH_results.json``.
"""

import time

import pytest

from repro.sim import simulation as simulation_module
from repro.sim.simulation import simulate
from repro.sim.trace import MemorySink, Trace, TraceEvent
from repro.workloads.generator import GeneratorConfig, random_taskset

#: Best-of repeats for the overhead assertion (min absorbs host noise).
REPEATS = 5

HORIZON = 3_000_000


class _LegacyTrace(Trace):
    """The pre-observability ``Trace.record``: append, no sink branch."""

    def record(self, time, kind, task, job=-1, info=0):
        self._events.append(TraceEvent(time, kind, task, job, info))


@pytest.fixture(scope="module")
def workload():
    return random_taskset(
        GeneratorConfig(
            n=6,
            utilization=0.8,
            period_lo=1_000,
            period_hi=20_000,
            period_granularity=100,
            seed=13,
        )
    )


def _best_of(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter_ns()  # noqa: RT002 - host-side benchmark timing, not simulated time
        fn()
        dt = time.perf_counter_ns() - t0  # noqa: RT002 - host-side benchmark timing, not simulated time
        best = dt if best is None or dt < best else best
    return best


def test_legacy_trace_baseline(benchmark, workload, monkeypatch):
    monkeypatch.setattr(simulation_module, "Trace", _LegacyTrace)
    result = benchmark(lambda: simulate(workload, horizon=HORIZON))
    assert len(result.trace) > 1_000


def test_disabled_sink(benchmark, workload):
    result = benchmark(lambda: simulate(workload, horizon=HORIZON))
    assert result.trace.sink is None
    assert len(result.trace) > 1_000


def test_memory_sink(benchmark, workload):
    sink = MemorySink()
    result = benchmark(lambda: simulate(workload, horizon=HORIZON, trace_out=sink))
    assert len(sink.events) == len(result.trace)


def test_jsonl_sink(benchmark, workload, tmp_path):
    path = tmp_path / "trace.jsonl"
    result = benchmark(lambda: simulate(workload, horizon=HORIZON, trace_out=str(path)))
    assert path.stat().st_size > 0
    assert len(result.trace) > 1_000


def test_disabled_sink_overhead_under_5pct(workload, monkeypatch):
    """No sink attached must cost < 5% over the pre-sink record()."""
    run = lambda: simulate(workload, horizon=HORIZON)  # noqa: E731
    monkeypatch.setattr(simulation_module, "Trace", _LegacyTrace)
    legacy_ns = _best_of(run)
    monkeypatch.undo()
    current_ns = _best_of(run)
    assert current_ns <= legacy_ns * 105 // 100, (
        f"sink-disabled Trace.record overhead exceeds 5%: "
        f"legacy {legacy_ns} ns vs current {current_ns} ns"
    )
