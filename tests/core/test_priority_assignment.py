"""Unit tests for priority assignment policies."""

import pytest

from repro.core.feasibility import is_feasible
from repro.core.priority_assignment import (
    PriorityAssignmentError,
    audsley_opa,
    deadline_monotonic,
    rate_monotonic,
)
from repro.core.task import Task, TaskSet


def t(name, cost, period, deadline=-1):
    return Task(name=name, cost=cost, period=period, deadline=deadline, priority=1)


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        ts = rate_monotonic([t("slow", 1, 100), t("fast", 1, 10), t("mid", 1, 50)])
        assert [x.name for x in ts] == ["fast", "mid", "slow"]
        assert ts["fast"].priority > ts["mid"].priority > ts["slow"].priority

    def test_tie_broken_by_input_order(self):
        ts = rate_monotonic([t("a", 1, 10), t("b", 1, 10)])
        assert ts["a"].priority > ts["b"].priority

    def test_priorities_are_distinct(self):
        ts = rate_monotonic([t(f"x{i}", 1, 10 + i) for i in range(6)])
        priorities = [x.priority for x in ts]
        assert len(set(priorities)) == 6

    def test_input_priorities_ignored(self):
        tasks = [
            Task("a", cost=1, period=100, priority=99),
            Task("b", cost=1, period=10, priority=1),
        ]
        ts = rate_monotonic(tasks)
        assert ts["b"].priority > ts["a"].priority


class TestDeadlineMonotonic:
    def test_shorter_deadline_higher_priority(self):
        ts = deadline_monotonic([t("a", 1, 100, 80), t("b", 1, 50, 40), t("c", 1, 10)])
        assert [x.name for x in ts] == ["c", "b", "a"]

    def test_differs_from_rm_when_deadlines_invert(self):
        tasks = [t("short_p", 1, 10, 9), t("long_p", 1, 100, 5)]
        rm = rate_monotonic(tasks)
        dm = deadline_monotonic(tasks)
        assert rm[0].name == "short_p"
        assert dm[0].name == "long_p"

    def test_dm_optimal_for_constrained(self):
        # A set schedulable under DM.
        tasks = [t("a", 3, 20, 7), t("b", 3, 15, 9), t("c", 4, 20, 13)]
        assert is_feasible(deadline_monotonic(tasks))


class TestAudsleyOPA:
    def test_finds_feasible_assignment(self):
        tasks = [t("a", 3, 20, 7), t("b", 3, 15, 9), t("c", 4, 20, 13)]
        ts = audsley_opa(tasks)
        assert is_feasible(ts)

    def test_matches_dm_on_constrained_sets(self):
        # DM is optimal for D <= T, so OPA must succeed whenever DM does.
        tasks = [t("a", 2, 12, 6), t("b", 2, 16, 10), t("c", 3, 24, 20)]
        assert is_feasible(deadline_monotonic(tasks))
        assert is_feasible(audsley_opa(tasks))

    def test_succeeds_where_dm_fails_arbitrary_deadlines(self):
        # With D > T, DM is not optimal; OPA with exact analysis is.
        # Construct a set feasible under some assignment.
        tasks = [
            Task("x", cost=26, period=70, deadline=70, priority=1),
            Task("y", cost=62, period=100, deadline=120, priority=1),
        ]
        ts = audsley_opa(tasks)
        assert is_feasible(ts)
        # x must end up with the higher priority (y cannot preempt it).
        assert ts["x"].priority > ts["y"].priority

    def test_raises_when_no_assignment_exists(self):
        tasks = [t("a", 6, 10), t("b", 6, 10)]
        with pytest.raises(PriorityAssignmentError):
            audsley_opa(tasks)

    def test_priorities_cover_1_to_n(self):
        tasks = [t("a", 1, 10), t("b", 1, 20), t("c", 1, 30)]
        ts = audsley_opa(tasks)
        assert sorted(x.priority for x in ts) == [1, 2, 3]

    def test_accepts_taskset_input(self):
        ts_in = TaskSet([t("a", 1, 10), t("b", 1, 20)])
        assert is_feasible(audsley_opa(ts_in))
