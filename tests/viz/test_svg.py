"""Unit tests for the SVG Gantt renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.treatments import TreatmentKind
from repro.sim.simulation import simulate
from repro.units import ms
from repro.viz.svg import SvgOptions, render_svg
from repro.workloads.scenarios import (
    paper_fault,
    paper_figures_taskset,
    paper_horizon,
)


@pytest.fixture(scope="module")
def result():
    return simulate(
        paper_figures_taskset(),
        horizon=paper_horizon(),
        faults=paper_fault(),
        treatment=TreatmentKind.IMMEDIATE_STOP,
    )


class TestSvg:
    def test_valid_xml(self, result):
        svg = render_svg(result)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_task_labels_present(self, result):
        svg = render_svg(result)
        for name in ("tau1", "tau2", "tau3"):
            assert name in svg

    def test_title_rendered_and_escaped(self, result):
        svg = render_svg(result, SvgOptions(title="a <b> & c"))
        assert "a &lt;b&gt; &amp; c" in svg

    def test_execution_rectangles_exist(self, result):
        svg = render_svg(result, SvgOptions(start=ms(950), end=ms(1200)))
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        # Background + at least one execution rect per task.
        assert len(rects) >= 4

    def test_stop_marker_in_window(self, result):
        with_stop = render_svg(result, SvgOptions(start=ms(950), end=ms(1200)))
        without = render_svg(result, SvgOptions(start=0, end=ms(100)))
        assert with_stop.count("#c00") > without.count("#c00")

    def test_threshold_chevrons(self, result):
        svg = render_svg(
            result,
            SvgOptions(start=ms(950), end=ms(1200)),
            thresholds={"tau1": ms(29)},
        )
        assert "M " in svg  # chevron path present

    def test_axis_labels(self, result):
        svg = render_svg(result, SvgOptions(start=0, end=ms(1000)))
        assert "0 ms" in svg and "1000 ms" in svg

    def test_invalid_window(self, result):
        with pytest.raises(ValueError):
            render_svg(result, SvgOptions(start=5, end=5))
