"""RT010 — population code must not loop over per-system simulations.

The population stack (``repro.sim.batch``, ``repro.workloads.population``,
``repro.exec.sweep``, ``repro.experiments.population``) exists to run
*populations* through the vectorized stepper; a ``for`` loop that calls
``simulate()`` / ``run_simulation()`` / ``simulate_spec()`` once per
system silently reintroduces the per-system event-loop bottleneck the
layer was built to remove — and, worse, hides it behind an API whose
name promises batching.

Exactly one such loop is sanctioned: the classifier fallback, where
systems the vectorized stepper cannot model byte-exactly (faults,
treatments, locking, context-switch costs …) are routed to the exact
engine.  The convention — enforced here — is that the fallback lives in
a function whose name starts with ``_exact``, so the escape hatch is
greppable and every other per-system loop is a finding.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import Rule, attr_call, register

__all__ = ["PopulationDiscipline"]

#: Per-system simulation entry points.
_FORBIDDEN = frozenset({"simulate", "run_simulation", "simulate_spec"})

#: Modules that make up the population/sweep stack.
_POPULATION_MODULES = (
    "repro/sim/batch.py",
    "repro/workloads/population.py",
    "repro/exec/sweep.py",
    "repro/experiments/population.py",
)

_HINT = (
    "route eligible systems through repro.sim.batch.simulate_batch; "
    "per-system engine runs belong in the classifier fallback "
    "(a function named _exact*)"
)


def _in_population_stack(path: str) -> bool:
    posix = Path(path).as_posix()
    return any(posix.endswith(mod) for mod in _POPULATION_MODULES)


@register
class PopulationDiscipline(Rule):
    """RT010: per-system simulate loops in population code."""

    code = "RT010"
    name = "population-discipline"
    description = (
        "Population modules iterating systems with per-system simulate() "
        "calls outside the classifier fallback (_exact*) defeat the "
        "vectorized stepper and hide a serial bottleneck behind a "
        "batch-shaped API."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._active = _in_population_stack(ctx.path)
        self._loop_depth = 0
        self._sanctioned = 0

    # -- scope tracking ------------------------------------------------------
    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        sanctioned = node.name.startswith("_exact")
        self._sanctioned += sanctioned
        # A nested function starts a fresh loop scope: a call inside it
        # does not run once per iteration of any enclosing loop.
        outer, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer
        self._sanctioned -= sanctioned

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- the check -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._active and self._loop_depth > 0 and not self._sanctioned:
            name = None
            if isinstance(node.func, ast.Name) and node.func.id in _FORBIDDEN:
                name = node.func.id
            else:
                base_attr = attr_call(node)
                if base_attr is not None and base_attr[1] in _FORBIDDEN:
                    name = f"{base_attr[0]}.{base_attr[1]}"
            if name is not None:
                self.report(
                    node,
                    f"{name}() called once per loop iteration in population "
                    f"code outside the _exact* classifier fallback",
                    hint=_HINT,
                )
        self.generic_visit(node)
