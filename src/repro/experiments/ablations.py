"""Programmatic ablation studies generalising the paper's comparison.

The paper evaluates one hand-built system; these functions sweep the
same questions over seeded random workloads so the conclusions can be
stated with sample sizes:

* :func:`treatment_sweep` — the §6 comparison (who fails, how much
  execution the faulty task gets) over many systems;
* :func:`rounding_sweep` — detection latency vs timer resolution
  (the §6.2 artefact, quantified);
* :func:`allowance_sweep` — tolerance as a function of load;
* :func:`detector_overhead_sweep` — the §6.2 overhead remark ("the
  more tasks in the system, the more sensors"): CPU stolen by
  detector firings as the task count grows;
* :func:`blocking_sweep` — the §7 shared-resource axis: PCP/PIP
  blocking bounds vs simulated locking runs;
* :func:`server_sweep` — the §7 aperiodic axis: polling/deferrable
  server analysis vs simulated aperiodic service.

All functions are deterministic for a given seed and return plain
dataclasses the benchmarks and reports assert on.  Each study also has
an *exhibit* form — an ``ablation_*_spec()`` factory plus a
``build_ablation_*`` builder returning a result with ``render()`` /
``claims()`` — so the batch executor can run the ablations next to the
paper's tables and figures (simulations go through
:mod:`repro.exec.sim`, per lint rule RT006).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.allowance import equitable_allowance, system_allowance
from repro.core.context import AnalysisContext
from repro.core.blocking import (
    blocking_times_pcp,
    blocking_times_pip,
    equitable_allowance_with_blocking,
    response_time_with_blocking,
)
from repro.core.detection import Rounding, RoundingMode
from repro.core.faults import CostOverrun, FaultInjector
from repro.core.feasibility import analyze, is_feasible, is_weakly_hard_feasible
from repro.core.weakly_hard import MKConstraint
from repro.core.weakly_hard import satisfies as mk_satisfies
from repro.core.servers import (
    ServerSpec,
    deferrable_response_times,
    polling_response_bound,
    polling_server_taskset,
    server_sizing,
)
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind
from repro.exec.sim import resolve_scenario, run_simulation
from repro.exec.spec import ExperimentSpec
from repro.experiments.metrics import compute_metrics
from repro.experiments.paper import Claim
from repro.sim.locking import LockProtocol, SectionSpec
from repro.sim.servers import AperiodicRequest, simulate_with_server
from repro.sim.trace import EventKind
from repro.sim.vm import VMProfile
from repro.units import MS, ms, to_ms
from repro.viz.tables import format_table
from repro.workloads.generator import GeneratorConfig, random_taskset
from repro.workloads.scenarios import PAPER_FAULTY_JOB, paper_fault_extra_ms, paper_horizon

__all__ = [
    "feasible_pool",
    "TreatmentOutcome",
    "treatment_sweep",
    "RoundingPoint",
    "rounding_sweep",
    "AllowancePoint",
    "allowance_sweep",
    "OverheadPoint",
    "detector_overhead_sweep",
    "BlockingStudy",
    "blocking_sweep",
    "ServerStudy",
    "server_sweep",
    "TreatmentAblationResult",
    "RoundingAblationResult",
    "AllowanceAblationResult",
    "OverheadAblationResult",
    "BlockingAblationResult",
    "ServerAblationResult",
    "MKTolerancePoint",
    "MKToleranceAblationResult",
    "ablation_mk_tolerance_spec",
    "build_ablation_mk_tolerance",
    "ablation_treatments_spec",
    "ablation_rounding_spec",
    "ablation_allowance_spec",
    "ablation_overhead_spec",
    "ablation_blocking_spec",
    "ablation_servers_spec",
    "build_ablation_treatments",
    "build_ablation_rounding",
    "build_ablation_allowance",
    "build_ablation_overhead",
    "build_ablation_blocking",
    "build_ablation_servers",
]


def feasible_pool(
    count: int,
    *,
    n: int = 4,
    utilization: float = 0.75,
    deadline_factor: float = 0.9,
    seed: int = 0,
) -> list[TaskSet]:
    """A deterministic pool of feasible random systems."""
    pool: list[TaskSet] = []
    s = seed
    while len(pool) < count:
        ts = random_taskset(
            GeneratorConfig(
                n=n,
                utilization=utilization,
                period_lo=10_000,
                period_hi=1_000_000,
                period_granularity=1_000,
                deadline_factor=deadline_factor,
                seed=s,
            )
        )
        s += 1
        if is_feasible(ts):
            pool.append(ts)
    return pool


@dataclass(frozen=True)
class TreatmentOutcome:
    """Aggregate outcome of one treatment over a pool."""

    treatment: TreatmentKind | None
    systems: int
    collateral_failures: int
    faults_detected: int
    faulty_execution_total: int  # CPU granted to the faulty job, summed

    @property
    def name(self) -> str:
        return self.treatment.value if self.treatment else "no-detection"


def treatment_sweep(
    pool: Sequence[TaskSet],
    treatments: Sequence[TreatmentKind | None],
    *,
    faulty_job: int = 1,
) -> list[TreatmentOutcome]:
    """Run every system in *pool* under every treatment with a
    deadline-sized overrun on its highest-priority task."""
    outcomes = []
    for treatment in treatments:
        collateral = 0
        detected = 0
        granted = 0
        for ts in pool:
            victim = ts.tasks[0]
            faults = FaultInjector([CostOverrun(victim.name, faulty_job, victim.deadline)])
            horizon = (faulty_job + 5) * max(t.period for t in ts)
            res = run_simulation(ts, horizon=horizon, faults=faults, treatment=treatment)
            m = compute_metrics(res)
            collateral += len(m.collateral_failures)
            detected += m.detections
            job = res.jobs.get((victim.name, faulty_job))
            if job is not None:
                granted += job.executed
        outcomes.append(
            TreatmentOutcome(
                treatment=treatment,
                systems=len(pool),
                collateral_failures=collateral,
                faults_detected=detected,
                faulty_execution_total=granted,
            )
        )
    return outcomes


@dataclass(frozen=True)
class RoundingPoint:
    """Detection latency at one timer resolution."""

    resolution: int
    detection_delay: int  # detection time minus nominal WCRT instant


def rounding_sweep(
    taskset: TaskSet,
    faults: FaultInjector,
    victim: tuple[str, int],
    *,
    horizon: int,
    resolutions: Sequence[int] = (1 * MS, 5 * MS, 10 * MS, 20 * MS, 50 * MS),
) -> list[RoundingPoint]:
    """Measure fault-detection lateness as timers coarsen (§6.2)."""
    # Nominal detection instant: exact-timer run.
    nominal = _detection_time(taskset, faults, victim, horizon, VMProfile(name="exact"))
    points = []
    for res in resolutions:
        vm = VMProfile(
            name=f"res{res}", timer_rounding=Rounding(RoundingMode.UP, res)
        )
        t = _detection_time(taskset, faults, victim, horizon, vm)
        points.append(RoundingPoint(resolution=res, detection_delay=t - nominal))
    return points


def _detection_time(
    taskset: TaskSet,
    faults: FaultInjector,
    victim: tuple[str, int],
    horizon: int,
    vm: VMProfile,
) -> int:
    result = run_simulation(
        taskset,
        horizon=horizon,
        faults=faults,
        treatment=TreatmentKind.DETECT_ONLY,
        vm=vm,
    )
    for e in result.trace.of_kind(EventKind.FAULT_DETECTED):
        if (e.task, e.job) == victim:
            return e.time
    raise ValueError(f"fault of {victim} not detected within the horizon")


@dataclass(frozen=True)
class AllowancePoint:
    """Tolerance at one utilization level (pool mean, floored to whole
    nanoseconds — allowances are integer-ns quantities throughout)."""

    utilization: float
    mean_equitable: int
    mean_solo: int


def allowance_sweep(
    utilizations: Sequence[float],
    *,
    pool_size: int = 10,
    seed: int = 0,
) -> list[AllowancePoint]:
    """Equitable vs solo allowance as the load grows."""
    points = []
    for u in utilizations:
        pool = feasible_pool(pool_size, utilization=u, deadline_factor=1.0, seed=seed)
        eq_total = 0
        solo_total = 0
        for ts in pool:
            # Both searches probe the same cost-monotone families; one
            # context per set shares the warm fixed points between them.
            ctx = AnalysisContext(ts)
            eq_total += equitable_allowance(ts, context=ctx)
            grants: Mapping[str, int] = system_allowance(ts, context=ctx)
            solo_total += sum(grants.values()) // len(grants)
        points.append(
            AllowancePoint(
                utilization=u,
                mean_equitable=eq_total // pool_size,
                mean_solo=solo_total // pool_size,
            )
        )
    return points


@dataclass(frozen=True)
class OverheadPoint:
    """Detector CPU theft at one task count."""

    tasks: int
    detector_fires: int
    stolen_cpu: int
    busy_fraction_increase: float


def detector_overhead_sweep(
    task_counts: Sequence[int],
    *,
    fire_cost: int,
    horizon: int = 2_000_000,
    seed: int = 0,
) -> list[OverheadPoint]:
    """§6.2: "the more tasks in the system, the more sensors, hence the
    higher the influence of this overrun"."""
    points = []
    for n in task_counts:
        (ts,) = feasible_pool(1, n=n, utilization=0.5, deadline_factor=1.0, seed=seed)
        base = run_simulation(ts, horizon=horizon, treatment=TreatmentKind.DETECT_ONLY)
        vm = VMProfile(name="overhead", detector_fire_cost=fire_cost)
        loaded = run_simulation(
            ts, horizon=horizon, treatment=TreatmentKind.DETECT_ONLY, vm=vm
        )
        fires = len(loaded.trace.of_kind(EventKind.DETECTOR_FIRE))
        points.append(
            OverheadPoint(
                tasks=n,
                detector_fires=fires,
                stolen_cpu=loaded.busy_time - base.busy_time,
                busy_fraction_increase=(loaded.busy_time - base.busy_time) / horizon,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Blocking study (§7, shared resources)
# ---------------------------------------------------------------------------


def _blocking_system() -> TaskSet:
    # hi's 20-unit deadline leaves 10 units of slack: lo's 8-unit bus
    # section consumes most of it, so the blocking-aware allowance is
    # visibly smaller than the blocking-free one.
    return TaskSet(
        [
            Task("hi", cost=10, period=100, deadline=20, priority=3),
            Task("mid", cost=20, period=200, deadline=150, priority=2),
            Task("lo", cost=30, period=400, deadline=350, priority=1),
        ]
    )


def _blocking_sections() -> list[SectionSpec]:
    return [
        SectionSpec("hi", "bus", 2, 2),
        SectionSpec("lo", "bus", 0, 8),
        SectionSpec("mid", "dma", 5, 5),
        SectionSpec("lo", "dma", 10, 6),
    ]


@dataclass(frozen=True)
class BlockingStudy:
    """Analytic blocking bounds vs simulated locking runs on the
    reference three-task / two-resource system."""

    taskset: TaskSet
    plain_allowance: int
    blocked_allowance: int
    pcp_blocking: dict[str, int]
    pip_blocking: dict[str, int]
    #: protocol name -> task -> observed max response time
    observed: dict[str, dict[str, int]]
    #: protocol name -> task -> analytic response bound
    bounds: dict[str, dict[str, int]]
    missed: dict[str, int]
    icpp_blocked_events: int


def blocking_sweep(*, horizon: int = 2000) -> BlockingStudy:
    """The §7 shared-resource axis, quantified on one system."""
    ts = _blocking_system()
    sections = _blocking_sections()
    analysis = [s.as_analysis_section() for s in sections]
    pcp = blocking_times_pcp(ts, analysis)
    pip = blocking_times_pip(ts, analysis)
    observed: dict[str, dict[str, int]] = {}
    bounds: dict[str, dict[str, int]] = {}
    missed: dict[str, int] = {}
    icpp_blocked = 0
    for proto_name, protocol, blocking in (
        ("pip", LockProtocol.PIP, pip),
        ("icpp", LockProtocol.ICPP, pcp),
    ):
        res = run_simulation(ts, horizon=horizon, sections=sections, protocol=protocol)
        observed[proto_name] = {
            t.name: res.max_response_time(t.name) or 0 for t in ts
        }
        bounds[proto_name] = {
            t.name: response_time_with_blocking(t, ts, blocking) for t in ts
        }
        missed[proto_name] = len(res.missed())
        if proto_name == "icpp":
            icpp_blocked = len(res.trace.of_kind(EventKind.BLOCKED))
    return BlockingStudy(
        taskset=ts,
        plain_allowance=equitable_allowance(ts),
        blocked_allowance=equitable_allowance_with_blocking(ts, analysis),
        pcp_blocking=pcp,
        pip_blocking=pip,
        observed=observed,
        bounds=bounds,
        missed=missed,
        icpp_blocked_events=icpp_blocked,
    )


# ---------------------------------------------------------------------------
# Server study (§7, aperiodic tasks)
# ---------------------------------------------------------------------------


def _server_periodic() -> TaskSet:
    return TaskSet(
        [
            Task("ctrl", cost=2, period=10, priority=10),
            Task("log", cost=6, period=30, deadline=28, priority=2),
        ]
    )


_SERVER = ServerSpec(name="srv", capacity=3, period=15, priority=5)


@dataclass(frozen=True)
class ServerStudy:
    """Polling/deferrable server analysis vs simulated aperiodic
    service on the reference two-task system."""

    #: (request name, response time or None, analytic polling bound)
    responses: tuple[tuple[str, int | None, int], ...]
    periodic_missed: int
    flood_missed: int
    flood_periodic_within_wcrt: bool
    polling_log_wcrt: int
    deferrable_log_wcrt: int
    sizing_capacity: int | None
    sizing_maximal: bool


def server_sweep(*, horizon: int = 1000) -> ServerStudy:
    """The §7 aperiodic axis, quantified on one system."""
    periodic = _server_periodic()
    reqs = [
        AperiodicRequest(f"r{i}", arrival=i * 37, demand=2 + (i % 3)) for i in range(12)
    ]
    result, served = simulate_with_server(periodic, _SERVER, list(reqs), horizon=horizon)
    responses = tuple(
        (r.name, r.response_time, polling_response_bound(r.demand, _SERVER, periodic))
        for r in served
    )
    # Aperiodic flood: the server budget must fence the periodic tasks.
    flood = [AperiodicRequest(f"f{i}", arrival=i, demand=50) for i in range(5)]
    flood_result, _ = simulate_with_server(periodic, _SERVER, flood, horizon=horizon)
    report = analyze(polling_server_taskset(periodic, _SERVER))
    within = all(
        (flood_result.max_response_time(t.name) or 0) <= (report.wcrt(t.name) or 0)
        for t in periodic
    )
    deferrable = deferrable_response_times(periodic, _SERVER)
    sizing = server_sizing(periodic, 15, 5)
    maximal = False
    if sizing is not None:
        bigger = ServerSpec("server", capacity=sizing.capacity + 1, period=15, priority=5)
        maximal = not is_feasible(polling_server_taskset(periodic, bigger))
    return ServerStudy(
        responses=responses,
        periodic_missed=len(result.missed()),
        flood_missed=len(flood_result.missed()),
        flood_periodic_within_wcrt=within,
        polling_log_wcrt=report.wcrt("log") or 0,
        deferrable_log_wcrt=deferrable["log"],
        sizing_capacity=sizing.capacity if sizing is not None else None,
        sizing_maximal=maximal,
    )


# ---------------------------------------------------------------------------
# Executor-facing ablation exhibits: specs, builders, renderable results
# ---------------------------------------------------------------------------

_SWEEP_TREATMENTS: tuple[TreatmentKind | None, ...] = (
    None,
    TreatmentKind.DETECT_ONLY,
    TreatmentKind.IMMEDIATE_STOP,
    TreatmentKind.EQUITABLE_ALLOWANCE,
    TreatmentKind.SYSTEM_ALLOWANCE,
)


@dataclass(frozen=True)
class TreatmentAblationResult:
    """The §6 treatment comparison over a pool of random systems."""

    outcomes: tuple[TreatmentOutcome, ...]

    def _by_name(self) -> dict[str, TreatmentOutcome]:
        return {o.name: o for o in self.outcomes}

    def render(self) -> str:
        rows = [
            (o.name, o.systems, o.collateral_failures, o.faults_detected, o.faulty_execution_total)
            for o in self.outcomes
        ]
        return format_table(
            ["treatment", "systems", "collateral", "detected", "granted (ns)"],
            rows,
            title="Ablation - treatments over a random feasible pool",
        )

    def claims(self) -> list[Claim]:
        by = self._by_name()
        stoppers = ("immediate-stop", "equitable-allowance", "system-allowance")
        return [
            Claim(
                "without treatment the overrun causes collateral failures",
                by["no-detection"].collateral_failures > 0,
            ),
            Claim(
                "detection alone changes nothing (same collateral as bare)",
                by["detect-only"].collateral_failures == by["no-detection"].collateral_failures,
            ),
            Claim(
                "every stopping policy eliminates collateral failures",
                all(by[k].collateral_failures == 0 for k in stoppers),
            ),
            Claim(
                "granted execution: immediate stop <= equitable <= system",
                by["immediate-stop"].faulty_execution_total
                <= by["equitable-allowance"].faulty_execution_total
                <= by["system-allowance"].faulty_execution_total,
            ),
        ]


def ablation_treatments_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-treatments",
        builder="ablation.treatments",
        seed=3,
        params={"pool": 6, "n": 4, "utilization": 0.75, "faulty_job": 1},
    )


def build_ablation_treatments(spec: ExperimentSpec) -> TreatmentAblationResult:
    pool = feasible_pool(
        spec.param("pool", 6),
        n=spec.param("n", 4),
        utilization=spec.param("utilization", 0.75),
        seed=spec.seed,
    )
    outcomes = treatment_sweep(
        pool, _SWEEP_TREATMENTS, faulty_job=spec.param("faulty_job", 1)
    )
    return TreatmentAblationResult(outcomes=tuple(outcomes))


@dataclass(frozen=True)
class RoundingAblationResult:
    """Detection lateness vs timer resolution on the paper's system."""

    points: tuple[RoundingPoint, ...]

    def render(self) -> str:
        rows = [(to_ms(p.resolution), to_ms(p.detection_delay)) for p in self.points]
        return format_table(
            ["resolution (ms)", "detection delay (ms)"],
            rows,
            title="Ablation - detection latency vs timer resolution",
        )

    def claims(self) -> list[Claim]:
        delays = {p.resolution: p.detection_delay for p in self.points}
        series = [p.detection_delay for p in self.points]
        return [
            Claim(
                "every delay is bounded by the timer resolution",
                all(0 <= p.detection_delay < p.resolution for p in self.points),
            ),
            Claim(
                "the 10 ms grid reproduces Figure 4's 1 ms artefact",
                delays.get(10 * MS) == ms(1),
            ),
            Claim("coarser timers never detect earlier", series == sorted(series)),
        ]


def ablation_rounding_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-rounding",
        builder="ablation.rounding",
        scenario="paper-figures",
        horizon=paper_horizon(),
        faults=(("tau1", PAPER_FAULTY_JOB, ms(paper_fault_extra_ms())),),
        params={
            "victim": ("tau1", PAPER_FAULTY_JOB),
            "resolutions": (1 * MS, 5 * MS, 10 * MS, 20 * MS, 50 * MS),
        },
    )


def build_ablation_rounding(spec: ExperimentSpec) -> RoundingAblationResult:
    scenario = resolve_scenario(spec)
    victim = spec.param("victim", ("tau1", PAPER_FAULTY_JOB))
    assert scenario.faults is not None
    points = rounding_sweep(
        scenario.taskset,
        scenario.faults,
        (victim[0], victim[1]),
        horizon=scenario.horizon_or_default(),
        resolutions=spec.param("resolutions", (1 * MS, 10 * MS, 50 * MS)),
    )
    return RoundingAblationResult(points=tuple(points))


@dataclass(frozen=True)
class AllowanceAblationResult:
    """Tolerance as a function of load, over random pools."""

    points: tuple[AllowancePoint, ...]

    def render(self) -> str:
        rows = [
            (p.utilization, round(p.mean_equitable / MS, 3), round(p.mean_solo / MS, 3))
            for p in self.points
        ]
        return format_table(
            ["utilization", "mean equitable (ms)", "mean solo (ms)"],
            rows,
            title="Ablation - allowance vs utilization",
        )

    def claims(self) -> list[Claim]:
        eq = [p.mean_equitable for p in self.points]
        return [
            Claim(
                "mean equitable allowance shrinks as the load grows",
                eq == sorted(eq, reverse=True),
            ),
            Claim(
                "the solo (system) allowance dominates the equitable one",
                all(p.mean_solo >= p.mean_equitable for p in self.points),
            ),
        ]


def ablation_allowance_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-allowance",
        builder="ablation.allowance",
        seed=4,
        params={"pool": 3, "utilizations": (0.4, 0.6, 0.8)},
    )


def build_ablation_allowance(spec: ExperimentSpec) -> AllowanceAblationResult:
    points = allowance_sweep(
        spec.param("utilizations", (0.4, 0.7)),
        pool_size=spec.param("pool", 3),
        seed=spec.seed,
    )
    return AllowanceAblationResult(points=tuple(points))


@dataclass(frozen=True)
class OverheadAblationResult:
    """Detector CPU theft as the task count grows."""

    points: tuple[OverheadPoint, ...]

    def render(self) -> str:
        rows = [
            (p.tasks, p.detector_fires, p.stolen_cpu, f"{p.busy_fraction_increase:.4%}")
            for p in self.points
        ]
        return format_table(
            ["tasks", "detector fires", "stolen CPU (ns)", "busy increase"],
            rows,
            title="Ablation - detector overhead vs task count",
        )

    def claims(self) -> list[Claim]:
        fires = [p.detector_fires for p in self.points]
        stolen = [p.stolen_cpu for p in self.points]
        return [
            Claim("more tasks mean more sensor firings", fires == sorted(fires)),
            Claim("stolen CPU grows with the task count", stolen == sorted(stolen)),
            Claim("overhead is never negative", all(s >= 0 for s in stolen)),
        ]


def ablation_overhead_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-overhead",
        builder="ablation.overhead",
        seed=0,
        params={"task_counts": (2, 5, 8), "fire_cost": 2_000},
    )


def build_ablation_overhead(spec: ExperimentSpec) -> OverheadAblationResult:
    points = detector_overhead_sweep(
        spec.param("task_counts", (2, 5, 8)),
        fire_cost=spec.param("fire_cost", 2_000),
        seed=spec.seed,
    )
    return OverheadAblationResult(points=tuple(points))


@dataclass(frozen=True)
class BlockingAblationResult:
    """Blocking bounds vs simulated locking protocols."""

    study: BlockingStudy

    def render(self) -> str:
        s = self.study
        rows = []
        for proto in ("pip", "icpp"):
            for t in s.taskset:
                rows.append(
                    (proto, t.name, s.observed[proto][t.name], s.bounds[proto][t.name])
                )
        table = format_table(
            ["protocol", "task", "observed max R", "analytic bound"],
            rows,
            title="Ablation - blocking: simulated protocols vs bounds",
        )
        return (
            f"{table}\n"
            f"equitable allowance: {s.plain_allowance} (blocking-free) vs "
            f"{s.blocked_allowance} (blocking-aware)"
        )

    def claims(self) -> list[Claim]:
        s = self.study
        return [
            Claim(
                "blocking terms shrink the equitable allowance",
                s.blocked_allowance < s.plain_allowance,
            ),
            Claim(
                "the PCP bound is never looser than the PIP bound",
                all(s.pcp_blocking[n] <= s.pip_blocking[n] for n in s.pcp_blocking),
            ),
            Claim(
                "no deadline is missed under either protocol",
                all(v == 0 for v in s.missed.values()),
            ),
            Claim(
                "simulated responses stay within the analytic bounds",
                all(
                    s.observed[p][n] <= s.bounds[p][n]
                    for p in s.observed
                    for n in s.observed[p]
                ),
            ),
            Claim("ICPP never blocks at acquisition time", s.icpp_blocked_events == 0),
        ]


def ablation_blocking_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-blocking",
        builder="ablation.blocking",
        params={"horizon": 2000},
    )


def build_ablation_blocking(spec: ExperimentSpec) -> BlockingAblationResult:
    return BlockingAblationResult(study=blocking_sweep(horizon=spec.param("horizon", 2000)))


@dataclass(frozen=True)
class ServerAblationResult:
    """Aperiodic service: server analysis vs simulated runs."""

    study: ServerStudy

    def render(self) -> str:
        s = self.study
        rows = [
            (name, r if r is not None else "unserved", bound)
            for name, r, bound in s.responses
        ]
        table = format_table(
            ["request", "response", "polling bound"],
            rows,
            title="Ablation - aperiodic service via a polling server",
        )
        return (
            f"{table}\n"
            f"log WCRT: polling {s.polling_log_wcrt} vs deferrable "
            f"{s.deferrable_log_wcrt}; maximal server capacity {s.sizing_capacity}"
        )

    def claims(self) -> list[Claim]:
        s = self.study
        return [
            Claim(
                "served aperiodic responses stay within the polling bound",
                all(r <= bound for _, r, bound in s.responses if r is not None),
            ),
            Claim(
                "periodic tasks never miss, even under an aperiodic flood",
                s.periodic_missed == 0 and s.flood_missed == 0,
            ),
            Claim(
                "the flood keeps periodic responses within their WCRTs",
                s.flood_periodic_within_wcrt,
            ),
            Claim(
                "deferrable service charges lower tasks a back-to-back penalty",
                s.deferrable_log_wcrt > s.polling_log_wcrt,
            ),
            Claim(
                "the sizing search finds the maximal feasible capacity",
                s.sizing_capacity is not None
                and s.sizing_capacity > 0
                and s.sizing_maximal,
            ),
        ]


def ablation_servers_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="ablation-servers",
        builder="ablation.servers",
        params={"horizon": 1000},
    )


def build_ablation_servers(spec: ExperimentSpec) -> ServerAblationResult:
    return ServerAblationResult(study=server_sweep(horizon=spec.param("horizon", 1000)))


# ---------------------------------------------------------------------------
# Weakly-hard (m, K) tolerance study (DESIGN.md §3.11)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MKTolerancePoint:
    """Hard vs weakly-hard admission and treatment at one load level.

    ``hard_admitted`` / ``mk_admitted`` count the systems the paper's
    hard admission vs the weakly-hard test admit out of ``candidates``
    random draws.  ``mk_violations`` counts per-task (m, K) violations
    observed when every weakly-hard-admitted system runs under
    SKIP_JOB; the ``stops_*`` / ``escalations`` columns come from
    paired fault runs (one transient overrun on the highest-priority
    task) over the hard-admitted systems.
    """

    utilization: float
    candidates: int
    hard_admitted: int
    mk_admitted: int
    mk_violations: int
    mk_skips: int
    stops_immediate: int
    stops_equitable: int
    stops_miss_budget: int
    escalations: int


@dataclass(frozen=True)
class MKToleranceAblationResult:
    """Hard-stop vs equitable-allowance vs (m, K) tolerance across
    utilizations: the weakly-hard admission/treatment exhibit."""

    m: int
    k: int
    points: tuple[MKTolerancePoint, ...]

    def render(self) -> str:
        rows = [
            (
                p.utilization,
                p.candidates,
                p.hard_admitted,
                p.mk_admitted,
                p.mk_violations,
                p.mk_skips,
                p.stops_immediate,
                p.stops_equitable,
                p.stops_miss_budget,
                p.escalations,
            )
            for p in self.points
        ]
        return format_table(
            [
                "utilization",
                "systems",
                "hard adm.",
                f"({self.m},{self.k}) adm.",
                "mK violations",
                "skips",
                "stops imm.",
                "stops eq.",
                "stops mb.",
                "escalations",
            ],
            rows,
            title=f"Ablation - weakly-hard ({self.m},{self.k}) fault tolerance",
        )

    def claims(self) -> list[Claim]:
        overload = [p for p in self.points if p.mk_admitted > p.hard_admitted]
        return [
            Claim(
                "the weakly-hard test admits every hard-feasible system",
                all(p.mk_admitted >= p.hard_admitted for p in self.points),
            ),
            Claim(
                "at some load it admits strictly more, all violation-free",
                any(p.mk_violations == 0 for p in overload),
            ),
            Claim(
                "no admitted system ever violates its (m, K) constraint",
                all(p.mk_violations == 0 for p in self.points),
            ),
            Claim(
                "skipping really happens wherever weakly-hard runs exist",
                all(p.mk_skips > 0 for p in self.points if p.mk_admitted > 0),
            ),
            Claim(
                "immediate stop kills the faulty job in every system",
                all(p.stops_immediate == p.hard_admitted for p in self.points),
            ),
            Claim(
                "the miss budget tolerates the transient fault unstopped",
                all(
                    p.stops_miss_budget == 0 and p.escalations == 0
                    for p in self.points
                ),
            ),
            Claim(
                "equitable allowance stops no more often than immediate stop",
                all(p.stops_equitable <= p.stops_immediate for p in self.points),
            ),
        ]


def ablation_mk_tolerance_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="fault_mk_tolerance",
        builder="ablation.mk_tolerance",
        seed=7,
        params={
            "pool": 6,
            "n": 4,
            "mk": (1, 3),
            "utilizations": (0.7, 0.85, 1.0, 1.15),
            "windows": 3,
        },
    )


def build_ablation_mk_tolerance(spec: ExperimentSpec) -> MKToleranceAblationResult:
    m, k = spec.param("mk", (1, 3))
    constraint = MKConstraint(int(m), int(k))
    pool_size = spec.param("pool", 6)
    n = spec.param("n", 4)
    windows = spec.param("windows", 3)
    points = []
    for u in spec.param("utilizations", (0.7, 0.85, 1.0, 1.15)):
        raw = [
            random_taskset(
                GeneratorConfig(
                    n=n,
                    utilization=u,
                    period_lo=10_000,
                    period_hi=1_000_000,
                    period_granularity=1_000,
                    deadline_factor=1.0,
                    seed=spec.seed + i,
                )
            )
            for i in range(pool_size)
        ]
        # The same drawn systems, with the (m, K) constraint attached —
        # admission comparisons are paired, not independent samples.
        mk_pool = [ts.with_mk({t.name: constraint for t in ts}) for ts in raw]
        hard = [ts for ts in mk_pool if is_feasible(ts)]
        admitted = [ts for ts in mk_pool if is_weakly_hard_feasible(ts)]
        violations = 0
        skips = 0
        for ts in admitted:
            horizon = windows * constraint.k * max(t.period for t in ts)
            res = run_simulation(ts, horizon=horizon, treatment=TreatmentKind.SKIP_JOB)
            skips += len(res.skipped())
            for t in ts:
                if not mk_satisfies(res.miss_pattern(t.name), constraint):
                    violations += 1
        stops_i = stops_eq = stops_mb = escalations = 0
        for ts in hard:
            victim = ts.tasks[0]
            faults = FaultInjector([CostOverrun(victim.name, 1, victim.cost)])
            horizon = 6 * max(t.period for t in ts)
            res_i = run_simulation(
                ts, horizon=horizon, faults=faults, treatment=TreatmentKind.IMMEDIATE_STOP
            )
            res_eq = run_simulation(
                ts,
                horizon=horizon,
                faults=faults,
                treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
            )
            res_mb = run_simulation(
                ts, horizon=horizon, faults=faults, treatment=TreatmentKind.MISS_BUDGET
            )
            stops_i += len(res_i.stopped())
            stops_eq += len(res_eq.stopped())
            stops_mb += len(res_mb.stopped())
            escalations += len(res_mb.trace.of_kind(EventKind.ESCALATE))
        points.append(
            MKTolerancePoint(
                utilization=u,
                candidates=pool_size,
                hard_admitted=len(hard),
                mk_admitted=len(admitted),
                mk_violations=violations,
                mk_skips=skips,
                stops_immediate=stops_i,
                stops_equitable=stops_eq,
                stops_miss_budget=stops_mb,
                escalations=escalations,
            )
        )
    return MKToleranceAblationResult(m=int(m), k=int(k), points=tuple(points))
