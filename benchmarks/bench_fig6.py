"""Figure 6: allowance granted equitably to all tasks.

Shape reproduced: every task is granted A = 11 ms; tau1 is stopped at
its adjusted WCRT (release + 40 ms), runs 11 ms longer than under the
immediate stop, no other task fails — but tau2/tau3's unconsumed
allowance is wasted CPU time.
"""

from repro.experiments.paper import figure5, figure6
from repro.units import ms


def test_figure6_equitable_allowance(benchmark):
    result = benchmark(figure6)
    assert all(c.holds for c in result.claims()), [
        c.description for c in result.claims() if not c.holds
    ]
    assert result.job_end("tau1", 5) == ms(1040)
    assert result.job_end("tau2", 4) == ms(1069)
    assert result.job_end("tau3", 0) == ms(1098)
    # Exactly 11 ms more execution than the Figure 5 stop.
    assert result.job_end("tau1", 5) - figure5().job_end("tau1", 5) == ms(11)
    # Unused slack remains before tau3's deadline (1120 - 1098).
    assert ms(1120) - result.job_end("tau3", 0) == ms(22)
