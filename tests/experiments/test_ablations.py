"""Unit tests for the ablation library (small pools for speed)."""

import pytest

from repro.core.treatments import TreatmentKind
from repro.experiments.ablations import (
    allowance_sweep,
    detector_overhead_sweep,
    feasible_pool,
    rounding_sweep,
    treatment_sweep,
)
from repro.core.feasibility import is_feasible
from repro.units import MS, ms
from repro.workloads.scenarios import paper_fault, paper_figures_taskset, paper_horizon


class TestFeasiblePool:
    def test_all_feasible_and_deterministic(self):
        pool = feasible_pool(4, seed=1)
        assert len(pool) == 4
        assert all(is_feasible(ts) for ts in pool)
        assert feasible_pool(4, seed=1) == pool

    def test_task_count_respected(self):
        pool = feasible_pool(2, n=6, seed=2)
        assert all(len(ts) == 6 for ts in pool)


class TestTreatmentSweep:
    @pytest.fixture(scope="class")
    def outcomes(self):
        pool = feasible_pool(6, seed=3)
        return {
            o.name: o
            for o in treatment_sweep(
                pool,
                [
                    None,
                    TreatmentKind.DETECT_ONLY,
                    TreatmentKind.IMMEDIATE_STOP,
                    TreatmentKind.EQUITABLE_ALLOWANCE,
                    TreatmentKind.SYSTEM_ALLOWANCE,
                ],
            )
        }

    def test_stopping_policies_eliminate_collateral(self, outcomes):
        for name in ("immediate-stop", "equitable-allowance", "system-allowance"):
            assert outcomes[name].collateral_failures == 0

    def test_detect_only_same_failures_as_bare(self, outcomes):
        assert (
            outcomes["detect-only"].collateral_failures
            == outcomes["no-detection"].collateral_failures
        )

    def test_detection_happens(self, outcomes):
        assert outcomes["detect-only"].faults_detected >= 6

    def test_tolerance_ordering(self, outcomes):
        assert (
            outcomes["immediate-stop"].faulty_execution_total
            <= outcomes["equitable-allowance"].faulty_execution_total
            <= outcomes["system-allowance"].faulty_execution_total
        )


class TestRoundingSweep:
    def test_paper_artifact(self):
        points = rounding_sweep(
            paper_figures_taskset(),
            paper_fault(),
            ("tau1", 5),
            horizon=paper_horizon(),
            resolutions=(1 * MS, 10 * MS, 50 * MS),
        )
        delays = {p.resolution: p.detection_delay for p in points}
        assert delays[1 * MS] == 0  # 29 is a multiple of 1
        assert delays[10 * MS] == ms(1)  # the Figure 4 artefact
        assert delays[50 * MS] == ms(21)  # 29 -> 50
        # Coarser timers never detect earlier.
        series = [p.detection_delay for p in points]
        assert series == sorted(series)


class TestAllowanceSweep:
    def test_monotone_decreasing_and_solo_dominates(self):
        points = allowance_sweep((0.4, 0.7), pool_size=3, seed=4)
        assert points[0].mean_equitable >= points[1].mean_equitable
        for p in points:
            assert p.mean_solo >= p.mean_equitable


class TestOverheadSweep:
    def test_overhead_grows_with_task_count(self):
        points = detector_overhead_sweep((2, 6), fire_cost=2_000, seed=5)
        assert points[0].stolen_cpu >= 0
        assert points[1].detector_fires > points[0].detector_fires
        assert points[1].stolen_cpu >= points[0].stolen_cpu
