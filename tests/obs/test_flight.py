"""Anomaly flight recorder: triggers, bundles, bit-identical replay.

The seeded-anomaly recipe: a sweep over *analytically feasible* systems
(``feasible_only=True``) with a fault axis — ``analysis_feasible``
ignores faults, so injected overruns produce deadline misses on systems
the analysis admitted, and every such point must fire the
``miss-despite-feasible`` trigger with a bundle whose replay reproduces
the exact engine's schedule fingerprint bit for bit.
"""

import json

import pytest

from repro.core.faults import CostOverrun, FaultInjector, RandomFaults
from repro.core.task import Task, TaskSet
from repro.exec.executor import LocalExecutor, PoolExecutor
from repro.exec.sweep import SweepSpec, run_sweep
from repro.obs.flight import (
    DEFAULT_RING_CAPACITY,
    AnomalyReport,
    FlightRecorder,
    RingSink,
    load_bundle,
    replay,
)
from repro.obs.runtime import ObsConfig, WorkerObs, activate
from repro.sim.trace import EventKind, TraceEvent


def fault_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="flight-sweep",
        axes={"utilization": (0.7, 0.95)},
        replicates=6,
        base_seed=5,
        n=3,
        period_lo=50,
        period_hi=5_000,
        period_granularity=10,
        horizon_periods=2,
        chunk_size=4,
        fault_rate=0.3,
        feasible_only=True,
    )


def _event(time: int) -> TraceEvent:
    return TraceEvent(kind=EventKind.RELEASE, time=time, task="T1", job=0)


class TestRingSink:
    def test_bounded(self):
        ring = RingSink(4)
        for i in range(10):
            ring.emit(_event(i))
        tail = ring.tail()
        assert len(tail) == 4
        assert [e.time for e in tail] == [6, 7, 8, 9]

    def test_clear(self):
        ring = RingSink(4)
        ring.emit(_event(1))
        ring.clear()
        assert len(ring) == 0

    def test_default_capacity(self):
        ring = RingSink()
        for i in range(DEFAULT_RING_CAPACITY + 10):
            ring.emit(_event(i))
        assert len(ring) == DEFAULT_RING_CAPACITY


class TestCapture:
    def _report(self) -> AnomalyReport:
        ts = TaskSet(
            (
                Task(name="T1", cost=10, period=50, priority=1),
                Task(name="T2", cost=20, period=100, priority=2),
            )
        )
        return AnomalyReport(
            kind="miss-despite-feasible",
            detail="unit",
            taskset=ts,
            horizon=200,
            faults=FaultInjector([CostOverrun("T1", 0, 5)]),
            treatment=None,
            expected_fingerprint="deadbeef",
            context=(("ordinal", 7),),
        )

    def test_bundle_path_is_deterministic(self, tmp_path):
        a = FlightRecorder(tmp_path / "a").capture(self._report())
        b = FlightRecorder(tmp_path / "b").capture(self._report())
        assert a.name == b.name

    def test_bundle_is_self_contained(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.ring.emit(_event(42))
        path = recorder.capture(self._report())
        doc = load_bundle(path)
        assert doc["kind"] == "miss-despite-feasible"
        assert doc["system"]["horizon"] == 200
        assert doc["system"]["faults"]["kind"] == "injector"
        assert [e["time"] for e in doc["ring_tail"]] == [42]
        assert doc["context"] == {"ordinal": 7}

    def test_unsupported_schema_rejected(self, tmp_path):
        bad = tmp_path / "bundle.json"
        bad.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_bundle(bad)

    def test_random_faults_round_trip(self, tmp_path):
        report = AnomalyReport(
            kind="stepper-divergence",
            detail="unit",
            taskset=TaskSet((Task(name="T1", cost=10, period=50, priority=1),)),
            horizon=100,
            faults=RandomFaults(rate=0.5, max_extra=7, seed=3),
        )
        doc = load_bundle(FlightRecorder(tmp_path).capture(report))
        assert doc["system"]["faults"] == {
            "kind": "random",
            "rate": 0.5,
            "max_extra": 7,
            "seed": 3,
        }


class TestSeededAnomaly:
    @pytest.mark.parametrize("make_executor", [
        lambda obs: LocalExecutor(worker_obs=obs),
        lambda obs: PoolExecutor(2, worker_obs=obs),
    ])
    def test_sweep_produces_replayable_bundles(self, tmp_path, make_executor):
        executor = make_executor(WorkerObs(telemetry=True, flight_dir=str(tmp_path)))
        result = run_sweep(fault_sweep(), executor=executor)
        anomalous = [
            p for p in result.points if p.analysis_feasible and p.misses > 0
        ]
        assert anomalous, "seeded recipe must produce miss-despite-feasible points"
        bundles = executor.telemetry.flight_bundles
        assert len(bundles) == len(anomalous)
        verdict = replay(bundles[0])
        assert verdict.ok, verdict.describe()
        assert verdict.expected_fingerprint == verdict.replayed_fingerprint
        assert verdict.misses > 0

    def test_replay_detects_divergence(self, tmp_path):
        executor = LocalExecutor(
            worker_obs=WorkerObs(telemetry=True, flight_dir=str(tmp_path))
        )
        run_sweep(fault_sweep(), executor=executor)
        path = executor.telemetry.flight_bundles[0]
        doc = json.loads(open(path).read())
        doc["expected_fingerprint"] = "0" * 8
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))
        verdict = replay(tampered)
        assert not verdict.ok
        assert "DIVERGED" in verdict.describe()


class TestOracleTrigger:
    def test_oracle_failure_captures_uni_bundle(self, tmp_path):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "oracle_for_flight",
            Path(__file__).parent.parent / "oracle" / "test_sim_vs_analysis.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        recorder = FlightRecorder(tmp_path)
        params = {"seed": 42, "n": 3, "u_ppm": 900_000, "d_ppm": 1_000_000}
        with activate(ObsConfig(flight=recorder)):
            mod._capture_flight("uni", params, "synthetic divergence")
            mod._capture_flight("mp", params, "must be ignored")
        assert len(recorder.bundles) == 1
        verdict = replay(recorder.bundles[0])
        assert verdict.ok, verdict.describe()
