"""Unit tests for the experiments CLI."""

import pytest

from repro.experiments.cli import main

PAPER_FILE = """
@unit ms
@horizon 1600
@treatment system-allowance
task tau1 priority=20 cost=29 period=200  deadline=70
task tau2 priority=18 cost=29 period=250  deadline=120
task tau3 priority=16 cost=29 period=1500 deadline=120 offset=1000
fault tau1 job=5 extra=40
"""


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "[OK ]" in out

    def test_all_experiments_pass(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        # Claim verdict lines are "[OK ]" / "[FAIL]"; the per-task
        # summaries legitimately say e.g. "tau1 FAILED" (it was stopped).
        assert "[FAIL]" not in out
        assert "[OK ]" in out
        assert "Figure 7" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_svg_output(self, tmp_path, capsys):
        assert main(["figure5", "--svg", str(tmp_path)]) == 0
        svg = tmp_path / "figure5.svg"
        assert svg.exists()
        assert "<svg" in svg.read_text()

    def test_run_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        path.write_text(PAPER_FILE)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failed: ['tau1']" in out

    def test_run_with_treatment_override(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        path.write_text(PAPER_FILE)
        assert main(["run", str(path), "--treatment", "no-detection"]) == 0
        out = capsys.readouterr().out
        assert "failed: ['tau3']" in out

    def test_run_without_file(self, capsys):
        assert main(["run"]) == 2

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
