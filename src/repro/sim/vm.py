"""Virtual-machine / platform models.

The paper runs on jRate over a Timesys real-time kernel and reports two
platform artefacts that shape its measurements:

* ``PeriodicTimer`` releases are only precise at 10 ms granularity, so
  detector offsets are rounded (§6.2: delays of 1, 2, 3 ms for the
  three detectors);
* stopping a thread requires polling a boolean in the task loop, and
  the poll calls ``RealtimeThread.currentRealtimeThread()`` whose cost
  is *not bounded* — the task keeps making "small cost overruns, about
  a few milliseconds" (§4.1), below detector precision.

:class:`VMProfile` packages those knobs (plus a context-switch cost for
ablations) so experiments can run on an idealised platform
(:data:`EXACT_VM`) or on the paper's platform (:data:`JRATE_VM`) and the
difference can be measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.detection import EXACT, JRATE_10MS, Rounding
from repro.rng import resolve_rng
from repro.units import MS

__all__ = [
    "OverheadModel",
    "NoOverhead",
    "ConstantOverhead",
    "UniformOverhead",
    "VMProfile",
    "EXACT_VM",
    "JRATE_VM",
    "jrate_vm",
]


class OverheadModel(Protocol):
    """Source of per-occurrence overhead durations (ns)."""

    def sample(self) -> int:
        ...


class NoOverhead:
    """Zero overhead (ideal platform)."""

    def sample(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoOverhead()"


@dataclass
class ConstantOverhead:
    """A fixed overhead per occurrence."""

    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("overhead must be >= 0")

    def sample(self) -> int:
        return self.amount


@dataclass
class UniformOverhead:
    """Seeded uniform overhead on ``[lo, hi]`` ns.

    Models the paper's unbounded-cost ``currentRealtimeThread()`` poll:
    a few milliseconds, varying call to call, but reproducible here
    thanks to the explicit seed.  An already-seeded stream can be
    injected via *rng* (it wins over *seed*), letting experiments share
    or partition their randomness deliberately.
    """

    lo: int
    hi: int
    seed: int = 0
    rng: random.Random | None = field(default=None, repr=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError("need 0 <= lo <= hi")
        self._rng = resolve_rng(self.rng, self.seed)

    def sample(self) -> int:
        return self._rng.randint(self.lo, self.hi)


@dataclass(frozen=True)
class VMProfile:
    """Platform parameters consumed by the simulator.

    ``timer_rounding`` aligns detector releases (§6.2 quirk);
    ``stop_poll_overhead`` is the extra CPU a job consumes between a
    stop request and the stop taking effect (§4.1 boolean polling);
    ``detector_fire_cost`` is CPU stolen at top priority each time a
    detector fires (§6.2 calls it "a pre-emption", estimated negligible
    — modelled so the estimate can be checked); ``context_switch`` is
    charged to a job each time it is (re)dispatched.
    """

    name: str = "exact"
    timer_rounding: Rounding = EXACT
    stop_poll_overhead: OverheadModel = NoOverhead()
    detector_fire_cost: int = 0
    context_switch: int = 0

    def __post_init__(self) -> None:
        if self.detector_fire_cost < 0 or self.context_switch < 0:
            raise ValueError("costs must be >= 0")


#: Idealised platform: exact timers, instantaneous stops, free detectors.
EXACT_VM = VMProfile(name="exact")


def jrate_vm(seed: int = 0, poll_max_ms: int = 3) -> VMProfile:
    """The paper's platform: 10 ms timer rounding and a stop-poll
    overhead of up to a few milliseconds (seeded)."""
    return VMProfile(
        name="jrate",
        timer_rounding=JRATE_10MS,
        stop_poll_overhead=UniformOverhead(0, poll_max_ms * MS, seed=seed),
    )


#: Default jRate-like profile (seed 0).
JRATE_VM = jrate_vm()
