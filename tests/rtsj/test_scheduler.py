"""Unit tests for the scheduler implementations the paper compares.

The paper's motivation: RI's feasibility test is wrong (accepts
infeasible sets), jRate's is missing, and the extended package fixes
both.  These tests pin each behaviour.
"""

import pytest

from repro.rtsj.params import PeriodicParameters, PriorityParameters
from repro.rtsj.scheduler import (
    ExtendedPriorityScheduler,
    JRatePriorityScheduler,
    RIPriorityScheduler,
)
from repro.rtsj.system import RealtimeSystem
from repro.rtsj.thread import RealtimeThread
from repro.units import ms


def make_threads(system, specs):
    """specs: list of (name, priority, cost, period, deadline)."""
    return [
        RealtimeThread(
            PriorityParameters(prio),
            PeriodicParameters(0, ms(period), ms(cost), ms(deadline)),
            system,
            name=name,
        )
        for name, prio, cost, period, deadline in specs
    ]


#: U = 0.5 + 0.25 = 0.75 <= 1, but lo's WCRT (5 + 5 = wait...) —
#: hi: C=5 T=10; lo: C=5 T=20 D=9 -> R_lo = 10 > 9: NOT feasible,
#: although the utilization test passes.  This is the paper's "non
#: feasible set of tasks for which RI returns feasible".
RI_FOOLING_SET = [
    ("hi", 10, 5, 10, 10),
    ("lo", 5, 5, 20, 9),
]

FEASIBLE_SET = [
    ("hi", 10, 2, 10, 10),
    ("lo", 5, 3, 20, 15),
]

OVERLOADED_SET = [
    ("hi", 10, 8, 10, 10),
    ("lo", 5, 8, 10, 10),
]


class TestRIScheduler:
    def test_accepts_infeasible_set_the_paper_shows(self):
        system = RealtimeSystem(scheduler=RIPriorityScheduler())
        for t in make_threads(system, RI_FOOLING_SET):
            t.addToFeasibility()
        # The defect: RI says feasible...
        assert system.scheduler.isFeasible()
        # ...while the exact analysis disagrees.
        exact = ExtendedPriorityScheduler()
        for t in system.threads:
            exact.addToFeasibility(t)
        assert not exact.isFeasible()

    def test_rejects_overload(self):
        system = RealtimeSystem(scheduler=RIPriorityScheduler())
        for t in make_threads(system, OVERLOADED_SET):
            t.addToFeasibility()
        assert not system.scheduler.isFeasible()

    def test_empty_set_feasible(self):
        assert RIPriorityScheduler().isFeasible()


class TestJRateScheduler:
    def test_feasibility_not_implemented(self):
        system = RealtimeSystem(scheduler=JRatePriorityScheduler())
        (t, _) = make_threads(system, FEASIBLE_SET)
        with pytest.raises(NotImplementedError, match="jRate"):
            t.addToFeasibility()


class TestExtendedScheduler:
    def test_correct_on_the_fooling_set(self):
        system = RealtimeSystem(scheduler=ExtendedPriorityScheduler())
        threads = make_threads(system, RI_FOOLING_SET)
        threads[0].addToFeasibility()
        assert system.scheduler.isFeasible()
        assert not threads[1].addToFeasibility()

    def test_accepts_feasible(self):
        system = RealtimeSystem(scheduler=ExtendedPriorityScheduler())
        for t in make_threads(system, FEASIBLE_SET):
            assert t.addToFeasibility()

    def test_remove_restores_feasibility(self):
        system = RealtimeSystem(scheduler=ExtendedPriorityScheduler())
        threads = make_threads(system, RI_FOOLING_SET)
        for t in threads:
            t.addToFeasibility()
        assert not system.scheduler.isFeasible()
        assert threads[1].removeFromFeasibility()
        assert system.scheduler.isFeasible()

    def test_remove_absent_returns_false(self):
        system = RealtimeSystem()
        (t, _) = make_threads(system, FEASIBLE_SET)
        assert not t.removeFromFeasibility()

    def test_add_idempotent(self):
        system = RealtimeSystem()
        (t, _) = make_threads(system, FEASIBLE_SET)
        t.addToFeasibility()
        t.addToFeasibility()
        assert len(system.scheduler.feasibility_set) == 1
