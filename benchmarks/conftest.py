"""Shared benchmark fixtures."""

import pytest

from repro.workloads.scenarios import paper_table2


@pytest.fixture(scope="session")
def table2():
    return paper_table2()
