"""Bit-equivalence of the vectorized population stepper.

The contract of :mod:`repro.sim.batch` is that for every system the
classifier admits, :func:`simulate_batch` produces the *same* job
records — and therefore the same fingerprint — as the exact engine run
one system at a time.  This suite pins that over hundreds of generated
systems plus hand-built stress cases (offsets beyond the horizon,
permanent overload, completion exactly at a deadline or release).
"""

import pytest

from repro.core.faults import FaultInjector, CostOverrun, NoFaults, RandomFaults
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind
from repro.exec.sim import run_simulation
from repro.sim.batch import (
    classify,
    schedule_fingerprint,
    sim_job_records,
    simulate_batch,
)
from repro.sim.vm import VMProfile
from repro.workloads.population import PopulationConfig, generate_population


def exact_records(ts: TaskSet, horizon: int):
    return sim_job_records(run_simulation(ts, horizon=horizon))


def small_periods(**overrides) -> PopulationConfig:
    """Population knobs scaled down so the exact engine stays fast."""
    defaults = dict(period_lo=20, period_hi=400, period_granularity=1)
    defaults.update(overrides)
    return PopulationConfig(**defaults)


def stress_systems() -> list[tuple[TaskSet, int]]:
    """Hand-built (system, horizon) pairs covering the edge geometry."""
    return [
        # Offset beyond the horizon: zero released jobs.
        (TaskSet([Task("only", cost=2, period=380, deadline=120, offset=1088, priority=1)]), 320),
        # One task with zero jobs, one with many.
        (
            TaskSet(
                [
                    Task("late", cost=5, period=100, deadline=80, offset=900, priority=2),
                    Task("busy", cost=3, period=10, deadline=10, priority=1),
                ]
            ),
            200,
        ),
        # Permanent overload (cost == period): every deadline in range misses.
        (TaskSet([Task("full", cost=50, period=50, deadline=30, priority=1)]), 300),
        # Completion exactly at the deadline (meets it) and at a release.
        (TaskSet([Task("edge", cost=10, period=10, deadline=10, priority=1)]), 100),
        # Two tasks, completion of hi coincides with release of lo.
        (
            TaskSet(
                [
                    Task("hi", cost=4, period=8, deadline=8, priority=10),
                    Task("lo", cost=3, period=12, deadline=12, offset=4, priority=5),
                ]
            ),
            96,
        ),
        # Horizon shorter than every period: at most the initial jobs.
        (
            TaskSet(
                [
                    Task("a", cost=2, period=70, deadline=9, priority=3),
                    Task("b", cost=9, period=90, deadline=60, offset=5, priority=2),
                ]
            ),
            50,
        ),
        # Backlogged task (deadline > period would be unusual, keep
        # constrained but overloaded pair instead).
        (
            TaskSet(
                [
                    Task("p", cost=7, period=10, deadline=10, priority=9),
                    Task("q", cost=8, period=15, deadline=15, priority=4),
                ]
            ),
            150,
        ),
    ]


class TestEquivalence:
    def test_generated_population_bit_identical(self):
        """200+ generated systems across three cells: records, counters
        and fingerprints all equal the exact engine's."""
        systems: list[TaskSet] = []
        for cell, (u, n) in enumerate([(0.5, 3), (0.75, 4), (0.97, 5)]):
            systems.extend(
                generate_population(
                    70,
                    small_periods(n=n, utilization=u, deadline_factor=0.9),
                    seed=5150,
                    key=("eqcell", cell),
                )
            )
        assert len(systems) == 210
        horizons = [4 * max(t.period for t in ts) for ts in systems]
        batch = simulate_batch(systems, horizons)
        misses_seen = 0
        for ts, h, b in zip(systems, horizons, batch):
            result = run_simulation(ts, horizon=h)
            exact = sim_job_records(result)
            assert b.records == exact
            assert schedule_fingerprint(b) == schedule_fingerprint(result)
            assert b.horizon == h
            assert b.released == len(exact)
            assert b.completed == sum(1 for r in exact if r[3] >= 0)
            assert b.misses == sum(1 for r in exact if r[4])
            assert b.failed_task_count == len({r[0] for r in exact if r[4]})
            misses_seen += b.misses
        # The U=0.97 cell guarantees the suite exercises misses.
        assert misses_seen > 0

    @pytest.mark.parametrize(
        "ts,horizon", stress_systems(), ids=lambda v: v if isinstance(v, int) else None
    )
    def test_stress_geometry(self, ts, horizon):
        (b,) = simulate_batch([ts], [horizon])
        exact = exact_records(ts, horizon)
        assert b.records == exact
        assert b.released == len(exact)
        assert b.completed == sum(1 for r in exact if r[3] >= 0)
        assert b.misses == sum(1 for r in exact if r[4])
        assert b.failed_task_count == len({r[0] for r in exact if r[4]})

    def test_zero_job_system_counters(self):
        """A system whose only task releases nothing must report all
        zeros — the empty-segment case of the counter aggregation."""
        ts = TaskSet([Task("t", cost=1, period=10, deadline=10, offset=999, priority=1)])
        (b,) = simulate_batch([ts], [100])
        assert b.records == ()
        assert (b.released, b.completed, b.misses, b.failed_task_count) == (0, 0, 0, 0)

    def test_bucketed_run_matches_single_systems(self):
        """More systems than one bucket (grouped by event count
        internally) return results in input order, equal to running
        each system alone."""
        systems = generate_population(
            600, small_periods(n=2, utilization=0.6), seed=99, key=("bucket",)
        )
        horizons = [2 * max(t.period for t in ts) for ts in systems]
        together = simulate_batch(systems, horizons)
        assert len(together) == 600
        for probe in (0, 17, 299, 511, 512, 599):
            (alone,) = simulate_batch([systems[probe]], [horizons[probe]])
            assert together[probe] == alone


class TestClassify:
    def clean(self) -> TaskSet:
        return TaskSet(
            [
                Task("a", cost=1, period=10, priority=2),
                Task("b", cost=2, period=20, priority=1),
            ]
        )

    def test_plain_system_is_eligible(self):
        assert classify(self.clean()) is None

    def test_trivial_fault_models_are_eligible(self):
        assert classify(self.clean(), faults=NoFaults()) is None
        assert classify(self.clean(), faults=FaultInjector([])) is None
        assert classify(self.clean(), faults=RandomFaults(rate=0.0, max_extra=5, seed=1)) is None

    def test_real_faults_rejected(self):
        faults = FaultInjector([CostOverrun("a", 0, 5)])
        assert "fault" in classify(self.clean(), faults=faults)
        rnd = RandomFaults(rate=0.5, max_extra=5, seed=1)
        assert "fault" in classify(self.clean(), faults=rnd)

    def test_treatment_rejected(self):
        assert "treatment" in classify(self.clean(), treatment=TreatmentKind.IMMEDIATE_STOP)
        assert classify(self.clean(), treatment=TreatmentKind.NO_DETECTION) is None

    def test_context_switch_rejected(self):
        vm = VMProfile(name="slow", context_switch=3)
        assert "context-switch" in classify(self.clean(), vm=vm)

    def test_arrivals_and_sections_rejected(self):
        assert "arrival" in classify(self.clean(), arrivals={"a": (0, 5)})
        assert "section" in classify(self.clean(), sections=[object()])

    def test_duplicate_priorities_rejected(self):
        ts = TaskSet(
            [
                Task("a", cost=1, period=10, priority=1),
                Task("b", cost=2, period=20, priority=1),
            ]
        )
        assert "priorities" in classify(ts)

    def test_simulate_batch_refuses_what_classify_rejects(self):
        ts = TaskSet(
            [
                Task("a", cost=1, period=10, priority=1),
                Task("b", cost=2, period=20, priority=1),
            ]
        )
        with pytest.raises(ValueError, match="classify"):
            simulate_batch([ts], [100])


class TestValidation:
    def test_length_mismatch(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1)])
        with pytest.raises(ValueError, match="one horizon per system"):
            simulate_batch([ts], [100, 200])

    def test_nonpositive_horizon(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1)])
        with pytest.raises(ValueError, match="horizon"):
            simulate_batch([ts], [0])

    def test_empty_batch(self):
        assert simulate_batch([], []) == []
