"""Warm analysis fast path vs cold per-probe analysis (DESIGN.md §3.5).

The §4 allowance searches dominated the analysis layer's cost because
every binary-search probe re-ran the full fixed-point analysis from
scratch.  These benchmarks measure the :class:`AnalysisContext` fast
path against faithful cold replicas of the pre-context searches (one
``analyze()`` per probe, exactly what ``equitable_allowance`` /
``system_allowance`` used to do) on the same generated systems as
``bench_wcrt_scaling``, assert the values are identical, and record
both sides in ``BENCH_results.json`` so the speedup is auditable.

The acceptance test at the bottom enforces the PR target: >= 5x on the
50-task equitable-allowance search.
"""

import time

import pytest

from repro.core.allowance import (
    _feasible_inflation_bound,
    equitable_allowance,
    max_such_that,
    system_allowance,
)
from repro.core.context import AnalysisContext
from repro.core.feasibility import analyze, is_feasible
from repro.workloads.generator import GeneratorConfig, random_taskset


def make_system(n: int):
    seed = 0
    while True:
        ts = random_taskset(
            GeneratorConfig(
                n=n,
                utilization=0.7,
                period_lo=10_000,
                period_hi=10_000_000,
                period_granularity=1_000,
                seed=seed,
            )
        )
        if is_feasible(ts):
            return ts
        seed += 1


# -- cold replicas: the pre-context searches, one analyze() per probe --------
def cold_equitable_allowance(ts) -> int:
    hi = max(_feasible_inflation_bound(ts), 0)
    return max_such_that(
        lambda a: analyze(
            ts.with_costs({t.name: t.cost + a for t in ts})
        ).feasible,
        hi,
    )


def cold_system_allowance(ts) -> dict[str, int]:
    out = {}
    for t in ts:
        hi = max(t.deadline - t.cost, 0)
        out[t.name] = max_such_that(
            lambda x, name=t.name, c=t.cost: analyze(
                ts.with_costs({name: c + x})
            ).feasible,
            hi,
        )
    return out


@pytest.mark.parametrize("n", [10, 20, 50])
def test_equitable_cold(benchmark, n):
    ts = make_system(n)
    allowance = benchmark(cold_equitable_allowance, ts)
    assert allowance >= 0


@pytest.mark.parametrize("n", [10, 20, 50])
def test_equitable_context(benchmark, n):
    ts = make_system(n)
    allowance = benchmark(lambda: equitable_allowance(ts, context=AnalysisContext(ts)))
    assert allowance == cold_equitable_allowance(ts)


@pytest.mark.parametrize("n", [10, 30])
def test_system_allowance_cold(benchmark, n):
    ts = make_system(n)
    grants = benchmark(cold_system_allowance, ts)
    assert all(g >= 0 for g in grants.values())


@pytest.mark.parametrize("n", [10, 30])
def test_system_allowance_context(benchmark, n):
    ts = make_system(n)
    grants = benchmark(lambda: system_allowance(ts, context=AnalysisContext(ts)))
    assert grants == cold_system_allowance(ts)


def test_fastpath_speedup_target():
    """The PR's acceptance bar: >= 5x on the 50-task equitable search,
    values identical.  Best-of-3 on both sides to damp host noise."""
    ts = make_system(50)

    def best_of_3(fn):
        best, value = float("inf"), None
        for _ in range(3):
            t0 = time.perf_counter()  # noqa: RT002 - host benchmark timing
            value = fn()
            best = min(best, time.perf_counter() - t0)  # noqa: RT002 - host benchmark timing
        return best, value

    cold_s, cold_value = best_of_3(lambda: cold_equitable_allowance(ts))
    warm_s, warm_value = best_of_3(
        lambda: equitable_allowance(ts, context=AnalysisContext(ts))
    )
    assert warm_value == cold_value
    assert cold_s >= 5 * warm_s, (
        f"fast path {cold_s / warm_s:.1f}x < 5x target "
        f"(cold {cold_s:.4f}s, warm {warm_s:.4f}s)"
    )
