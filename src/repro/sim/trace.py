"""Execution traces — the paper's measurement substrate (§5).

The paper's tooling collects "the key dates in the system life": job
beginnings (``computeBeforePeriodic``), job ends
(``computeAfterPeriodic``) and detector releases, buffered in memory and
dumped at the end of the run.  :class:`Trace` is the equivalent here,
with a few extra event kinds the simulator can observe exactly
(preemptions, deadline misses, stops) that the paper reads off its
charts.

A trace is an append-only list of :class:`TraceEvent`, plus query
helpers used by the metrics and chart layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind(enum.Enum):
    """What happened at a trace point."""

    RELEASE = "release"  # job activated (period boundary)
    START = "start"  # job first dispatched (computeBeforePeriodic)
    PREEMPT = "preempt"  # job descheduled by a higher priority job
    RESUME = "resume"  # job dispatched again
    COMPLETE = "complete"  # job finished normally (computeAfterPeriodic)
    STOP = "stop"  # job terminated by a treatment
    DEADLINE_MISS = "deadline-miss"  # absolute deadline passed, job unfinished
    DETECTOR_FIRE = "detector-fire"  # periodic detector released
    FAULT_DETECTED = "fault-detected"  # detector found the job unfinished
    IDLE = "idle"  # processor became idle
    LOCK = "lock"  # job acquired a shared resource
    UNLOCK = "unlock"  # job released a shared resource
    BLOCKED = "blocked"  # job blocked on a held resource (PIP)
    UNBLOCKED = "unblocked"  # blocked job granted the resource


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation.

    ``job`` is the 0-based job index within the task (−1 for events not
    tied to a specific job).  ``info`` carries event-specific details
    (e.g. the allowance granted at a detection).
    """

    time: int
    kind: EventKind
    task: str
    job: int = -1
    info: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        j = f"#{self.job}" if self.job >= 0 else ""
        return f"[{self.time}] {self.kind.value} {self.task}{j}"


class Trace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(
        self, time: int, kind: EventKind, task: str, job: int = -1, info: int = 0
    ) -> None:
        self._events.append(TraceEvent(time, kind, task, job, info))

    # -- access -------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Events matching any of *kinds*, in time order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_task(self, task: str) -> list[TraceEvent]:
        return [e for e in self._events if e.task == task]

    def filter(self, pred: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._events if pred(e)]

    def deadline_misses(self, task: str | None = None) -> list[TraceEvent]:
        """Deadline-miss events, optionally restricted to one task."""
        misses = self.of_kind(EventKind.DEADLINE_MISS)
        return misses if task is None else [e for e in misses if e.task == task]

    def execution_intervals(self, task: str) -> list[tuple[int, int, int]]:
        """CPU intervals ``(begin, end, job)`` reconstructed for *task*.

        Pairs each START/RESUME with the following PREEMPT/COMPLETE/STOP
        of the same task.  An interval left open at the end of the trace
        is dropped (the run was truncated mid-execution).
        """
        out: list[tuple[int, int, int]] = []
        open_at: int | None = None
        open_job = -1
        for e in self._events:
            if e.task != task:
                continue
            if e.kind in (EventKind.START, EventKind.RESUME):
                open_at = e.time
                open_job = e.job
            elif e.kind in (EventKind.PREEMPT, EventKind.COMPLETE, EventKind.STOP):
                if open_at is not None:
                    if e.time > open_at:
                        out.append((open_at, e.time, open_job))
                    open_at = None
        return out

    def end_time(self) -> int:
        """Timestamp of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0

    def dump(self) -> str:
        """The paper's log-file equivalent: one event per line."""
        return "\n".join(str(e) for e in self._events)
