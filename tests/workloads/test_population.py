"""Vectorized population generation: scalar equality and chunk freedom.

:func:`repro.workloads.population.generate_population` promises two
things the sweep layer leans on — it reproduces
:func:`repro.workloads.generator.random_taskset` bit-for-bit from the
same ``derive_rng`` stream, and system ``k`` depends only on
``(seed, key, k)``, never on how the index range was chunked.
"""

import pytest

from repro.core.feasibility import is_feasible
from repro.rng import derive_rng
from repro.workloads.generator import GeneratorConfig, random_taskset
from repro.workloads.population import PopulationConfig, generate_population


SMALL = PopulationConfig(
    n=3, utilization=0.7, deadline_factor=0.9, period_lo=50, period_hi=5_000, period_granularity=10
)


class TestScalarEquality:
    def test_matches_random_taskset_stream(self):
        """Each population row equals random_taskset fed the same
        per-system derived stream (the vectorization changed the
        arithmetic layout, not the draws)."""
        scalar_cfg = GeneratorConfig(
            n=SMALL.n,
            utilization=SMALL.utilization,
            deadline_factor=SMALL.deadline_factor,
            period_lo=SMALL.period_lo,
            period_hi=SMALL.period_hi,
            period_granularity=SMALL.period_granularity,
        )
        pop = generate_population(25, SMALL, seed=42, key=("cell", 0.8))
        for k, ts in enumerate(pop):
            ref = random_taskset(
                scalar_cfg, rng=derive_rng(42, "population", "cell", 0.8, k, 0)
            )
            assert tuple(ts) == tuple(ref), f"system {k} diverged"

    def test_distinct_indices_distinct_systems(self):
        pop = generate_population(20, SMALL, seed=7, key=("x",))
        assert len({tuple(ts) for ts in pop}) > 1

    def test_seed_and_key_change_the_population(self):
        base = generate_population(5, SMALL, seed=1, key=("a",))
        other_seed = generate_population(5, SMALL, seed=2, key=("a",))
        other_key = generate_population(5, SMALL, seed=1, key=("b",))
        assert [tuple(t) for t in base] != [tuple(t) for t in other_seed]
        assert [tuple(t) for t in base] != [tuple(t) for t in other_key]


class TestChunkIndependence:
    @pytest.mark.parametrize("splits", [(40,), (1, 39), (13, 13, 14), (7, 11, 5, 17)])
    def test_any_splice_reproduces_the_slice(self, splits):
        whole = generate_population(40, SMALL, seed=9, key=("chunk",))
        start = 0
        spliced = []
        for n in splits:
            spliced.extend(
                generate_population(n, SMALL, seed=9, key=("chunk",), start=start)
            )
            start += n
        assert [tuple(t) for t in spliced] == [tuple(t) for t in whole]

    def test_start_offset_alone(self):
        whole = generate_population(30, SMALL, seed=11, key=())
        tail = generate_population(10, SMALL, seed=11, key=(), start=20)
        assert [tuple(t) for t in tail] == [tuple(t) for t in whole[20:]]

    def test_feasible_only_is_chunk_independent(self):
        """The retry chain is keyed per system, so filtering does not
        couple neighbours either."""
        cfg = PopulationConfig(
            n=3, utilization=0.95, deadline_factor=0.8, period_lo=50, period_hi=5_000, period_granularity=10
        )
        whole = generate_population(24, cfg, seed=3, key=("f",), feasible_only=True)
        parts = [
            ts
            for lo, n in [(0, 9), (9, 6), (15, 9)]
            for ts in generate_population(
                n, cfg, seed=3, key=("f",), start=lo, feasible_only=True
            )
        ]
        assert [tuple(t) for t in parts] == [tuple(t) for t in whole]
        assert all(is_feasible(ts) for ts in whole)


class TestFiltering:
    def test_feasible_only_yields_feasible_systems(self):
        pop = generate_population(
            15,
            PopulationConfig(
                n=4, utilization=0.9, deadline_factor=0.85, period_lo=50, period_hi=5_000, period_granularity=10
            ),
            seed=5,
            key=("feas",),
            feasible_only=True,
        )
        assert len(pop) == 15
        assert all(is_feasible(ts) for ts in pop)

    def test_unfiltered_high_utilization_contains_infeasible(self):
        pop = generate_population(
            30,
            PopulationConfig(
                n=5, utilization=0.99, deadline_factor=0.7, period_lo=50, period_hi=5_000, period_granularity=10
            ),
            seed=6,
            key=("hot",),
        )
        assert any(not is_feasible(ts) for ts in pop)

    def test_impossible_filter_raises(self):
        cfg = PopulationConfig(n=2, utilization=1.0, deadline_factor=0.01, period_lo=1_000, period_hi=1_000, period_granularity=1)
        with pytest.raises(RuntimeError, match="no feasible system"):
            generate_population(1, cfg, seed=1, key=("bad",), feasible_only=True)


class TestValidation:
    def test_zero_count(self):
        assert generate_population(0, SMALL, seed=0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError, match="count"):
            generate_population(-1, SMALL, seed=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"utilization": 0.0},
            {"utilization": 1.5},
            {"period_lo": 0},
            {"period_lo": 100, "period_hi": 50},
            {"period_granularity": 0},
            {"deadline_factor": 0.0},
        ],
    )
    def test_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PopulationConfig(**kwargs)
