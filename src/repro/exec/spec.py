"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the frozen, hashable description of one
exhibit run: *what* system, over *what* horizon, with *what* fault,
treatment, VM profile and seed.  Every table, figure and ablation of
the reproduction is expressed as a spec (see
:mod:`repro.experiments.registry`), which buys three things:

* **caching** — :meth:`ExperimentSpec.spec_hash` is a stable content
  hash (built on :func:`repro.rng.stable_hash`, so it is identical in
  every Python process), usable as a cache key;
* **parallelism** — specs are plain picklable data, so a batch of them
  can be fanned out over a process pool;
* **provenance** — :meth:`ExperimentSpec.to_dict` serialises the spec
  into the run manifest, linking every published number back to the
  exact configuration that produced it.

The spec layer knows nothing about *how* a spec is executed; that is
the job of the builder named by :attr:`ExperimentSpec.builder`
(resolved by the experiments registry) driven by an executor from
:mod:`repro.exec.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.rng import stable_hash

__all__ = ["ExperimentSpec", "FaultSpecTriple"]

#: ``(task_name, job_index, extra_ns)`` — one injected cost overrun
#: (negative ``extra_ns`` encodes an underrun).
FaultSpecTriple = tuple[str, int, int]


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so params are hashable."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _jsonable(value: Any) -> Any:
    """Tuples back to lists for JSON serialisation."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment configuration.

    ``scenario`` names a registered task-set factory
    (:data:`repro.exec.sim.SCENARIO_FACTORIES`); ``scenario_text`` is an
    inline scenario file (the parser format), used for ad-hoc CLI runs —
    exactly one of the two is set for simulation specs, and analysis
    specs may set neither.  ``treatment`` is a
    :class:`~repro.core.treatments.TreatmentKind` value string (``None``
    means "the scenario's own / no override").  ``params`` carries
    builder-specific extras as a sorted tuple of ``(key, value)`` pairs
    so the content hash is canonical.
    """

    name: str
    builder: str
    scenario: str | None = None
    scenario_text: str | None = None
    horizon: int | None = None
    treatment: str | None = None
    vm: str = "exact"
    faults: tuple[FaultSpecTriple, ...] = ()
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if not self.builder:
            raise ValueError(f"spec {self.name!r} needs a builder")
        if self.scenario is not None and self.scenario_text is not None:
            raise ValueError(f"spec {self.name!r}: scenario and scenario_text are exclusive")
        if list(self.params) != sorted(self.params, key=lambda kv: kv[0]):
            raise ValueError(f"spec {self.name!r}: params must be key-sorted (use .make)")

    @classmethod
    def make(cls, *, params: Mapping[str, Any] | None = None, **kwargs: Any) -> "ExperimentSpec":
        """Build a spec from a plain ``params`` mapping (sorted and
        frozen here so equal configurations hash equally)."""
        frozen = tuple(sorted((k, _freeze(v)) for k, v in (params or {}).items()))
        return cls(params=frozen, **kwargs)

    # -- identity ------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical string the content hash is computed over."""
        parts = [(f.name, getattr(self, f.name)) for f in fields(self)]
        return repr(parts)

    def spec_hash(self) -> str:
        """Stable content hash (hex), identical in every process."""
        return f"{stable_hash(self.canonical()):08x}"

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one ``params`` entry."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation for manifests."""
        return {
            "name": self.name,
            "builder": self.builder,
            "scenario": self.scenario,
            "scenario_text": self.scenario_text,
            "horizon": self.horizon,
            "treatment": self.treatment,
            "vm": self.vm,
            "faults": [list(f) for f in self.faults],
            "seed": self.seed,
            "params": {k: _jsonable(v) for k, v in self.params},
        }
