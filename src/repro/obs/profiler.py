"""Engine dispatch profiler — where do the simulator's cycles go?

An opt-in :class:`~repro.sim.engine.EngineObserver`: the engine calls
:meth:`EngineProfiler.record` after every executed event with the
event's tie-break rank and the host wall time its action took.  The
profiler aggregates per event *kind* (the named ``Rank`` classes:
completions, stops, deadline checks, detector fires, releases, user
events) and renders the ``--profile`` table the experiments CLI prints
— the substrate for judging any future engine optimisation.

Profiling never touches simulated time: results are bit-identical with
and without a profiler attached; only host wall time is observed
(hence the sanctioned ``RT002`` suppressions in the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import Rank
from repro.viz.tables import format_table

__all__ = ["RANK_NAMES", "EngineProfiler"]

#: Rank value -> human name, derived from the Rank class itself so the
#: table can never drift from the engine's tie-break order.
RANK_NAMES: dict[int, str] = {
    value: name.lower().replace("_", "-")
    for name, value in vars(Rank).items()
    if not name.startswith("_") and isinstance(value, int)
}


@dataclass
class EngineProfiler:
    """Per-rank dispatch counts and host wall time."""

    counts: dict[int, int] = field(default_factory=dict)
    wall_ns: dict[int, int] = field(default_factory=dict)

    def record(self, rank: int, wall_ns: int) -> None:
        self.counts[rank] = self.counts.get(rank, 0) + 1
        self.wall_ns[rank] = self.wall_ns.get(rank, 0) + wall_ns

    # -- aggregation ---------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_wall_ns(self) -> int:
        return sum(self.wall_ns.values())

    def merge(self, other: "EngineProfiler") -> None:
        """Fold *other*'s observations into this profiler (multi-run
        aggregation: one profiler per CLI invocation, many engines)."""
        for rank, n in other.counts.items():
            self.counts[rank] = self.counts.get(rank, 0) + n
        for rank, w in other.wall_ns.items():
            self.wall_ns[rank] = self.wall_ns.get(rank, 0) + w

    def events_per_second(self) -> int | None:
        """Aggregate dispatch throughput (None before any event)."""
        if self.total_wall_ns <= 0:
            return None
        return self.total_events * 1_000_000_000 // self.total_wall_ns

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            RANK_NAMES.get(rank, f"rank{rank}"): {
                "events": self.counts[rank],
                "wall_ns": self.wall_ns.get(rank, 0),
            }
            for rank in sorted(self.counts)
        }

    # -- presentation --------------------------------------------------------
    def render_table(self) -> str:
        """The ``--profile`` table: one row per event kind."""
        total_events = self.total_events
        total_wall = self.total_wall_ns
        rows = []
        for rank in sorted(self.counts):
            events = self.counts[rank]
            wall = self.wall_ns.get(rank, 0)
            rows.append(
                (
                    RANK_NAMES.get(rank, f"rank{rank}"),
                    events,
                    _pct(events, total_events),
                    wall // 1000,
                    _pct(wall, total_wall),
                    wall // events if events else 0,
                )
            )
        rows.append(
            (
                "total",
                total_events,
                _pct(total_events, total_events),
                total_wall // 1000,
                _pct(total_wall, total_wall),
                total_wall // total_events if total_events else 0,
            )
        )
        table = format_table(
            ["event kind", "dispatches", "%", "wall us", "%", "ns/event"],
            rows,
            title="Engine profile (host wall time; simulated results unaffected)",
        )
        throughput = self.events_per_second()
        if throughput is not None:
            table += f"\nengine throughput: {throughput} events/s"
        return table


def _pct(part: int, whole: int) -> str:
    return f"{100 * part // whole}%" if whole else "-"
